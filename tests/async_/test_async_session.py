"""AsyncSession: coalescing, admission, lifecycle, error semantics.

Every overlap in these tests is deterministic: the wrapped session's
``execute`` is replaced with a gated stub that blocks until the test
releases it, so "identical spec arrives while one is in flight" is a
controlled state, not a race the scheduler may or may not produce.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.api import EngineConfig
from repro.api.session import Explanation
from repro.api.spec import QuerySpec
from repro.async_ import AdmissionGate, AsyncSession, open_async_session
from repro.errors import EmptyAnswerError, OverloadedError, RankingError
from repro.workloads import mediated_layers


@pytest.fixture()
def workload():
    generated = mediated_layers(layers=3, width=16, fan_out=3, rng=11)
    yield generated
    generated.close()


@pytest.fixture()
def session(workload):
    opened = workload.open_session()
    yield opened
    opened.close()


def _spec(i=0, method="in_edge"):
    return QuerySpec(
        entity_set="E0",
        attribute="id",
        value=f"E0:{i}",
        outputs=("E1", "E2"),
        method=method,
    )


class _Gate:
    """Replaces ``session.execute``: every call signals ``started``,
    then blocks until ``release``; optionally fails."""

    def __init__(self, session, fail=None):
        self._real = session.execute
        self.started = threading.Event()
        self.release = threading.Event()
        self.fail = fail
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, spec):
        with self._lock:
            self.calls.append(spec)
        self.started.set()
        assert self.release.wait(10), "test never released the gate"
        if self.fail is not None:
            raise self.fail
        return self._real(spec)


async def _spin(predicate, timeout=10.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        assert loop.time() < deadline, "condition never became true"
        await asyncio.sleep(0.001)


class TestCoalescing:
    def test_identical_inflight_specs_share_one_execution(
        self, session, monkeypatch
    ):
        gate = _Gate(session)
        monkeypatch.setattr(session, "execute", gate)
        spec = _spec()
        n = 8

        async def run():
            async with AsyncSession(session) as s:
                leader = asyncio.create_task(s.execute(spec))
                await _spin(lambda: gate.started.is_set())
                followers = [
                    asyncio.create_task(s.execute(spec)) for _ in range(n - 1)
                ]
                await _spin(lambda: len(s._pending) == 1 and s.in_flight == 1)
                # let every follower reach the pending future
                for _ in range(4):
                    await asyncio.sleep(0)
                gate.release.set()
                return await asyncio.gather(leader, *followers)

        before = session.stats_snapshot()
        results = asyncio.run(run())
        after = session.stats_snapshot()

        assert len(gate.calls) == 1  # one traversal for the whole herd
        assert all(result is results[0] for result in results)
        assert after.coalesced_queries - before.coalesced_queries == n - 1
        assert after.graph_misses - before.graph_misses == 1

    def test_failed_execution_reaches_every_waiter_and_evicts(
        self, session, monkeypatch
    ):
        boom = RankingError("backend exploded")
        gate = _Gate(session, fail=boom)
        monkeypatch.setattr(session, "execute", gate)
        spec = _spec()

        async def run():
            async with AsyncSession(session) as s:
                leader = asyncio.create_task(s.execute(spec))
                await _spin(lambda: gate.started.is_set())
                followers = [
                    asyncio.create_task(s.execute(spec)) for _ in range(2)
                ]
                for _ in range(4):
                    await asyncio.sleep(0)
                gate.release.set()
                outcomes = await asyncio.gather(
                    leader, *followers, return_exceptions=True
                )
                # the dead future is gone: the next identical request
                # retries cold instead of inheriting the stale error
                assert s._pending == {}
                gate.fail = None
                retry = await s.execute(spec)
                return outcomes, retry

        outcomes, retry = asyncio.run(run())
        assert all(outcome is boom for outcome in outcomes)
        assert retry is not None
        assert len(gate.calls) == 2  # herd, then the cold retry

    def test_execute_many_coalesces_duplicates_in_one_batch(self, session):
        specs = [_spec(0), _spec(1), _spec(0)]

        async def run():
            async with AsyncSession(session) as s:
                return await s.execute_many(specs)

        before = session.stats_snapshot()
        results = asyncio.run(run())
        after = session.stats_snapshot()
        assert len(results) == 3
        assert dict(results[0].scores) == dict(results[2].scores)
        # the duplicate was a coalesced wait or a cache hit — never a
        # second traversal
        assert after.graph_misses - before.graph_misses == 2

    def test_execute_many_error_semantics_match_sync(self, session):
        good = _spec(0)
        bad = QuerySpec(
            entity_set="E0",
            attribute="id",
            value="no-such-root",
            outputs=("E1", "E2"),
            method="in_edge",
        )

        async def run(return_errors):
            async with AsyncSession(session) as s:
                return await s.execute_many(
                    [good, bad], return_errors=return_errors
                )

        results = asyncio.run(run(True))
        assert dict(results[0].scores)
        assert isinstance(results[1], EmptyAnswerError)
        with pytest.raises(EmptyAnswerError):
            asyncio.run(run(False))


class TestAdmission:
    def test_queue_then_shed_with_retry_after(self, workload, monkeypatch):
        config = EngineConfig(
            max_concurrency=1, max_queue_depth=1, retry_after=2.0
        )
        session = workload.open_session(config=config)
        gate = _Gate(session)
        monkeypatch.setattr(session, "execute", gate)

        async def run():
            async with AsyncSession(session) as s:
                first = asyncio.create_task(s.execute(_spec(0)))
                await _spin(lambda: s.in_flight == 1)
                second = asyncio.create_task(s.execute(_spec(1)))
                await _spin(lambda: s.queued == 1)
                with pytest.raises(OverloadedError) as excinfo:
                    await s.execute(_spec(2))
                assert excinfo.value.retry_after == 2.0
                # the shed request left no pending future behind
                assert len(s._pending) == 2
                gate.release.set()
                await asyncio.gather(first, second)
                assert s.in_flight == 0 and s.queued == 0
                # with the load gone, the same spec is admitted again
                assert await s.execute(_spec(2)) is not None

        try:
            before = session.stats_snapshot()
            asyncio.run(run())
            after = session.stats_snapshot()
            assert after.queued_queries - before.queued_queries >= 1
            assert after.shed_queries - before.shed_queries == 1
        finally:
            session.close()

    def test_unbounded_queue_never_sheds(self, workload, monkeypatch):
        config = EngineConfig(max_concurrency=1, max_queue_depth=None)
        session = workload.open_session(config=config)
        gate = _Gate(session)
        monkeypatch.setattr(session, "execute", gate)

        async def run():
            async with AsyncSession(session) as s:
                tasks = [
                    asyncio.create_task(s.execute(_spec(i))) for i in range(4)
                ]
                await _spin(lambda: s.in_flight == 1 and s.queued == 3)
                gate.release.set()
                return await asyncio.gather(*tasks)

        try:
            results = asyncio.run(run())
            assert all(result is not None for result in results)
            assert session.stats_snapshot().shed_queries == 0
        finally:
            session.close()


class TestFastPath:
    def test_warm_spec_served_inline_without_executor(self, session):
        spec = _spec()
        reference = session.execute(spec)  # warm graph + score caches

        async def run():
            async with AsyncSession(session) as s:
                async def forbidden(fn, *args):
                    raise AssertionError(
                        "warm request took the executor round trip"
                    )

                s._run = forbidden
                return await s.execute(spec)

        result = asyncio.run(run())
        assert dict(result.scores) == dict(reference.scores)


class TestLifecycle:
    def test_explain_passes_through(self, session):
        async def run():
            async with AsyncSession(session) as s:
                return await s.explain(_spec())

        explanation = asyncio.run(run())
        assert isinstance(explanation, Explanation)

    def test_closed_async_session_rejects_calls(self, session):
        async def run():
            s = AsyncSession(session)
            await s.close()
            assert s.closed
            with pytest.raises(RankingError):
                await s.execute(_spec())
            await s.close()  # idempotent

        asyncio.run(run())
        assert not session.closed  # not owned: the sync session survives

    def test_owned_session_closes_with_the_async_facade(self, workload):
        async def run():
            async with open_async_session(
                mediator=workload.mediator
            ) as s:
                result = await s.execute(_spec())
                assert dict(result.scores)
                return s

        s = asyncio.run(run())
        assert s.closed
        assert s.session.closed  # ownership: open_async_session closes it

    def test_bound_to_one_event_loop(self, session):
        s = AsyncSession(session)
        asyncio.run(s.execute(_spec()))
        with pytest.raises(RankingError):
            asyncio.run(s.execute(_spec()))  # a different loop


class TestAdmissionGate:
    def test_fast_path_and_release(self):
        gate = AdmissionGate(max_in_flight=2, max_queue_depth=0)
        with gate:
            assert gate.in_flight == 1
            with gate:
                assert gate.in_flight == 2
                with pytest.raises(OverloadedError):
                    gate.acquire()
        assert gate.in_flight == 0

    def test_queued_caller_waits_for_a_slot(self):
        queued, shed = [], []
        gate = AdmissionGate(
            max_in_flight=1,
            max_queue_depth=2,
            retry_after=0.5,
            on_queued=lambda: queued.append(1),
            on_shed=lambda: shed.append(1),
        )
        gate.acquire()
        acquired = threading.Event()

        def waiter():
            with gate:
                acquired.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert not acquired.wait(0.05)  # genuinely blocked on the queue
        assert gate.queued == 1
        gate.release()
        assert acquired.wait(5)
        thread.join(5)
        assert queued == [1] and shed == []

    def test_shed_carries_the_retry_hint(self):
        shed = []
        gate = AdmissionGate(
            max_in_flight=1,
            max_queue_depth=0,
            retry_after=2.5,
            on_shed=lambda: shed.append(1),
        )
        gate.acquire()
        with pytest.raises(OverloadedError) as excinfo:
            gate.acquire()
        assert excinfo.value.retry_after == 2.5
        assert shed == [1]
        gate.release()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(max_in_flight=0)
        with pytest.raises(ValueError):
            AdmissionGate(max_in_flight=1, max_queue_depth=-1)
        gate = AdmissionGate(max_in_flight=1)
        with pytest.raises(RuntimeError):
            gate.release()
