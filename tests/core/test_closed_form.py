"""Tests for the per-target closed-form reliability pipeline."""

import pytest

from repro.core.closed_form import closed_form_reliability
from repro.core.exact import exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import RankingError


class TestClosedTargets:
    def test_series_parallel_closes(self, serial_parallel):
        result = closed_form_reliability(serial_parallel)
        assert result.fully_closed
        assert result.scores["u"] == pytest.approx(0.5)

    def test_multi_target_closure(self, two_target_dag):
        result = closed_form_reliability(two_target_dag)
        exact = exact_reliability(two_target_dag)
        for target in two_target_dag.targets:
            assert result.scores[target] == pytest.approx(exact[target])
        # t2 hangs off a pure chain, so it must close
        assert result.closed["t2"]

    def test_unreachable_target_closes_to_zero(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t", p=0.9)
        result = closed_form_reliability(QueryGraph(graph, "s", ["t"]))
        assert result.scores["t"] == 0.0
        assert result.closed["t"]

    def test_source_as_target(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s", p=0.7)
        result = closed_form_reliability(QueryGraph(graph, "s", ["s"]))
        assert result.scores["s"] == pytest.approx(0.7)


class TestFallbacks:
    def test_wheatstone_falls_back_to_exact(self, wheatstone):
        result = closed_form_reliability(wheatstone, fallback="exact")
        assert not result.closed["u"]
        assert result.scores["u"] == pytest.approx(0.46875)
        assert not result.fully_closed

    def test_error_fallback_raises(self, wheatstone):
        with pytest.raises(RankingError):
            closed_form_reliability(wheatstone, fallback="error")

    def test_skip_fallback_omits(self, wheatstone):
        result = closed_form_reliability(wheatstone, fallback="skip")
        assert "u" not in result.scores


class TestOnScenarioGraphs:
    def test_matches_exact_on_real_case(self, scenario3_small):
        case = scenario3_small[2]  # NMC0498, n_total = 5
        qg = case.query_graph
        result = closed_form_reliability(qg)
        exact = exact_reliability(qg)
        for target in qg.targets:
            assert result.scores[target] == pytest.approx(exact[target], abs=1e-9)

    def test_most_targets_close_on_workflow_graphs(self, scenario1_small):
        case = scenario1_small[2]  # AGPAT2
        result = closed_form_reliability(case.query_graph)
        closed_fraction = sum(result.closed.values()) / len(result.closed)
        # ambiguous BLAST xrefs make a minority of targets irreducible
        assert closed_fraction > 0.5
