"""Tests for the probabilistic entity graph and query graph."""

import pytest

from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import CycleError, GraphError, ValidationError


@pytest.fixture
def diamond() -> ProbabilisticEntityGraph:
    graph = ProbabilisticEntityGraph()
    graph.add_node("s")
    graph.add_node("a", p=0.9)
    graph.add_node("b", p=0.8)
    graph.add_node("t", p=0.7)
    graph.add_edge("s", "a", q=0.5)
    graph.add_edge("s", "b", q=0.6)
    graph.add_edge("a", "t", q=0.7)
    graph.add_edge("b", "t", q=0.8)
    return graph


class TestNodes:
    def test_duplicate_node_rejected(self, diamond):
        with pytest.raises(GraphError):
            diamond.add_node("a")

    def test_probability_validated(self):
        graph = ProbabilisticEntityGraph()
        with pytest.raises(ValidationError):
            graph.add_node("x", p=1.5)

    def test_set_p(self, diamond):
        diamond.set_p("a", 0.25)
        assert diamond.p("a") == 0.25

    def test_unknown_node_raises(self, diamond):
        with pytest.raises(GraphError):
            diamond.p("ghost")

    def test_data_payload(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("x", data={"k": 1})
        assert graph.data("x") == {"k": 1}

    def test_remove_node_removes_incident_edges(self, diamond):
        diamond.remove_node("a")
        assert diamond.num_edges == 2
        assert diamond.out_degree("s") == 1


class TestEdges:
    def test_edge_needs_existing_endpoints(self, diamond):
        with pytest.raises(GraphError):
            diamond.add_edge("s", "ghost")

    def test_parallel_edges_supported(self, diamond):
        diamond.add_edge("s", "a", q=0.1)
        assert diamond.out_degree("s") == 3
        assert len(diamond.successors("s")) == 2

    def test_merged_out_combines_parallel(self, diamond):
        diamond.add_edge("s", "a", q=0.5)
        merged = diamond.merged_out("s")
        assert merged["a"] == pytest.approx(1 - 0.5 * 0.5)
        assert merged["b"] == pytest.approx(0.6)

    def test_merged_in_combines_parallel(self, diamond):
        diamond.add_edge("a", "t", q=0.5)
        merged = diamond.merged_in("t")
        assert merged["a"] == pytest.approx(1 - (1 - 0.7) * 0.5)

    def test_set_q(self, diamond):
        key = diamond.add_edge("a", "b", q=0.2)
        diamond.set_q(key, 0.9)
        assert diamond.q(key) == 0.9

    def test_remove_edge(self, diamond):
        (edge,) = [e for e in diamond.edges() if (e.source, e.target) == ("a", "t")]
        diamond.remove_edge(edge.key)
        assert diamond.num_edges == 3
        with pytest.raises(GraphError):
            diamond.q(edge.key)


class TestTraversal:
    def test_reachable_from(self, diamond):
        assert diamond.reachable_from("s") == {"s", "a", "b", "t"}
        assert diamond.reachable_from("a") == {"a", "t"}

    def test_co_reachable_to(self, diamond):
        assert diamond.co_reachable_to("t") == {"s", "a", "b", "t"}
        assert diamond.co_reachable_to("a") == {"s", "a"}

    def test_topological_order(self, diamond):
        order = diamond.topological_order()
        assert order.index("s") < order.index("a") < order.index("t")

    def test_cycle_detection(self, diamond):
        diamond.add_edge("t", "s")
        assert not diamond.is_dag()
        with pytest.raises(CycleError):
            diamond.topological_order()

    def test_longest_path_length(self, diamond):
        assert diamond.longest_path_length_from("s") == 2


class TestCopySubgraph:
    def test_copy_preserves_edge_keys(self, diamond):
        keys = sorted(e.key for e in diamond.edges())
        clone = diamond.copy()
        assert sorted(e.key for e in clone.edges()) == keys

    def test_copy_is_independent(self, diamond):
        clone = diamond.copy()
        clone.set_p("a", 0.1)
        assert diamond.p("a") == 0.9

    def test_copy_continues_edge_numbering(self, diamond):
        clone = diamond.copy()
        new_key = clone.add_edge("s", "t")
        assert new_key not in {e.key for e in diamond.edges()}

    def test_subgraph_induces_edges(self, diamond):
        sub = diamond.subgraph({"s", "a", "t"})
        assert sub.num_nodes == 3
        assert sub.num_edges == 2


class TestQueryGraph:
    def test_requires_known_source_and_targets(self, diamond):
        with pytest.raises(GraphError):
            QueryGraph(diamond, "ghost", ["t"])
        with pytest.raises(GraphError):
            QueryGraph(diamond, "s", ["ghost"])

    def test_requires_nonempty_answer_set(self, diamond):
        with pytest.raises(GraphError):
            QueryGraph(diamond, "s", [])

    def test_rejects_duplicate_targets(self, diamond):
        with pytest.raises(GraphError):
            QueryGraph(diamond, "s", ["t", "t"])

    def test_between_subgraph_restricts_to_paths(self, diamond):
        diamond.add_node("offside")
        diamond.add_edge("a", "offside")
        qg = QueryGraph(diamond, "s", ["t"])
        sub = qg.between_subgraph("t")
        assert set(sub.graph.nodes()) == {"s", "a", "b", "t"}

    def test_between_subgraph_keeps_unreachable_target(self, diamond):
        diamond.add_node("island", p=0.5)
        qg = QueryGraph(diamond, "s", ["island"])
        sub = qg.between_subgraph("island")
        assert sub.graph.has_node("island")
        assert sub.graph.has_node("s")
