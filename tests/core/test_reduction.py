"""Tests for the graph reduction rules."""

import pytest

from repro.core.exact import exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.core.reduction import reduce_graph


class TestRules:
    def test_serial_collapse(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("m", p=0.9)
        graph.add_node("t")
        graph.add_edge("s", "m", q=0.8)
        graph.add_edge("m", "t", q=0.7)
        reduced, stats = reduce_graph(QueryGraph(graph, "s", ["t"]))
        assert reduced.graph.num_nodes == 2
        (edge,) = reduced.graph.edges()
        assert reduced.graph.q(edge.key) == pytest.approx(0.8 * 0.9 * 0.7)
        assert stats.serial_collapses == 1

    def test_parallel_merge(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t", q=0.5)
        graph.add_edge("s", "t", q=0.5)
        reduced, stats = reduce_graph(QueryGraph(graph, "s", ["t"]))
        (edge,) = reduced.graph.edges()
        assert reduced.graph.q(edge.key) == pytest.approx(0.75)
        assert stats.parallel_merges == 1

    def test_sink_deletion_cascades(self):
        graph = ProbabilisticEntityGraph()
        for node in ("s", "t", "d1", "d2"):
            graph.add_node(node)
        graph.add_edge("s", "t")
        graph.add_edge("s", "d1")
        graph.add_edge("d1", "d2")  # chain of dead ends
        reduced, stats = reduce_graph(QueryGraph(graph, "s", ["t"]))
        assert set(reduced.graph.nodes()) == {"s", "t"}
        assert stats.sinks_deleted == 2

    def test_unreachable_deletion(self):
        graph = ProbabilisticEntityGraph()
        for node in ("s", "t", "island"):
            graph.add_node(node)
        graph.add_edge("s", "t")
        graph.add_edge("island", "t")
        reduced, stats = reduce_graph(QueryGraph(graph, "s", ["t"]))
        assert not reduced.graph.has_node("island")
        assert stats.unreachable_deleted == 1

    def test_unreachable_kept_when_disabled(self):
        graph = ProbabilisticEntityGraph()
        for node in ("s", "t", "island"):
            graph.add_node(node)
        graph.add_edge("s", "t")
        graph.add_edge("island", "t")
        reduced, _ = reduce_graph(QueryGraph(graph, "s", ["t"]), remove_unreachable=False)
        assert reduced.graph.has_node("island")

    def test_self_loops_dropped(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t")
        graph.add_edge("s", "s", q=0.5)
        reduced, stats = reduce_graph(QueryGraph(graph, "s", ["t"]))
        assert stats.self_loops_deleted == 1
        assert reduced.graph.num_edges == 1

    def test_serial_collapse_skips_targets_and_source(self, serial_parallel):
        reduced, _ = reduce_graph(serial_parallel)
        assert reduced.graph.has_node("s")
        assert reduced.graph.has_node("u")

    def test_fully_reduces_series_parallel(self, serial_parallel):
        reduced, _ = reduce_graph(serial_parallel)
        # b and c collapse, the two parallel a->u edges merge, then a
        # collapses: s -> u single edge of probability 0.5 * 1 = 0.5
        assert reduced.graph.num_nodes == 2
        (edge,) = reduced.graph.edges()
        assert reduced.graph.q(edge.key) == pytest.approx(0.5)

    def test_wheatstone_is_fixed_point(self, wheatstone):
        reduced, stats = reduce_graph(wheatstone)
        assert reduced.graph.num_nodes == 4
        assert reduced.graph.num_edges == 5
        assert stats.combined_reduction == 0.0

    def test_unreachable_target_survives_isolated(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t", p=0.4)
        qg = QueryGraph(graph, "s", ["t"])
        reduced, _ = reduce_graph(qg)
        assert reduced.graph.has_node("t")
        assert reduced.graph.p("t") == 0.4


class TestPreservation:
    def test_reduction_preserves_reliability(self, two_target_dag):
        before = exact_reliability(two_target_dag)
        reduced, _ = reduce_graph(two_target_dag)
        after = exact_reliability(reduced)
        for target in two_target_dag.targets:
            assert after[target] == pytest.approx(before[target], abs=1e-12)

    def test_reduction_preserves_on_scenario_graph(self, scenario1_small):
        case = scenario1_small[2]  # AGPAT2: smallest of the three
        qg = case.query_graph
        reduced, stats = reduce_graph(qg)
        assert stats.combined_reduction > 0.5
        # spot-check three answers via brute force on their subgraphs
        for target in list(qg.targets)[:3]:
            before = exact_reliability(qg, target)[target]
            after = exact_reliability(reduced, target)[target]
            assert after == pytest.approx(before, abs=1e-9)

    def test_input_graph_untouched(self, serial_parallel):
        nodes_before = serial_parallel.graph.num_nodes
        reduce_graph(serial_parallel)
        assert serial_parallel.graph.num_nodes == nodes_before


class TestStats:
    def test_counts_and_ratios(self, serial_parallel):
        _, stats = reduce_graph(serial_parallel)
        assert stats.nodes_before == 5
        assert stats.edges_before == 5
        assert stats.nodes_after == 2
        assert stats.edges_after == 1
        assert stats.node_reduction == pytest.approx(0.6)
        assert stats.combined_reduction == pytest.approx(1 - 3 / 10)

    def test_empty_ratios_are_zero(self):
        from repro.core.reduction import ReductionStats

        stats = ReductionStats()
        assert stats.node_reduction == 0.0
        assert stats.edge_reduction == 0.0
        assert stats.combined_reduction == 0.0
