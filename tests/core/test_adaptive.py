"""Tests for adaptive top-k Monte Carlo."""

import pytest

from repro.core.adaptive import (
    IncrementalReliabilityEstimator,
    topk_reliability,
)
from repro.core.exact import exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import RankingError


@pytest.fixture
def spread_graph() -> QueryGraph:
    """Three answers with well-separated reliabilities 0.9 / 0.5 / 0.1."""
    graph = ProbabilisticEntityGraph()
    graph.add_node("s")
    for name, q in (("hi", 0.9), ("mid", 0.5), ("lo", 0.1)):
        graph.add_node(name)
        graph.add_edge("s", name, q=q)
    return QueryGraph(graph, "s", ["hi", "mid", "lo"])


@pytest.fixture
def tie_graph() -> QueryGraph:
    """Two answers with identical reliability 0.5 — unseparable."""
    graph = ProbabilisticEntityGraph()
    graph.add_node("s")
    for name in ("a", "b"):
        graph.add_node(name)
        graph.add_edge("s", name, q=0.5)
    return QueryGraph(graph, "s", ["a", "b"])


class TestIncrementalEstimator:
    def test_counts_accumulate(self, spread_graph):
        estimator = IncrementalReliabilityEstimator(spread_graph, rng=1)
        estimator.run(500)
        first = estimator.estimates()
        estimator.run(4500)
        second = estimator.estimates()
        assert estimator.trials == 5000
        assert second["hi"] == pytest.approx(0.9, abs=0.03)
        assert abs(second["hi"] - 0.9) <= abs(first["hi"] - 0.9) + 0.03

    def test_incremental_equals_one_shot_in_distribution(self, spread_graph):
        estimator = IncrementalReliabilityEstimator(spread_graph, rng=2)
        for _ in range(10):
            estimator.run(1000)
        exact = exact_reliability(spread_graph)
        for target, value in estimator.estimates().items():
            assert value == pytest.approx(exact[target], abs=0.02)

    def test_estimates_before_running_raise(self, spread_graph):
        with pytest.raises(RankingError):
            IncrementalReliabilityEstimator(spread_graph).estimates()

    def test_bad_batch_raises(self, spread_graph):
        estimator = IncrementalReliabilityEstimator(spread_graph)
        with pytest.raises(RankingError):
            estimator.run(0)


class TestTopKReliability:
    def test_wide_gap_stops_early(self, spread_graph):
        result = topk_reliability(spread_graph, k=1, epsilon=0.02, rng=3)
        assert result.separated
        assert result.top[0][0] == "hi"
        # the 0.4 boundary gap needs far fewer trials than eps = 0.02
        assert result.trials_used < 2000

    def test_top2_of_spread(self, spread_graph):
        result = topk_reliability(spread_graph, k=2, epsilon=0.05, rng=4)
        assert [node for node, _ in result.top] == ["hi", "mid"]
        assert result.separated

    def test_true_tie_reports_unseparated(self, tie_graph):
        result = topk_reliability(
            tie_graph, k=1, epsilon=0.05, delta=0.1, batch=200, rng=5
        )
        assert not result.separated
        assert result.boundary_gap < 0.05

    def test_budget_respected(self, tie_graph):
        result = topk_reliability(
            tie_graph, k=1, epsilon=0.001, max_trials=2000, batch=500, rng=6
        )
        assert result.trials_used <= 2000
        assert not result.separated

    def test_k_bounds_validated(self, spread_graph):
        with pytest.raises(RankingError):
            topk_reliability(spread_graph, k=0)
        with pytest.raises(RankingError):
            topk_reliability(spread_graph, k=3)  # k must leave a boundary

    def test_scores_cover_answer_set(self, spread_graph):
        result = topk_reliability(spread_graph, k=1, rng=7)
        assert set(result.scores) == {"hi", "mid", "lo"}

    def test_on_scenario_graph(self, scenario3_small):
        qg = scenario3_small[0].query_graph  # 47 answers
        result = topk_reliability(qg, k=5, epsilon=0.05, rng=8)
        exact = exact_reliability(qg)
        top_exact = sorted(exact.values(), reverse=True)[:5]
        top_estimated = [score for _, score in result.top]
        for estimated, truth in zip(top_estimated, top_exact):
            assert estimated == pytest.approx(truth, abs=0.1)
