"""Tests for evidence-path enumeration and explanations."""

import pytest

from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.core.paths import enumerate_paths, explain_answer
from repro.errors import GraphError


class TestEnumeratePaths:
    def test_serial_parallel_has_two_paths(self, serial_parallel):
        paths = enumerate_paths(serial_parallel, "u")
        assert len(paths) == 2
        assert {p.nodes for p in paths} == {
            ("s", "a", "b", "u"),
            ("s", "a", "c", "u"),
        }
        assert all(p.probability == pytest.approx(0.5) for p in paths)

    def test_wheatstone_has_three_paths(self, wheatstone):
        paths = enumerate_paths(wheatstone, "u")
        assert len(paths) == 3
        lengths = sorted(p.length for p in paths)
        assert lengths == [2, 2, 3]

    def test_paths_sorted_strongest_first(self, two_target_dag):
        paths = enumerate_paths(two_target_dag, "t1")
        probabilities = [p.probability for p in paths]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_path_probability_is_product(self, two_target_dag):
        paths = enumerate_paths(two_target_dag, "t1")
        strongest = paths[0]
        assert strongest.nodes == ("s", "m1", "t1")
        # p(s)*q(s,m1)*p(m1)*q(m1,t1)*p(t1)
        assert strongest.probability == pytest.approx(
            1.0 * 0.7 * 0.9 * 0.9 * 0.95
        )

    def test_max_paths_truncates_keeping_strongest(self, wheatstone):
        all_paths = enumerate_paths(wheatstone, "u")
        truncated = enumerate_paths(wheatstone, "u", max_paths=1)
        assert len(truncated) == 1
        assert truncated[0].probability >= max(p.probability for p in all_paths) - 1e-12

    def test_max_length_filters(self, wheatstone):
        short_only = enumerate_paths(wheatstone, "u", max_length=2)
        assert all(p.length <= 2 for p in short_only)
        assert len(short_only) == 2

    def test_cycles_do_not_hang(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a")
        graph.add_node("t")
        graph.add_edge("s", "a", q=0.5)
        graph.add_edge("a", "s", q=0.5)
        graph.add_edge("a", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        paths = enumerate_paths(qg, "t")
        assert len(paths) == 1

    def test_unreachable_target_has_no_paths(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        qg = QueryGraph(graph, "s", ["t"])
        assert enumerate_paths(qg, "t") == []

    def test_unknown_target_raises(self, wheatstone):
        with pytest.raises(GraphError):
            enumerate_paths(wheatstone, "ghost")

    def test_bad_max_paths(self, wheatstone):
        with pytest.raises(GraphError):
            enumerate_paths(wheatstone, "u", max_paths=0)

    def test_parallel_edges_merge_into_one_path(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t", q=0.5)
        graph.add_edge("s", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        paths = enumerate_paths(qg, "t")
        assert len(paths) == 1
        assert paths[0].probability == pytest.approx(0.75)


class TestExplainAnswer:
    def test_explanation_lists_paths(self, wheatstone):
        text = explain_answer(wheatstone, "u", top=2)
        assert "3 supporting path(s)" in text
        assert text.count("->") >= 2

    def test_no_path_message(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        qg = QueryGraph(graph, "s", ["t"])
        assert "no supporting path" in explain_answer(qg, "t")

    def test_on_scenario_graph_uses_labels(self, scenario3_small):
        case = scenario3_small[0]
        (true_node,) = case.relevant
        text = explain_answer(case.query_graph, true_node, top=2)
        assert "GO:" in text
