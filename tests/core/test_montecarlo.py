"""Tests for the Monte Carlo reliability estimators."""

import pytest

from repro.core.exact import exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.core.montecarlo import (
    CompiledGraph,
    naive_reliability,
    traversal_reliability,
)
from repro.errors import GraphError

TRIALS = 30_000
TOLERANCE = 0.02


class TestAgainstExact:
    def test_serial_parallel(self, serial_parallel):
        estimate = traversal_reliability(serial_parallel, trials=TRIALS, rng=1)
        assert estimate["u"] == pytest.approx(0.5, abs=TOLERANCE)

    def test_wheatstone(self, wheatstone):
        estimate = traversal_reliability(wheatstone, trials=TRIALS, rng=2)
        assert estimate["u"] == pytest.approx(0.46875, abs=TOLERANCE)

    def test_naive_matches_exact(self, wheatstone):
        estimate = naive_reliability(wheatstone, trials=TRIALS, rng=3)
        assert estimate["u"] == pytest.approx(0.46875, abs=TOLERANCE)

    def test_node_probabilities_respected(self, two_target_dag):
        exact = exact_reliability(two_target_dag)
        estimate = traversal_reliability(two_target_dag, trials=TRIALS, rng=4)
        for target, value in exact.items():
            assert estimate[target] == pytest.approx(value, abs=TOLERANCE)

    def test_naive_and_traversal_agree(self, two_target_dag):
        a = naive_reliability(two_target_dag, trials=TRIALS, rng=5)
        b = traversal_reliability(two_target_dag, trials=TRIALS, rng=6)
        for target in two_target_dag.targets:
            assert a[target] == pytest.approx(b[target], abs=2 * TOLERANCE)


class TestSemantics:
    def test_source_failure_kills_everything(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s", p=0.0)
        graph.add_node("t")
        graph.add_edge("s", "t", q=1.0)
        qg = QueryGraph(graph, "s", ["t"])
        assert traversal_reliability(qg, trials=500, rng=0)["t"] == 0.0

    def test_absent_intermediate_blocks_relay(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("m", p=0.0)
        graph.add_node("t")
        graph.add_edge("s", "m", q=1.0)
        graph.add_edge("m", "t", q=1.0)
        qg = QueryGraph(graph, "s", ["t"])
        assert naive_reliability(qg, trials=500, rng=0)["t"] == 0.0

    def test_certain_graph_gives_exactly_one(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t")
        qg = QueryGraph(graph, "s", ["t"])
        assert traversal_reliability(qg, trials=100, rng=0)["t"] == 1.0

    def test_unreachable_target_is_zero(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        qg = QueryGraph(graph, "s", ["t"])
        assert traversal_reliability(qg, trials=100, rng=0)["t"] == 0.0

    def test_cyclic_graphs_are_handled(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a", p=0.9)
        graph.add_node("t")
        graph.add_edge("s", "a", q=0.8)
        graph.add_edge("a", "s", q=0.8)  # cycle back
        graph.add_edge("a", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        estimate = traversal_reliability(qg, trials=TRIALS, rng=7)
        assert estimate["t"] == pytest.approx(0.8 * 0.9 * 0.5, abs=TOLERANCE)

    def test_parallel_edges_merge_correctly(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t", q=0.5)
        graph.add_edge("s", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        estimate = traversal_reliability(qg, trials=TRIALS, rng=8)
        assert estimate["t"] == pytest.approx(0.75, abs=TOLERANCE)


class TestApi:
    def test_trials_must_be_positive(self, serial_parallel):
        with pytest.raises(GraphError):
            traversal_reliability(serial_parallel, trials=0)

    def test_all_nodes_flag(self, serial_parallel):
        estimate = traversal_reliability(
            serial_parallel, trials=100, rng=0, all_nodes=True
        )
        assert set(estimate) == {"s", "a", "b", "c", "u"}

    def test_seeded_runs_reproduce(self, wheatstone):
        a = traversal_reliability(wheatstone, trials=1000, rng=42)
        b = traversal_reliability(wheatstone, trials=1000, rng=42)
        assert a == b

    def test_compiled_graph_merges_parallel_edges(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t", q=0.5)
        graph.add_edge("s", "t", q=0.5)
        compiled = CompiledGraph.from_query_graph(QueryGraph(graph, "s", ["t"]))
        (edges,) = [compiled.out[compiled.source]]
        assert len(edges) == 1
        assert edges[0][1] == pytest.approx(0.75)
