"""Tests for the evidence-correlation diagnostics."""

import pytest

from repro.core.diagnostics import correlation_report
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph


class TestCorrelationReport:
    def test_tree_has_zero_divergence(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a", p=0.9)
        graph.add_node("t1")
        graph.add_node("t2")
        graph.add_edge("s", "a", q=0.8)
        graph.add_edge("a", "t1", q=0.7)
        graph.add_edge("a", "t2", q=0.6)
        qg = QueryGraph(graph, "s", ["t1", "t2"])
        report = correlation_report(qg)
        assert report.tree_like_fraction == 1.0
        assert report.max_divergence == pytest.approx(0.0, abs=1e-9)

    def test_shared_prefix_detected(self, serial_parallel):
        report = correlation_report(serial_parallel)
        (answer,) = report.answers
        assert answer.reliability == pytest.approx(0.5)
        assert answer.propagation == pytest.approx(0.75)
        assert answer.divergence == pytest.approx(0.25)
        assert answer.relative_divergence == pytest.approx(0.5)
        assert report.tree_like_fraction == 0.0

    def test_divergence_is_nonnegative(self, two_target_dag):
        report = correlation_report(two_target_dag)
        for answer in report.answers:
            assert answer.divergence >= -1e-9

    def test_most_correlated_sorting(self, scenario3_small):
        report = correlation_report(scenario3_small[0].query_graph)
        top = report.most_correlated(3)
        divergences = [a.divergence for a in top]
        assert divergences == sorted(divergences, reverse=True)
        assert report.mean_divergence >= 0.0

    def test_scenario_graphs_have_correlated_answers(self, scenario1_small):
        """The generator's ambiguous BLAST xrefs must show up here —
        this is the structure that separates Rel from Prop in Fig 5."""
        report = correlation_report(scenario1_small[2].query_graph)  # AGPAT2
        assert report.max_divergence > 0.001
        assert 0.0 < report.tree_like_fraction < 1.0

    def test_empty_report_degenerates_gracefully(self):
        from repro.core.diagnostics import CorrelationReport

        report = CorrelationReport(answers=[])
        assert report.max_divergence == 0.0
        assert report.mean_divergence == 0.0
        assert report.tree_like_fraction == 1.0
        assert report.most_correlated() == []
