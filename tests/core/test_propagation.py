"""Tests for the propagation semantics (Algorithm 3.2)."""

import pytest

from repro.core.exact import exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.core.propagation import propagation_scores
from repro.errors import RankingError


class TestReferenceValues:
    def test_serial_parallel_is_three_quarters(self, serial_parallel):
        assert propagation_scores(serial_parallel)["u"] == pytest.approx(0.75)

    def test_wheatstone(self, wheatstone):
        assert propagation_scores(wheatstone)["u"] == pytest.approx(0.484375)

    def test_source_score_pinned_to_one(self, serial_parallel):
        scores = propagation_scores(serial_parallel, all_nodes=True)
        assert scores["s"] == 1.0


class TestTreeProposition:
    """Proposition 3.1: on trees, propagation equals reliability."""

    def test_chain(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a", p=0.9)
        graph.add_node("t", p=0.8)
        graph.add_edge("s", "a", q=0.7)
        graph.add_edge("a", "t", q=0.6)
        qg = QueryGraph(graph, "s", ["t"])
        assert propagation_scores(qg)["t"] == pytest.approx(
            exact_reliability(qg)["t"]
        )

    def test_branching_tree(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        for name, p in (("a", 0.9), ("b", 0.7), ("t1", 0.8), ("t2", 0.6)):
            graph.add_node(name, p=p)
        graph.add_edge("s", "a", q=0.5)
        graph.add_edge("s", "b", q=0.4)
        graph.add_edge("a", "t1", q=0.9)
        graph.add_edge("b", "t2", q=0.8)
        qg = QueryGraph(graph, "s", ["t1", "t2"])
        exact = exact_reliability(qg)
        propagated = propagation_scores(qg)
        for target in qg.targets:
            assert propagated[target] == pytest.approx(exact[target])


class TestDominance:
    def test_propagation_upper_bounds_reliability(self, wheatstone, serial_parallel):
        for qg in (wheatstone, serial_parallel):
            exact = exact_reliability(qg)["u"]
            assert propagation_scores(qg)["u"] >= exact - 1e-12


class TestIteration:
    def test_fixed_iterations_match_convergence_on_dag(self, serial_parallel):
        depth = serial_parallel.graph.longest_path_length_from("s")
        fixed = propagation_scores(serial_parallel, iterations=depth)
        converged = propagation_scores(serial_parallel)
        assert fixed["u"] == pytest.approx(converged["u"])

    def test_too_few_iterations_underestimate(self, serial_parallel):
        early = propagation_scores(serial_parallel, iterations=1)
        assert early["u"] == 0.0  # relevance has not reached u yet

    def test_cycles_converge(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a", p=0.9)
        graph.add_node("b", p=0.9)
        graph.add_node("t")
        graph.add_edge("s", "a", q=0.8)
        graph.add_edge("a", "b", q=0.7)
        graph.add_edge("b", "a", q=0.7)  # cycle
        graph.add_edge("b", "t", q=0.6)
        qg = QueryGraph(graph, "s", ["t"])
        scores = propagation_scores(qg)
        assert 0.0 < scores["t"] <= 1.0

    def test_non_convergence_raises(self, wheatstone):
        with pytest.raises(RankingError):
            propagation_scores(wheatstone, max_iterations=1, tolerance=0.0)

    def test_scores_bounded_by_one(self, scenario3_small):
        scores = propagation_scores(scenario3_small[0].query_graph)
        assert all(0.0 <= value <= 1.0 for value in scores.values())
