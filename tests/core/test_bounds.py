"""Tests for the Theorem 3.1 trial bounds."""

import pytest

from repro.core.bounds import rank_error_bound, required_trials
from repro.errors import ValidationError


class TestRequiredTrials:
    def test_paper_headline_cell(self):
        """eps = 0.02 at 95% confidence: the paper concludes 10,000
        trials suffice; the exact bound is just under 8,000."""
        n = required_trials(0.02, 0.05)
        assert 7000 < n <= 10_000

    def test_tighter_eps_needs_more_trials(self):
        assert required_trials(0.01, 0.05) > required_trials(0.02, 0.05)

    def test_higher_confidence_needs_more_trials(self):
        assert required_trials(0.02, 0.01) > required_trials(0.02, 0.05)

    def test_scales_inverse_quadratically_in_eps(self):
        ratio = required_trials(0.01, 0.05) / required_trials(0.02, 0.05)
        assert ratio == pytest.approx(4.0, rel=0.05)

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            required_trials(0.0, 0.05)
        with pytest.raises(ValidationError):
            required_trials(0.02, 0.0)
        with pytest.raises(ValidationError):
            required_trials(0.02, 1.0)


class TestRankErrorBound:
    def test_bound_at_required_trials_is_delta(self):
        epsilon, delta = 0.02, 0.05
        n = required_trials(epsilon, delta)
        assert rank_error_bound(epsilon, n) <= delta

    def test_bound_decreases_with_trials(self):
        assert rank_error_bound(0.02, 2000) > rank_error_bound(0.02, 20_000)

    def test_bound_never_exceeds_one(self):
        assert rank_error_bound(0.001, 1) <= 1.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            rank_error_bound(0.02, 0)

    def test_inverse_consistency(self):
        """required_trials is the smallest n whose bound is <= delta
        (up to the ceiling)."""
        epsilon, delta = 0.05, 0.1
        n = required_trials(epsilon, delta)
        assert rank_error_bound(epsilon, n) <= delta
        assert rank_error_bound(epsilon, n - 2) > delta
