"""Tests for the Wilson confidence interval on MC estimates."""

import pytest

from repro.core.montecarlo import estimate_interval, traversal_reliability
from repro.errors import GraphError


class TestEstimateInterval:
    def test_contains_estimate(self):
        lo, hi = estimate_interval(0.4, 1000)
        assert lo < 0.4 < hi

    def test_narrows_with_trials(self):
        lo1, hi1 = estimate_interval(0.5, 100)
        lo2, hi2 = estimate_interval(0.5, 10_000)
        assert hi2 - lo2 < hi1 - lo1

    def test_widens_with_confidence(self):
        lo95, hi95 = estimate_interval(0.5, 1000, confidence=0.95)
        lo99, hi99 = estimate_interval(0.5, 1000, confidence=0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_saturated_estimates_get_nondegenerate_interval(self):
        lo, hi = estimate_interval(1.0, 100)
        assert lo < 1.0 - 1e-3
        assert hi == pytest.approx(1.0)
        lo0, hi0 = estimate_interval(0.0, 100)
        assert lo0 == pytest.approx(0.0)
        assert hi0 > 1e-3

    def test_bounds_stay_in_unit_interval(self):
        for estimate in (0.0, 0.01, 0.5, 0.99, 1.0):
            lo, hi = estimate_interval(estimate, 37)
            assert 0.0 <= lo <= hi <= 1.0

    def test_interpolated_confidence(self):
        lo, hi = estimate_interval(0.5, 1000, confidence=0.93)
        lo90, hi90 = estimate_interval(0.5, 1000, confidence=0.90)
        lo95, hi95 = estimate_interval(0.5, 1000, confidence=0.95)
        assert hi90 - lo90 < hi - lo < hi95 - lo95

    def test_validation(self):
        with pytest.raises(GraphError):
            estimate_interval(1.5, 100)
        with pytest.raises(GraphError):
            estimate_interval(0.5, 0)
        with pytest.raises(GraphError):
            estimate_interval(0.5, 100, confidence=1.5)
        with pytest.raises(GraphError):
            estimate_interval(0.5, 100, confidence=0.5)

    def test_coverage_empirically(self, wheatstone):
        """~95% of seeded MC runs should bracket the true 0.46875."""
        truth = 0.46875
        trials = 500
        covered = 0
        runs = 100
        for seed in range(runs):
            estimate = traversal_reliability(wheatstone, trials=trials, rng=seed)["u"]
            lo, hi = estimate_interval(estimate, trials)
            covered += lo <= truth <= hi
        assert covered >= 0.88 * runs
