"""Tests for exact reliability: factoring vs brute force."""

import itertools
import random

import pytest

from repro.core.exact import (
    MAX_UNCERTAIN_COMPONENTS,
    brute_force_reliability,
    exact_reliability,
)
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import GraphError


class TestReferenceValues:
    def test_serial_parallel(self, serial_parallel):
        assert exact_reliability(serial_parallel)["u"] == pytest.approx(0.5)

    def test_wheatstone(self, wheatstone):
        assert exact_reliability(wheatstone)["u"] == pytest.approx(0.46875)

    def test_single_edge_with_node_probs(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s", p=0.9)
        graph.add_node("t", p=0.8)
        graph.add_edge("s", "t", q=0.7)
        qg = QueryGraph(graph, "s", ["t"])
        assert exact_reliability(qg)["t"] == pytest.approx(0.9 * 0.7 * 0.8)

    def test_source_is_target(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s", p=0.6)
        qg = QueryGraph(graph, "s", ["s"])
        assert exact_reliability(qg)["s"] == pytest.approx(0.6)

    def test_unreachable_target(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t", p=0.9)
        qg = QueryGraph(graph, "s", ["t"])
        assert exact_reliability(qg)["t"] == 0.0

    def test_two_targets(self, two_target_dag):
        scores = exact_reliability(two_target_dag)
        brute = brute_force_reliability(two_target_dag)
        for target in two_target_dag.targets:
            assert scores[target] == pytest.approx(brute[target])


class TestAgainstBruteForce:
    def _random_dag(self, seed: int) -> QueryGraph:
        rng = random.Random(seed)
        n = rng.randint(3, 7)
        nodes = [f"n{i}" for i in range(n)]
        graph = ProbabilisticEntityGraph()
        for i, node in enumerate(nodes):
            graph.add_node(node, p=1.0 if i == 0 else rng.choice([1.0, rng.random()]))
        for i, j in itertools.combinations(range(n), 2):
            if rng.random() < 0.5:
                graph.add_edge(nodes[i], nodes[j], q=rng.random())
        return QueryGraph(graph, nodes[0], [nodes[-1]])

    @pytest.mark.parametrize("seed", range(12))
    def test_factoring_matches_enumeration(self, seed):
        qg = self._random_dag(seed)
        target = qg.targets[0]
        factored = exact_reliability(qg, target)[target]
        enumerated = brute_force_reliability(qg, target)[target]
        assert factored == pytest.approx(enumerated, abs=1e-12)

    def test_factoring_on_cycles(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a", p=0.9)
        graph.add_node("b", p=0.8)
        graph.add_node("t")
        graph.add_edge("s", "a", q=0.7)
        graph.add_edge("a", "b", q=0.6)
        graph.add_edge("b", "a", q=0.5)  # cycle
        graph.add_edge("b", "t", q=0.4)
        qg = QueryGraph(graph, "s", ["t"])
        factored = exact_reliability(qg, "t")["t"]
        enumerated = brute_force_reliability(qg, "t")["t"]
        assert factored == pytest.approx(enumerated, abs=1e-12)


class TestGuards:
    def test_unknown_target_raises(self, wheatstone):
        with pytest.raises(GraphError):
            exact_reliability(wheatstone, "ghost")

    def test_component_budget(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        # a wide parallel bundle: many uncertain edges but trivially
        # reducible, so factoring must succeed via reductions
        for _ in range(MAX_UNCERTAIN_COMPONENTS + 5):
            graph.add_edge("s", "t", q=0.01)
        qg = QueryGraph(graph, "s", ["t"])
        with pytest.raises(GraphError):
            exact_reliability(qg)

    def test_brute_force_budget(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        for _ in range(25):
            graph.add_edge("s", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        with pytest.raises(GraphError):
            brute_force_reliability(qg, max_components=20)
