"""Tests for InEdge and PathCount."""

import pytest

from repro.core.deterministic import in_edge_scores, path_count_scores
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import CycleError


class TestInEdge:
    def test_counts_incoming_edges(self, serial_parallel):
        assert in_edge_scores(serial_parallel)["u"] == 2.0

    def test_wheatstone(self, wheatstone):
        assert in_edge_scores(wheatstone)["u"] == 2.0

    def test_parallel_edges_count_separately(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t", q=0.5)
        graph.add_edge("s", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        assert in_edge_scores(qg)["t"] == 2.0

    def test_ignores_probabilities(self, serial_parallel):
        serial_parallel.graph.set_q(0, 0.0001)
        assert in_edge_scores(serial_parallel)["u"] == 2.0

    def test_blind_to_distant_structure(self):
        """InEdge cannot see past the answer's immediate neighbourhood."""
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("hub")
        graph.add_node("t")
        for i in range(5):
            node = f"p{i}"
            graph.add_node(node)
            graph.add_edge("s", node)
            graph.add_edge(node, "hub")
        graph.add_edge("hub", "t")
        qg = QueryGraph(graph, "s", ["t"])
        assert in_edge_scores(qg)["t"] == 1.0  # despite 5 upstream paths


class TestPathCount:
    def test_serial_parallel(self, serial_parallel):
        assert path_count_scores(serial_parallel)["u"] == 2.0

    def test_wheatstone_counts_bridge_path(self, wheatstone):
        assert path_count_scores(wheatstone)["u"] == 3.0

    def test_sees_whole_subgraph(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("hub")
        graph.add_node("t")
        for i in range(5):
            node = f"p{i}"
            graph.add_node(node)
            graph.add_edge("s", node)
            graph.add_edge(node, "hub")
        graph.add_edge("hub", "t")
        qg = QueryGraph(graph, "s", ["t"])
        assert path_count_scores(qg)["t"] == 5.0

    def test_parallel_edges_multiply(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("m")
        graph.add_node("t")
        graph.add_edge("s", "m")
        graph.add_edge("s", "m")
        graph.add_edge("m", "t")
        qg = QueryGraph(graph, "s", ["t"])
        assert path_count_scores(qg)["t"] == 2.0

    def test_unreachable_is_zero(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        qg = QueryGraph(graph, "s", ["t"])
        assert path_count_scores(qg)["t"] == 0.0

    def test_cycles_raise(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a")
        graph.add_node("t")
        graph.add_edge("s", "a")
        graph.add_edge("a", "s")
        graph.add_edge("a", "t")
        qg = QueryGraph(graph, "s", ["t"])
        with pytest.raises(CycleError):
            path_count_scores(qg)

    def test_combinatorial_growth(self):
        """k diamond stages give 2^k paths — counted exactly."""
        graph = ProbabilisticEntityGraph()
        graph.add_node("n0")
        previous = "n0"
        for stage in range(6):
            top, bottom, join = f"t{stage}", f"b{stage}", f"j{stage}"
            for node in (top, bottom, join):
                graph.add_node(node)
            graph.add_edge(previous, top)
            graph.add_edge(previous, bottom)
            graph.add_edge(top, join)
            graph.add_edge(bottom, join)
            previous = join
        qg = QueryGraph(graph, "n0", [previous])
        assert path_count_scores(qg)[previous] == 2.0**6

    def test_scores_are_floats(self, serial_parallel):
        scores = path_count_scores(serial_parallel)
        assert all(isinstance(value, float) for value in scores.values())
