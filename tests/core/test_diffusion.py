"""Tests for the diffusion semantics (Algorithm 3.3)."""

import pytest

from repro.core.diffusion import diffusion_scores, solve_incoming_diffusion
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import RankingError


class TestInnerSolve:
    def test_no_contributors(self):
        assert solve_incoming_diffusion([]) == 0.0
        assert solve_incoming_diffusion([(0.0, 0.5)]) == 0.0
        assert solve_incoming_diffusion([(0.5, 0.0)]) == 0.0

    def test_single_parent_closed_form(self):
        # rbar = (r - rbar) q  ->  rbar = r q / (1 + q)
        assert solve_incoming_diffusion([(1.0, 0.5)]) == pytest.approx(1 / 3)
        assert solve_incoming_diffusion([(0.8, 1.0)]) == pytest.approx(0.4)

    def test_two_equal_parents(self):
        # rbar = 2 (r - rbar) q with r=1, q=1  ->  rbar = 2/3
        assert solve_incoming_diffusion([(1.0, 1.0), (1.0, 1.0)]) == pytest.approx(2 / 3)

    def test_weak_parent_excluded_from_active_set(self):
        # strong parent alone gives rbar = 0.45/1.9 ≈ 0.2368 > 0.1, so the
        # 0.1 parent contributes nothing
        with_weak = solve_incoming_diffusion([(0.5, 0.9), (0.1, 0.9)])
        without = solve_incoming_diffusion([(0.5, 0.9)])
        assert with_weak == pytest.approx(without)

    def test_fixed_point_property(self):
        incoming = [(0.9, 0.8), (0.5, 0.3), (0.2, 0.9)]
        rbar = solve_incoming_diffusion(incoming)
        residual = sum(max((r - rbar) * q, 0.0) for r, q in incoming)
        assert residual == pytest.approx(rbar, abs=1e-12)

    def test_result_below_max_parent(self):
        incoming = [(0.9, 1.0), (0.8, 1.0), (0.7, 1.0)]
        assert solve_incoming_diffusion(incoming) < 0.9


class TestReferenceValues:
    def test_serial_parallel_is_one_ninth(self, serial_parallel):
        assert diffusion_scores(serial_parallel)["u"] == pytest.approx(
            1 / 9, abs=1e-9
        )

    def test_wheatstone_fixed_point_is_one_sixth(self, wheatstone):
        # the paper prints 0.11 here but the §3.3 equations' fixed point
        # is 1/6 (we verified 4a's 0.11 = 1/9 analytically)
        assert diffusion_scores(wheatstone)["u"] == pytest.approx(1 / 6, abs=1e-9)

    def test_source_pinned_to_one(self, serial_parallel):
        scores = diffusion_scores(serial_parallel, all_nodes=True)
        assert scores["s"] == 1.0


class TestBehaviour:
    def test_favours_short_strong_over_long_redundant(self):
        """The defining behaviour: one short strong path beats many
        longer medium ones (what makes diffusion win scenario 2)."""
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("short", p=1.0)
        graph.add_node("t_short", p=1.0)
        graph.add_edge("s", "short", q=0.9)
        graph.add_edge("short", "t_short", q=0.9)
        # redundant target: three 3-hop chains of strength 0.6
        graph.add_node("t_long")
        for i in range(3):
            a, b = f"a{i}", f"b{i}"
            graph.add_node(a)
            graph.add_node(b)
            graph.add_edge("s", a, q=0.6)
            graph.add_edge(a, b, q=0.6)
            graph.add_edge(b, "t_long", q=0.6)
        qg = QueryGraph(graph, "s", ["t_short", "t_long"])
        scores = diffusion_scores(qg)
        assert scores["t_short"] > scores["t_long"]

    def test_path_length_attenuates(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        previous = "s"
        for i in range(4):
            node = f"n{i}"
            graph.add_node(node)
            graph.add_edge(previous, node, q=1.0)
            previous = node
        qg = QueryGraph(graph, "s", [previous])
        scores = diffusion_scores(qg, all_nodes=True)
        values = [scores[f"n{i}"] for i in range(4)]
        assert values == sorted(values, reverse=True)

    def test_cycles_converge(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("s", "a", q=0.9)
        graph.add_edge("a", "b", q=0.9)
        graph.add_edge("b", "a", q=0.9)
        qg = QueryGraph(graph, "s", ["b"])
        scores = diffusion_scores(qg)
        assert 0.0 < scores["b"] < 1.0

    def test_scores_bounded_by_one(self, scenario3_small):
        scores = diffusion_scores(scenario3_small[0].query_graph)
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_non_convergence_raises(self, wheatstone):
        with pytest.raises(RankingError):
            diffusion_scores(wheatstone, max_iterations=1, tolerance=0.0)

    def test_fixed_iterations_mode(self, serial_parallel):
        partial = diffusion_scores(serial_parallel, iterations=1)
        assert partial["u"] == 0.0
