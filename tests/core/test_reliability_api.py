"""Tests for the reliability front door (strategy dispatch)."""

import pytest

from repro.core.reliability import reliability_scores
from repro.errors import RankingError


class TestStrategies:
    def test_exact_strategy(self, wheatstone):
        scores = reliability_scores(wheatstone, strategy="exact")
        assert scores["u"] == pytest.approx(0.46875)

    def test_closed_strategy(self, wheatstone):
        scores = reliability_scores(wheatstone, strategy="closed")
        assert scores["u"] == pytest.approx(0.46875)

    def test_mc_strategy_approximates(self, wheatstone):
        scores = reliability_scores(
            wheatstone, strategy="mc", trials=30_000, rng=1
        )
        assert scores["u"] == pytest.approx(0.46875, abs=0.02)

    def test_naive_mc_strategy(self, serial_parallel):
        scores = reliability_scores(
            serial_parallel, strategy="naive-mc", trials=30_000, rng=2
        )
        assert scores["u"] == pytest.approx(0.5, abs=0.02)

    def test_auto_reduces_then_simulates(self, serial_parallel):
        # after reduction the graph is a single certain-or-not edge, so
        # the MC estimate over it is exact in distribution; with the
        # fixed seed we only check it is a valid probability near 0.5
        scores = reliability_scores(serial_parallel, trials=10_000, rng=3)
        assert scores["u"] == pytest.approx(0.5, abs=0.02)

    def test_reduce_flag_does_not_change_estimates(self, two_target_dag):
        reduced = reliability_scores(
            two_target_dag, strategy="mc", trials=30_000, reduce=True, rng=4
        )
        raw = reliability_scores(
            two_target_dag, strategy="mc", trials=30_000, reduce=False, rng=4
        )
        for target in two_target_dag.targets:
            assert reduced[target] == pytest.approx(raw[target], abs=0.03)

    def test_unknown_strategy_raises(self, wheatstone):
        with pytest.raises(RankingError):
            reliability_scores(wheatstone, strategy="magic")

    def test_strategies_agree_on_scenario_case(self, scenario3_small):
        qg = scenario3_small[2].query_graph  # NMC0498, tiny
        closed = reliability_scores(qg, strategy="closed")
        exact = reliability_scores(qg, strategy="exact")
        mc = reliability_scores(qg, strategy="mc", trials=20_000, rng=5)
        for target in qg.targets:
            assert closed[target] == pytest.approx(exact[target], abs=1e-9)
            assert mc[target] == pytest.approx(exact[target], abs=0.025)
