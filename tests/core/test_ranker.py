"""Tests for the unified ranker and RankedResult."""

import pytest

from repro.core.ranker import ALIASES, METHODS, RankedResult, rank, resolve_method
from repro.errors import GraphError, RankingError


class TestResolveMethod:
    @pytest.mark.parametrize("alias,canonical", list(ALIASES.items()))
    def test_aliases(self, alias, canonical):
        assert resolve_method(alias) == canonical

    def test_case_and_dash_insensitive(self):
        assert resolve_method("In-Edge") == "in_edge"
        assert resolve_method("RELIABILITY") == "reliability"

    def test_unknown_raises(self):
        with pytest.raises(RankingError):
            resolve_method("pagerank")


class TestRank:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_all_methods_produce_target_scores(self, method, two_target_dag):
        result = rank(two_target_dag, method)
        assert set(result.scores) == set(two_target_dag.targets)

    def test_options_forwarded(self, two_target_dag):
        result = rank(two_target_dag, "reliability", strategy="exact")
        from repro.core.exact import exact_reliability

        assert result.scores == pytest.approx(exact_reliability(two_target_dag))

    def test_random_method_ties_everything(self, two_target_dag):
        result = rank(two_target_dag, "random")
        assert len(result.tie_groups()) == 1

    def test_seeded_mc_reproducible(self, two_target_dag):
        a = rank(two_target_dag, "reliability", strategy="mc", trials=500, rng=3)
        b = rank(two_target_dag, "reliability", strategy="mc", trials=500, rng=3)
        assert a.scores == b.scores


class TestRankedResult:
    @pytest.fixture
    def result(self) -> RankedResult:
        return RankedResult(
            method="test",
            scores={"a": 0.9, "b": 0.5, "c": 0.5, "d": 0.1},
        )

    def test_ordered_descending(self, result):
        assert [node for node, _ in result.ordered()] == ["a", "b", "c", "d"]

    def test_top(self, result):
        assert [node for node, _ in result.top(2)] == ["a", "b"]

    def test_tie_groups(self, result):
        assert result.tie_groups() == [["a"], ["b", "c"], ["d"]]

    def test_rank_interval_unique(self, result):
        assert result.rank_interval("a") == (1, 1)
        assert result.rank_interval("d") == (4, 4)

    def test_rank_interval_tied(self, result):
        assert result.rank_interval("b") == (2, 3)
        assert result.rank_interval("c") == (2, 3)

    def test_expected_rank_is_midpoint(self, result):
        assert result.expected_rank("b") == 2.5

    def test_unknown_node_raises(self, result):
        with pytest.raises(GraphError):
            result.rank_interval("ghost")

    def test_len(self, result):
        assert len(result) == 4

    def test_interval_consistency_with_metrics_module(self, result):
        from repro.metrics.ranking import rank_intervals

        independent = rank_intervals(result.scores)
        for node in result.scores:
            assert independent[node] == result.rank_interval(node)
