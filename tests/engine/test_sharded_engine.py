"""Unit tests for the scatter/gather sharding layer.

The cross-shard *equivalence* guarantee is proven by
``tests/property/test_property_sharded.py``; these tests pin the
mechanics — routing, partitioners, fault paths, per-shard cache
invalidation, stats aggregation and the session wiring.
"""

import pytest

from repro.api import EngineConfig, Session, open_session
from repro.engine import (
    EngineStats,
    HashPartitioner,
    KeyRangePartitioner,
    ShardRouter,
    ShardedEngine,
)
from repro.errors import (
    EmptyAnswerError,
    QueryError,
    RankingError,
    SchemaError,
    StorageError,
)
from repro.integration.partition import sink_entity_sets
from repro.workloads import mediated_layers


@pytest.fixture
def workload():
    w = mediated_layers(layers=3, width=12, fan_out=2, seeds=2, rng=7, shards=2)
    yield w
    w.close()


def _nodes(results):
    return [(e.node, e.score, e.rank_interval) for e in results]


class TestPartitioners:
    def test_hash_partitioner_is_deterministic_and_total(self):
        p = HashPartitioner(3)
        owners = {p.owner("E1", f"k{i}") for i in range(100)}
        assert owners == {0, 1, 2}
        assert all(
            p.owner("E1", f"k{i}") == HashPartitioner(3).owner("E1", f"k{i}")
            for i in range(100)
        )

    def test_hash_partitioner_rejects_bad_counts(self):
        with pytest.raises(QueryError):
            HashPartitioner(0)

    def test_equal_keys_share_an_owner(self):
        """Every other layer compares keys by ==, so ownership must
        too: 3, 3.0 and True/1 are the same probe everywhere."""
        p = HashPartitioner(7)
        for a, b in [(3, 3.0), (1, True), (0, 0.0), (0, False), (-2, -2.0)]:
            assert p.owner("E", a) == p.owner("E", b), (a, b)
        # probe order must not matter (the memo is equality-keyed)
        q = HashPartitioner(7)
        assert q.owner("E", 3.0) == p.owner("E", 3)
        # ...while genuinely distinct keys may differ ('3' != 3)
        assert isinstance(p.owner("E", "3"), int)

    def test_key_range_partitioner(self):
        p = KeyRangePartitioner(3, {"E1": ["g", "p"]})
        assert p.owner("E1", "apple") == 0
        assert p.owner("E1", "melon") == 1
        assert p.owner("E1", "zebra") == 2
        # sets without boundaries fall back to hash ownership (total)
        assert 0 <= p.owner("Other", "x") < 3

    def test_key_range_validation(self):
        with pytest.raises(QueryError, match="sorted"):
            KeyRangePartitioner(3, {"E1": ["p", "g"]})
        with pytest.raises(QueryError, match="cannot split"):
            KeyRangePartitioner(2, {"E1": ["a", "b", "c"]})

    def test_balanced_ranges_cover_all_shards(self):
        keys = [f"K{i:03d}" for i in range(90)]
        p = KeyRangePartitioner.balanced(3, {"E1": keys})
        counts = [0, 0, 0]
        for key in keys:
            counts[p.owner("E1", key)] += 1
        assert all(count > 0 for count in counts)


class TestRouter:
    def test_only_sink_sets_are_partitionable(self, workload):
        assert sink_entity_sets(workload.mediator) == {"E2"}
        with pytest.raises(SchemaError, match="outgoing relationship"):
            ShardRouter.partition(workload.mediator, 2, partition_sets=["E1"])

    def test_unknown_partition_set_rejected(self, workload):
        with pytest.raises(QueryError, match="unknown entity set"):
            ShardRouter.partition(workload.mediator, 2, partition_sets=["E9"])

    def test_point_lookup_routes_to_one_shard(self, workload):
        router = workload.router
        key = "E2:3"
        query = workload.query
        # the workload query probes E0.root, not a partitioned key: fan out
        assert router.relevant_shards(query) == [0, 1]
        from repro.integration.query import ExploratoryQuery

        point = ExploratoryQuery("E2", "id", key, outputs=("E2",))
        assert router.relevant_shards(point) == [router.owner("E2", key)]

    def test_mediator_count_must_match_partitioner(self, workload):
        with pytest.raises(QueryError, match="mediators"):
            ShardRouter(workload.router.mediators, HashPartitioner(3))

    def test_unknown_partitioner_name(self, workload):
        with pytest.raises(QueryError, match="unknown partitioner"):
            ShardRouter.partition(workload.mediator, 2, partitioner="modulo")

    def test_empty_schema_sharded_open_is_actionable(self):
        with pytest.raises(QueryError, match="sources first"):
            open_session(shards=2)

    def test_gathered_result_graph_access_is_actionable(self, workload):
        from repro.errors import GraphError

        result = workload.open_session().execute(workload.spec())
        with pytest.raises(GraphError, match="shard_graphs"):
            result.graph
        assert 1 <= len(result.shard_graphs) <= 2

    def test_sinkless_schema_cannot_be_partitioned(self):
        # cyclic workload: every entity set has outgoing bindings, so
        # sharding would silently replicate the full graph per shard
        w = mediated_layers(layers=2, width=6, fan_out=2, rng=3, cyclic=True)
        try:
            with pytest.raises(SchemaError, match="no sink entity sets"):
                ShardRouter.partition(w.mediator, 2)
            with pytest.raises(SchemaError, match="no sink entity sets"):
                Session(mediator=w.mediator, config=EngineConfig(shards=2))
        finally:
            w.close()

    def test_range_partitioner_by_name(self, workload):
        router = ShardRouter.partition(workload.mediator, 2, partitioner="range")
        session = Session(mediator=workload.mediator, router=router)
        sharded = session.execute(workload.spec(method="path_count"))
        reference = workload.open_session(sharded=False).execute(
            workload.spec(method="path_count")
        )
        assert _nodes(sharded) == _nodes(reference)


class TestFaultPaths:
    def test_empty_shard_partition_is_not_an_error(self):
        # width 1: one answer record, so at least one of 3 shards owns
        # nothing at all — gather must still match the single engine
        w = mediated_layers(layers=2, width=1, fan_out=2, seeds=1, rng=3, shards=3)
        try:
            reference = w.open_session(sharded=False).execute(w.spec())
            sharded = w.open_session().execute(w.spec())
            assert _nodes(sharded) == _nodes(reference)
        finally:
            w.close()

    def test_all_answers_on_one_shard(self, workload):
        # a key-range with an extreme cut point: shard 1 owns nothing
        partitioner = KeyRangePartitioner(2, {"E2": ["￿"]})
        router = ShardRouter.partition(
            workload.mediator, 2, partitioner=partitioner
        )
        session = Session(mediator=workload.mediator, router=router)
        sharded = session.execute(workload.spec(method="in_edge"))
        reference = workload.open_session(sharded=False).execute(
            workload.spec(method="in_edge")
        )
        assert _nodes(sharded) == _nodes(reference)
        assert all(
            router.owner("E2", e.node[1]) == 0 for e in sharded
        )

    def test_shard_raising_mid_gather_is_a_clean_query_error(self, workload):
        session = workload.open_session()
        engine = session.sharded_engine.engines[1]

        def explode(*args, **kwargs):
            raise StorageError("disk vanished")

        engine.execute_with_stats = explode
        with pytest.raises(QueryError, match="shard 1 failed during scatter/gather"):
            session.execute(workload.spec())

    def test_identical_failure_on_every_shard_is_reraised_verbatim(self, workload):
        # one sweep cannot converge: every shard raises the same
        # RankingError, which must surface unwrapped (a query-level
        # error, not shard infrastructure trouble)
        from repro.api import RankingOptions

        session = workload.open_session()
        spec = workload.spec(
            method="diffusion",
            options=RankingOptions(max_iterations=1),
        )
        with pytest.raises(RankingError, match="did not converge"):
            session.execute(spec)

    def test_no_seeds_error_matches_single_engine(self, workload):
        bad = workload.spec().replace(value="nope")
        single = workload.open_session(sharded=False)
        sharded = workload.open_session()
        with pytest.raises(EmptyAnswerError) as reference:
            single.execute(bad)
        with pytest.raises(EmptyAnswerError) as gathered:
            sharded.execute(bad)
        assert str(gathered.value) == str(reference.value)
        assert gathered.value.kind == "no-seeds"

    def test_no_answers_error_matches_single_engine(self):
        # every link dangles: seeds exist but no output record is reached
        w = mediated_layers(
            layers=2, width=6, fan_out=2, seeds=1, rng=5, shards=2,
            dangling_rate=1.0,
        )
        try:
            with pytest.raises(EmptyAnswerError) as reference:
                w.open_session(sharded=False).execute(w.spec())
            with pytest.raises(EmptyAnswerError) as gathered:
                w.open_session().execute(w.spec())
            assert str(gathered.value) == str(reference.value)
            assert gathered.value.kind == "no-answers"
        finally:
            w.close()


class TestShardCacheInvalidation:
    def test_mutating_one_shard_bumps_only_that_shards_epoch(self, workload):
        session = workload.open_session()
        spec = workload.spec(method="in_edge")
        before = session.execute(spec)
        assert [s.graph_misses for s in session.shard_stats()] == [1, 1]

        # warm: both shards serve from their query caches
        session.execute(spec)
        assert [s.graph_hits for s in session.shard_stats()] == [1, 1]

        # delete one answer record from shard 0's partitioned table
        shard0 = workload.shard_databases[0].table("ents")
        victim_id = next(iter(shard0.row_ids()))
        victim_key = shard0.get(victim_id)["id"]
        shard0.delete(victim_id)

        after = session.execute(spec)
        stats = session.shard_stats()
        # shard 0 repaired its cached graph from the delta; shard 1
        # never saw a change to a table it read and stayed warm
        assert stats[0].graph_repairs == 1
        assert stats[0].graph_misses == 1
        assert stats[1].graph_misses == 1
        assert stats[1].graph_hits == 2
        assert stats[1].graph_repairs == 0
        # ... and the gather layer serves the fresh answer set
        gone = {e.node for e in before} - {e.node for e in after}
        assert gone == {("E2", victim_key)} or victim_key not in {
            e.node[1] for e in before
        }

    def test_confidence_tuning_reaches_every_shard(self, workload):
        session = workload.open_session()
        spec = workload.spec(method="propagation")
        session.execute(spec)
        workload.mediator.confidences.set_relationship_confidence("rel0", 0.5)
        session.execute(spec)
        # tuning the shared registry invalidates both shard caches
        assert [s.graph_misses for s in session.shard_stats()] == [2, 2]


class TestStatsAndSession:
    def test_engine_stats_aggregate(self):
        total = EngineStats.aggregate(
            [
                EngineStats(graph_hits=1, score_misses=2, queries_executed=3),
                EngineStats(graph_hits=4, compile_hits=5),
            ]
        )
        assert total.graph_hits == 5
        assert total.score_misses == 2
        assert total.compile_hits == 5
        assert total.queries_executed == 3

    def test_session_stats_aggregate_over_shards(self, workload):
        session = workload.open_session()
        session.execute(workload.spec(method="in_edge"))
        snapshot = session.stats_snapshot()
        assert snapshot.queries_executed == 2  # one per shard
        assert len(session.shard_stats()) == 2
        assert "shards=2" in repr(session)

    def test_execute_many_sharded_dedups_and_orders(self, workload):
        session = workload.open_session()
        spec_a = workload.spec(method="in_edge")
        spec_b = workload.spec(method="path_count")
        results = session.execute_many([spec_a, spec_b, spec_a])
        assert results[0] is results[2]
        assert _nodes(results[1]) != []
        reference = workload.open_session(sharded=False)
        assert _nodes(results[0]) == _nodes(reference.execute(spec_a))

    def test_execute_many_sharded_return_errors(self, workload):
        session = workload.open_session()
        good = workload.spec(method="in_edge")
        bad = good.replace(value="nope")
        outcomes = session.execute_many([good, bad], return_errors=True)
        assert _nodes(outcomes[0])
        assert isinstance(outcomes[1], EmptyAnswerError)
        with pytest.raises(EmptyAnswerError):
            session.execute_many([good, bad])

    def test_explain_sharded_aggregates(self, workload):
        session = workload.open_session()
        spec = workload.spec(method="in_edge")
        first = session.explain(spec)
        second = session.explain(spec)
        assert not first.graph_cached
        assert second.graph_cached and second.score_cached
        assert first.fingerprint is None
        assert first.answers == len(session.execute(spec))
        # aggregated build stats count each shard's materialisation
        reference_session = workload.open_session(sharded=False)
        reference = reference_session.explain(spec)
        assert first.build_stats.nodes > reference.build_stats.nodes

    def test_shards_config_contradiction_rejected(self, workload):
        with pytest.raises(QueryError, match="contradicts"):
            Session(
                mediator=workload.mediator,
                config=EngineConfig(shards=3),
                router=workload.router,
            )
        with pytest.raises(QueryError, match="contradicts"):
            open_session(
                mediator=workload.mediator,
                config=EngineConfig(shards=3),
                shards=2,
            )

    def test_closed_sharded_session_rejects_execution(self, workload):
        session = workload.open_session()
        session.close()
        with pytest.raises(RankingError, match="closed"):
            session.execute(workload.spec())

    def test_sharded_engine_repr_and_properties(self, workload):
        engine = ShardedEngine(workload.router)
        assert engine.shards == 2
        assert "shards=2" in repr(engine)

    def test_execute_many_respects_explicit_max_workers(self, workload):
        session = workload.open_session()
        specs = [workload.spec(method="in_edge"), workload.spec(method="path_count")]
        narrow = session.execute_many(specs, max_workers=1)
        reference = workload.open_session(sharded=False)
        for spec, outcome in zip(specs, narrow):
            assert _nodes(outcome) == _nodes(reference.execute(spec))

    def test_register_replicates_into_every_shard(self, workload):
        """A source registered on a sharded session must be visible to
        execution (which runs on the shard mediators), not just to the
        base mediator."""
        from repro.integration.sources import DataSource, EntityBinding, RelationshipBinding
        from repro.storage import Column, ColumnType, Database

        def build_source(source_entity):
            db = Database("extra")
            db.create_table(
                "terms",
                columns=[Column("id", ColumnType.TEXT)],
                primary_key=["id"],
            )
            links = db.create_table(
                "links",
                columns=[
                    Column("src", ColumnType.TEXT),
                    Column("dst", ColumnType.TEXT),
                ],
            )
            links.create_index("by_src", ["src"])
            db.insert_many("terms", [{"id": f"T:{i}"} for i in range(4)])
            db.insert_many(
                "links",
                [
                    {"src": f"{source_entity}:{j}", "dst": f"T:{j % 4}"}
                    for j in range(12)
                ],
            )
            return DataSource(
                name="Terms",
                database=db,
                entities=(EntityBinding("Term", "terms", "id"),),
                relationships=(
                    RelationshipBinding(
                        relationship="annotates",
                        table="links",
                        source_entity=source_entity,
                        source_column="src",
                        target_entity="Term",
                        target_column="dst",
                    ),
                ),
            )

        # hanging the new relationship off the *partitioned* set would
        # break the sink rule: each shard would follow links from only
        # its own E2 partition, scoring Term answers against partial
        # ancestor subgraphs — rejected up front
        with pytest.raises(SchemaError, match="traversal sink"):
            workload.open_session().register(build_source("E2"))

        # off a replicated set it is safe, and execution must see it
        sharded = workload.open_session().register(build_source("E1"))
        # the base mediator got the same registration, so the unsharded
        # reference session sees the new source too
        single = workload.open_session(sharded=False)
        spec = workload.spec(outputs=("Term",), method="in_edge")
        gathered = sharded.execute(spec)
        reference = single.execute(spec)
        assert _nodes(gathered) == _nodes(reference)


def test_stale_shard_files_with_coinciding_counts_rejected(tmp_path):
    """A row-count match must not be enough to adopt a persisted shard
    file: re-partitioning with a different shards= value can coincide
    in size while holding the wrong rows."""
    shape = dict(layers=2, width=6, fan_out=1, seeds=1, rng=9, storage="sqlite")
    first = mediated_layers(shards=3, storage_path=tmp_path, **shape)
    counts_by_three = [len(db.table("ents")) for db in first.shard_databases]
    first.close()

    partitioner = HashPartitioner(5)
    keys = [f"E1:{j}" for j in range(6)]
    counts_by_five = [
        sum(1 for k in keys if partitioner.owner("E1", k) == s) for s in range(5)
    ]
    # the interesting case: some stale file's row count coincides with
    # the new partition's expectation (ownership is a fixed content
    # hash, so this precondition is stable across runs)
    assert any(
        counts_by_five[s] == counts_by_three[s] and counts_by_three[s] > 0
        for s in range(3)
    ), "shape no longer produces a count coincidence; adjust the shape"
    from repro.errors import ValidationError

    with pytest.raises(ValidationError, match="different parameters"):
        mediated_layers(shards=5, storage_path=tmp_path, **shape)
