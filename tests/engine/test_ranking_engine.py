"""Tests for the batched, cached RankingEngine."""

import pytest

from repro.core.ranker import rank
from repro.engine import RankingEngine
from repro.errors import RankingError
from repro.integration import ExploratoryQuery
from repro.workloads import mediated_layers


class TestRankMatchesDirect:
    def test_deterministic_methods(self, two_target_dag):
        engine = RankingEngine()
        for method in ("propagation", "diffusion", "in_edge", "path_count"):
            direct = rank(two_target_dag, method).scores
            via_engine = engine.rank(two_target_dag, method).scores
            for node in direct:
                assert via_engine[node] == pytest.approx(direct[node], abs=1e-9)

    def test_reference_backend_override(self, two_target_dag):
        engine = RankingEngine(backend="compiled")
        result = engine.rank(two_target_dag, "propagation", backend="reference")
        assert result.scores == rank(two_target_dag, "propagation").scores

    def test_unknown_backend_rejected(self):
        with pytest.raises(RankingError):
            RankingEngine(backend="quantum")


class TestCaching:
    def test_score_cache_hits_on_repeat(self, wheatstone):
        engine = RankingEngine()
        first = engine.rank(wheatstone, "propagation")
        second = engine.rank(wheatstone, "propagation")
        assert engine.stats.score_misses == 1
        assert engine.stats.score_hits == 1
        assert first.scores == second.scores

    def test_cache_shared_across_identical_graphs(self, wheatstone):
        """Structurally identical but distinct objects share cached scores
        via the content fingerprint."""
        engine = RankingEngine()
        engine.rank(wheatstone, "diffusion")
        engine.rank(wheatstone.copy(), "diffusion")
        assert engine.stats.score_hits == 1
        # distinct objects each compile once
        assert engine.stats.compile_misses == 2

    def test_compile_cache_reused_across_methods(self, wheatstone):
        engine = RankingEngine()
        for method in ("propagation", "in_edge", "path_count"):
            engine.rank(wheatstone, method)
        assert engine.stats.compile_misses == 1
        assert engine.stats.compile_hits == 2

    def test_options_distinguish_cache_entries(self, wheatstone):
        engine = RankingEngine()
        a = engine.rank(wheatstone, "propagation", iterations=1)
        b = engine.rank(wheatstone, "propagation", iterations=50)
        assert engine.stats.score_hits == 0
        assert a.scores != b.scores

    def test_unseeded_monte_carlo_not_cached(self, wheatstone):
        engine = RankingEngine()
        engine.rank(wheatstone, "reliability", strategy="mc", trials=50)
        engine.rank(wheatstone, "reliability", strategy="mc", trials=50)
        assert engine.stats.score_hits == 0

    def test_backend_is_part_of_the_cache_key(self, wheatstone):
        """A seeded MC estimate cached for one backend must not be served
        to an explicit request for the other (different RNG streams)."""
        engine = RankingEngine()
        options = dict(strategy="mc", reduce=False, trials=2000, rng=7)
        compiled = engine.rank(
            wheatstone, "reliability", backend="compiled", **options
        )
        reference = engine.rank(
            wheatstone, "reliability", backend="reference", **options
        )
        assert engine.stats.score_hits == 0
        from repro.core.ranker import rank as direct_rank

        direct = direct_rank(wheatstone, "reliability", **options)
        assert reference.scores == direct.scores
        assert compiled.scores != reference.scores  # different streams

    def test_seeded_monte_carlo_cached(self, wheatstone):
        engine = RankingEngine()
        a = engine.rank(wheatstone, "reliability", strategy="mc", trials=50, rng=7)
        b = engine.rank(wheatstone, "reliability", strategy="mc", trials=50, rng=7)
        assert engine.stats.score_hits == 1
        assert a.scores == b.scores

    def test_cache_disabled(self, wheatstone):
        engine = RankingEngine(cache_scores=False)
        engine.rank(wheatstone, "propagation")
        engine.rank(wheatstone, "propagation")
        assert engine.stats.score_hits == 0
        assert engine.stats.score_misses == 2

    def test_invalidate_drops_scores(self, wheatstone):
        engine = RankingEngine()
        engine.rank(wheatstone, "propagation")
        engine.invalidate(wheatstone)
        engine.rank(wheatstone, "propagation")
        assert engine.stats.score_hits == 0
        assert engine.stats.score_misses == 2

    def test_lru_bound(self, wheatstone, two_target_dag):
        engine = RankingEngine(max_cached_scores=1)
        engine.rank(wheatstone, "propagation")
        engine.rank(two_target_dag, "propagation")  # evicts wheatstone
        engine.rank(wheatstone, "propagation")
        assert engine.stats.score_hits == 0
        assert engine.stats.score_misses == 3


class TestRankMany:
    def test_single_method_batch(self, wheatstone, two_target_dag):
        engine = RankingEngine()
        results = engine.rank_many([wheatstone, two_target_dag], "propagation")
        assert len(results) == 2
        assert results[0].scores == rank(wheatstone, "propagation").scores

    def test_multi_method_batch(self, two_target_dag):
        engine = RankingEngine()
        (batch,) = engine.rank_many(
            [two_target_dag],
            methods=("propagation", "rel"),
            method_options={"reliability": {"strategy": "closed"}},
        )
        assert set(batch) == {"propagation", "reliability"}
        # the graph compiled once for both methods
        assert engine.stats.compile_misses == 1

    def test_warm_batch_is_all_hits(self, wheatstone):
        engine = RankingEngine()
        engine.rank_many([wheatstone], methods=("propagation", "diffusion"))
        engine.rank_many([wheatstone.copy()], methods=("propagation", "diffusion"))
        assert engine.stats.score_hits == 2


class TestQueryExecution:
    def test_execute_requires_mediator(self):
        engine = RankingEngine()
        query = ExploratoryQuery("EntrezProtein", "name", "X", outputs=("GOTerm",))
        with pytest.raises(RankingError):
            engine.execute(query)

    def test_warm_execute_serves_cached_graph(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        cold = engine.execute(query)
        warm = engine.execute(query)
        assert warm is cold  # the very same materialised graph
        assert engine.stats.graph_misses == 1
        assert engine.stats.graph_hits == 1
        assert engine.stats.queries_executed == 1

    def test_equal_queries_share_cache_entries(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        protein = case.spec.protein
        a = ExploratoryQuery("EntrezProtein", "name", protein, outputs=("GOTerm",))
        b = ExploratoryQuery("EntrezProtein", "name", protein, outputs=("GOTerm",))
        assert engine.execute(a) is engine.execute(b)
        assert engine.stats.graph_hits == 1

    def test_warm_execute_skips_storage(self, scenario3_small):
        """A cache hit must not touch the sources at all."""
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        engine.execute(query)
        lookups = []
        for source in case.mediator.sources:
            for table in source.database.tables():
                original = table.lookup_many

                def counting(columns, values, _orig=original):
                    lookups.append(columns)
                    return _orig(columns, values)

                table.lookup_many = counting
                table.lookup = counting
        try:
            engine.execute(query)
        finally:
            for source in case.mediator.sources:
                for table in source.database.tables():
                    del table.lookup_many
                    del table.lookup
        assert lookups == []

    def test_source_mutation_repairs_cached_graph(self):
        workload = mediated_layers(layers=3, width=10, rng=3)
        engine = RankingEngine(mediator=workload.mediator)
        cold = engine.execute(workload.query)
        # insert a new link into a bound table: the delta is bounded, so
        # the next execute *repairs* the cached entry by replaying only
        # the dirty BFS region — not a cold re-materialisation
        db = workload.mediator.sources[0].database
        db.insert(
            "links_rel0",
            {"src": "E0:0", "dst": "E1:1", "w": 0.5},
        )
        rebuilt = engine.execute(workload.query)
        assert rebuilt is not cold
        assert engine.stats.graph_misses == 1
        assert engine.stats.graph_repairs == 1
        assert engine.stats.graph_hits == 0
        # the new link (and whatever it made reachable) is picked up,
        # bit-identically to a cold rebuild
        assert rebuilt.graph.num_edges > cold.graph.num_edges
        fresh, _ = workload.query.execute(workload.mediator)
        assert list(rebuilt.graph.nodes()) == list(fresh.graph.nodes())
        assert [
            (e.key, e.source, e.target, rebuilt.graph.q(e.key))
            for e in rebuilt.graph.edges()
        ] == [
            (e.key, e.source, e.target, fresh.graph.q(e.key))
            for e in fresh.graph.edges()
        ]

    def test_source_mutation_invalidates_cold_without_incremental(self):
        workload = mediated_layers(layers=3, width=10, rng=3)
        engine = RankingEngine(mediator=workload.mediator, incremental=False)
        cold = engine.execute(workload.query)
        db = workload.mediator.sources[0].database
        db.insert(
            "links_rel0",
            {"src": "E0:0", "dst": "E1:1", "w": 0.5},
        )
        rebuilt = engine.execute(workload.query)
        assert rebuilt is not cold
        assert engine.stats.graph_misses == 2
        assert engine.stats.graph_repairs == 0
        assert engine.stats.graph_hits == 0
        assert rebuilt.graph.num_edges > cold.graph.num_edges

    def test_unread_table_mutation_keeps_cache_entry_warm(self):
        """Over-invalidation regression: a mutation in a bound table the
        cached build never read must stay a plain cache hit."""
        from repro.integration.sources import DataSource, EntityBinding
        from repro.storage import Column, ColumnType, Database

        workload = mediated_layers(layers=3, width=10, rng=3)
        engine = RankingEngine(mediator=workload.mediator)
        cold = engine.execute(workload.query)
        # register a side source providing an entity set the query never
        # reaches: its table is bound (it bumps the mediator epoch on
        # mutation) but the cached build cannot have probed it
        db = Database("side_db")
        db.create_table(
            "extras",
            [Column("id", ColumnType.TEXT), Column("w", ColumnType.FLOAT)],
            primary_key=["id"],
        )
        db.insert("extras", {"id": "X1", "w": 0.5})
        source = DataSource(
            name="side",
            database=db,
            entities=(EntityBinding("Extra", table="extras", key_column="id"),),
        )
        workload.mediator.register(source)
        # registration is structural: the first probe after it is a miss
        engine.execute(workload.query)
        assert engine.stats.graph_misses == 2
        # ... but once re-recorded, mutating the unread side table must
        # leave the entry warm: hits increment, no misses, no repairs
        db.insert("extras", {"id": "X2", "w": 0.25})
        warm = engine.execute(workload.query)
        assert engine.stats.graph_hits == 1
        assert engine.stats.graph_misses == 2
        assert engine.stats.graph_repairs == 0
        assert list(warm.graph.nodes()) == list(cold.graph.nodes())

    def test_confidence_tuning_invalidates_cached_graph(self):
        workload = mediated_layers(layers=3, width=10, rng=5)
        engine = RankingEngine(mediator=workload.mediator)
        cold = engine.execute(workload.query)
        workload.mediator.confidences.set_entity_confidence("E2", 0.5)
        rebuilt = engine.execute(workload.query)
        assert rebuilt is not cold
        assert engine.stats.graph_misses == 2
        assert engine.stats.graph_hits == 0
        node = next(iter(rebuilt.targets))
        assert rebuilt.graph.p(node) == pytest.approx(0.5 * cold.graph.p(node))

    def test_execute_many_batches(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        graphs = engine.execute_many([query, query, query])
        assert graphs[0] is graphs[1] is graphs[2]
        assert engine.stats.graph_misses == 1
        assert engine.stats.graph_hits == 2

    def test_graph_cache_disabled(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator, cache_graphs=False)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        assert engine.execute(query) is not engine.execute(query)
        assert engine.stats.graph_hits == 0
        assert engine.stats.queries_executed == 2

    def test_graph_cache_lru_bound(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator, max_cached_graphs=1)
        protein = case.spec.protein
        q1 = ExploratoryQuery("EntrezProtein", "name", protein, outputs=("GOTerm",))
        q2 = ExploratoryQuery(
            "EntrezProtein", "name", protein, outputs=("GOTerm", "EntrezGene")
        )
        engine.execute(q1)
        engine.execute(q2)  # evicts q1
        engine.execute(q1)
        assert engine.stats.graph_hits == 0
        assert engine.stats.graph_misses == 3

    def test_invalidate_single_graph_drops_its_cache_entry(self):
        workload = mediated_layers(layers=3, width=10, rng=4)
        engine = RankingEngine(mediator=workload.mediator)
        qg = engine.execute(workload.query)
        engine.rank(qg, "propagation")
        engine.invalidate(qg)  # cache non-empty: targeted invalidation
        engine.execute(workload.query)
        assert engine.stats.graph_hits == 0
        assert engine.stats.graph_misses == 2

    def test_invalidate_clears_graph_cache(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        engine.execute(query)
        engine.invalidate()
        engine.execute(query)
        assert engine.stats.graph_hits == 0
        assert engine.stats.graph_misses == 2

    def test_unknown_builder_rejected_at_construction(self):
        with pytest.raises(RankingError):
            RankingEngine(builder="compiled")  # backend/builder confusion

    def test_mediator_swap_never_serves_foreign_graphs(self):
        """Reassigning engine.mediator must invalidate cached graphs even
        when the two mediators happen to share an epoch value."""
        a = mediated_layers(layers=3, width=10, rng=1)
        b = mediated_layers(layers=3, width=10, rng=2)
        assert a.mediator.epoch == b.mediator.epoch  # same shape, same sums
        engine = RankingEngine(mediator=a.mediator)
        from_a = engine.execute(a.query)
        engine.mediator = b.mediator
        from_b = engine.execute(b.query)  # same signature as a.query
        assert from_b is not from_a
        assert engine.stats.graph_misses == 2

    def test_builder_is_part_of_the_cache_key(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        engine.execute(query, builder="batched")
        engine.execute(query, builder="scalar")
        assert engine.stats.graph_misses == 2

    def test_rank_an_exploratory_query(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        result = engine.rank(query, "reliability", strategy="closed")
        assert engine.stats.queries_executed == 1
        direct = rank(case.query_graph, "reliability", strategy="closed").scores
        assert set(result.scores) == set(direct)
        for node in direct:
            assert result.scores[node] == pytest.approx(direct[node], abs=1e-9)

    def test_unrankable_target_rejected(self):
        engine = RankingEngine()
        with pytest.raises(RankingError):
            engine.rank("not a graph", "propagation")
