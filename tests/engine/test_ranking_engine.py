"""Tests for the batched, cached RankingEngine."""

import pytest

from repro.core.ranker import rank
from repro.engine import RankingEngine
from repro.errors import RankingError
from repro.integration import ExploratoryQuery


class TestRankMatchesDirect:
    def test_deterministic_methods(self, two_target_dag):
        engine = RankingEngine()
        for method in ("propagation", "diffusion", "in_edge", "path_count"):
            direct = rank(two_target_dag, method).scores
            via_engine = engine.rank(two_target_dag, method).scores
            for node in direct:
                assert via_engine[node] == pytest.approx(direct[node], abs=1e-9)

    def test_reference_backend_override(self, two_target_dag):
        engine = RankingEngine(backend="compiled")
        result = engine.rank(two_target_dag, "propagation", backend="reference")
        assert result.scores == rank(two_target_dag, "propagation").scores

    def test_unknown_backend_rejected(self):
        with pytest.raises(RankingError):
            RankingEngine(backend="quantum")


class TestCaching:
    def test_score_cache_hits_on_repeat(self, wheatstone):
        engine = RankingEngine()
        first = engine.rank(wheatstone, "propagation")
        second = engine.rank(wheatstone, "propagation")
        assert engine.stats.score_misses == 1
        assert engine.stats.score_hits == 1
        assert first.scores == second.scores

    def test_cache_shared_across_identical_graphs(self, wheatstone):
        """Structurally identical but distinct objects share cached scores
        via the content fingerprint."""
        engine = RankingEngine()
        engine.rank(wheatstone, "diffusion")
        engine.rank(wheatstone.copy(), "diffusion")
        assert engine.stats.score_hits == 1
        # distinct objects each compile once
        assert engine.stats.compile_misses == 2

    def test_compile_cache_reused_across_methods(self, wheatstone):
        engine = RankingEngine()
        for method in ("propagation", "in_edge", "path_count"):
            engine.rank(wheatstone, method)
        assert engine.stats.compile_misses == 1
        assert engine.stats.compile_hits == 2

    def test_options_distinguish_cache_entries(self, wheatstone):
        engine = RankingEngine()
        a = engine.rank(wheatstone, "propagation", iterations=1)
        b = engine.rank(wheatstone, "propagation", iterations=50)
        assert engine.stats.score_hits == 0
        assert a.scores != b.scores

    def test_unseeded_monte_carlo_not_cached(self, wheatstone):
        engine = RankingEngine()
        engine.rank(wheatstone, "reliability", strategy="mc", trials=50)
        engine.rank(wheatstone, "reliability", strategy="mc", trials=50)
        assert engine.stats.score_hits == 0

    def test_backend_is_part_of_the_cache_key(self, wheatstone):
        """A seeded MC estimate cached for one backend must not be served
        to an explicit request for the other (different RNG streams)."""
        engine = RankingEngine()
        options = dict(strategy="mc", reduce=False, trials=2000, rng=7)
        compiled = engine.rank(
            wheatstone, "reliability", backend="compiled", **options
        )
        reference = engine.rank(
            wheatstone, "reliability", backend="reference", **options
        )
        assert engine.stats.score_hits == 0
        from repro.core.ranker import rank as direct_rank

        direct = direct_rank(wheatstone, "reliability", **options)
        assert reference.scores == direct.scores
        assert compiled.scores != reference.scores  # different streams

    def test_seeded_monte_carlo_cached(self, wheatstone):
        engine = RankingEngine()
        a = engine.rank(wheatstone, "reliability", strategy="mc", trials=50, rng=7)
        b = engine.rank(wheatstone, "reliability", strategy="mc", trials=50, rng=7)
        assert engine.stats.score_hits == 1
        assert a.scores == b.scores

    def test_cache_disabled(self, wheatstone):
        engine = RankingEngine(cache_scores=False)
        engine.rank(wheatstone, "propagation")
        engine.rank(wheatstone, "propagation")
        assert engine.stats.score_hits == 0
        assert engine.stats.score_misses == 2

    def test_invalidate_drops_scores(self, wheatstone):
        engine = RankingEngine()
        engine.rank(wheatstone, "propagation")
        engine.invalidate(wheatstone)
        engine.rank(wheatstone, "propagation")
        assert engine.stats.score_hits == 0
        assert engine.stats.score_misses == 2

    def test_lru_bound(self, wheatstone, two_target_dag):
        engine = RankingEngine(max_cached_scores=1)
        engine.rank(wheatstone, "propagation")
        engine.rank(two_target_dag, "propagation")  # evicts wheatstone
        engine.rank(wheatstone, "propagation")
        assert engine.stats.score_hits == 0
        assert engine.stats.score_misses == 3


class TestRankMany:
    def test_single_method_batch(self, wheatstone, two_target_dag):
        engine = RankingEngine()
        results = engine.rank_many([wheatstone, two_target_dag], "propagation")
        assert len(results) == 2
        assert results[0].scores == rank(wheatstone, "propagation").scores

    def test_multi_method_batch(self, two_target_dag):
        engine = RankingEngine()
        (batch,) = engine.rank_many(
            [two_target_dag],
            methods=("propagation", "rel"),
            method_options={"reliability": {"strategy": "closed"}},
        )
        assert set(batch) == {"propagation", "reliability"}
        # the graph compiled once for both methods
        assert engine.stats.compile_misses == 1

    def test_warm_batch_is_all_hits(self, wheatstone):
        engine = RankingEngine()
        engine.rank_many([wheatstone], methods=("propagation", "diffusion"))
        engine.rank_many([wheatstone.copy()], methods=("propagation", "diffusion"))
        assert engine.stats.score_hits == 2


class TestQueryExecution:
    def test_execute_requires_mediator(self):
        engine = RankingEngine()
        query = ExploratoryQuery("EntrezProtein", "name", "X", outputs=("GOTerm",))
        with pytest.raises(RankingError):
            engine.execute(query)

    def test_rank_an_exploratory_query(self, scenario3_small):
        case = scenario3_small[0].case
        engine = RankingEngine(mediator=case.mediator)
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        result = engine.rank(query, "reliability", strategy="closed")
        assert engine.stats.queries_executed == 1
        direct = rank(case.query_graph, "reliability", strategy="closed").scores
        assert set(result.scores) == set(direct)
        for node in direct:
            assert result.scores[node] == pytest.approx(direct[node], abs=1e-9)

    def test_unrankable_target_rejected(self):
        engine = RankingEngine()
        with pytest.raises(RankingError):
            engine.rank("not a graph", "propagation")
