"""Engine cache race audit: execute / invalidate / stats under threads.

A deliberately hostile interleaving — executor threads hammering a
small spec pool while an invalidator drops caches mid-flight and a
reader snapshots counters — with tiny cache caps so LRU eviction runs
constantly. The assertions are the invariants the engine lock is
supposed to guarantee:

* cache sizes never exceed their caps, and no in-flight entry leaks;
* counters only grow (snapshots are monotonic, reader-side);
* exactly one of ``graph_misses`` / ``graph_hits`` /
  ``graph_repairs`` / ``coalesced_queries`` is bumped per execute, so
  their sum equals the number of execute calls made.

CI runs this as a tier-2 job; it is quick enough for the default
suite too.
"""

from __future__ import annotations

import dataclasses
import threading

from repro.engine import RankingEngine
from repro.engine.ranking import EngineStats
from repro.integration import ExploratoryQuery
from repro.workloads import mediated_layers

_THREADS = 8
_ITERATIONS = 60
_METHODS = ("in_edge", "path_count", "propagation")


def _counters(stats: EngineStats) -> dict:
    return {f.name: getattr(stats, f.name) for f in dataclasses.fields(EngineStats)}


def test_execute_invalidate_stats_race():
    workload = mediated_layers(layers=3, width=24, fan_out=3, rng=9)
    engine = RankingEngine(
        mediator=workload.mediator,
        max_cached_graphs=4,
        max_cached_scores=8,
    )
    queries = [
        ExploratoryQuery("E0", "id", f"E0:{i}", outputs=("E1", "E2"))
        for i in range(6)
    ]

    stop = threading.Event()
    barrier = threading.Barrier(_THREADS + 2)
    errors = []
    executes = [0] * _THREADS

    def executor(index):
        try:
            barrier.wait()
            for i in range(_ITERATIONS):
                query = queries[(index + i) % len(queries)]
                qg = engine.execute(query)
                executes[index] += 1
                engine.rank(qg, _METHODS[i % len(_METHODS)])
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    def invalidator():
        try:
            barrier.wait()
            toggle = 0
            while not stop.is_set():
                engine.invalidate()
                toggle += 1
                stop.wait(0.001 * (toggle % 3 + 1))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    snapshots = []

    def reader():
        try:
            barrier.wait()
            while not stop.is_set():
                snapshots.append(engine.stats_snapshot())
                stop.wait(0.0005)
            snapshots.append(engine.stats_snapshot())
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=executor, args=(i,), daemon=True)
        for i in range(_THREADS)
    ]
    threads.append(threading.Thread(target=invalidator, daemon=True))
    threads.append(threading.Thread(target=reader, daemon=True))
    for thread in threads:
        thread.start()
    for thread in threads[:_THREADS]:
        thread.join(60)
        assert not thread.is_alive(), "executor thread hung"
    stop.set()
    for thread in threads[_THREADS:]:
        thread.join(10)
        assert not thread.is_alive()

    assert errors == []

    # cache invariants: caps respected, nothing left in flight
    assert len(engine._graphs) <= engine.max_cached_graphs
    assert len(engine._scores) <= engine.max_cached_scores
    assert engine._inflight == {}

    # counters only ever grow — any torn/lost update under the lock
    # would show up as a dip between consecutive snapshots
    for before, after in zip(snapshots, snapshots[1:]):
        first, second = _counters(before), _counters(after)
        for name, value in first.items():
            assert second[name] >= value, f"{name} decreased between snapshots"

    # exact accounting: every execute bumped exactly one graph counter
    stats = engine.stats_snapshot()
    served = (
        stats.graph_misses
        + stats.graph_hits
        + stats.graph_repairs
        + stats.coalesced_queries
    )
    assert served == sum(executes) == _THREADS * _ITERATIONS
    # no source mutated during the run, so nothing was repairable
    assert stats.graph_repairs == 0
    # scoring stayed consistent too: every rank call was a hit or miss
    assert stats.score_hits + stats.score_misses == sum(executes)
