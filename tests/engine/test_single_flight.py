"""Single-flight coalescing of identical in-flight traversals.

The thundering-herd regression: N concurrent identical cold queries
must perform exactly one traversal — one ``graph_misses`` bump — with
every other request either coalesced onto the in-flight build or
served from the cache it populated. A gated query stub makes the
overlap deterministic: the leader's traversal blocks until the test
has observed every follower waiting on it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import RankingEngine
from repro.errors import QueryError
from repro.workloads import mediated_layers, run_threaded_clients


class _GatedQuery:
    """Wraps a real ExploratoryQuery; ``execute`` signals ``started``,
    then blocks until ``release`` — so the test controls exactly how
    long the traversal stays in flight."""

    def __init__(self, inner, fail=None):
        self.inner = inner
        self.started = threading.Event()
        self.release = threading.Event()
        self.fail = fail
        self.calls = 0
        self._lock = threading.Lock()

    @property
    def signature(self):
        return self.inner.signature

    def execute(self, mediator, builder="batched"):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(10), "test never released the traversal"
        if self.fail is not None:
            raise self.fail
        return self.inner.execute(mediator, builder=builder)


def _await_counter(read, target, timeout=10.0):
    deadline = time.monotonic() + timeout
    while read() < target:
        assert time.monotonic() < deadline, "counter never reached target"
        time.sleep(0.001)


def _herd(engine, query, n):
    """Start a leader, wait for its traversal to be in flight, then
    release n-1 followers and hold the build until all have coalesced."""
    results = [None] * n
    errors = [None] * n

    def worker(index):
        try:
            results[index] = engine.execute(query)
        except BaseException as exc:  # noqa: BLE001 - recorded for assertions
            errors[index] = exc

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True) for i in range(n)
    ]
    threads[0].start()
    assert query.started.wait(10)
    for thread in threads[1:]:
        thread.start()
    # followers bump coalesced_queries *before* waiting on the flight,
    # so this poll guarantees all n-1 joined the in-flight build
    _await_counter(lambda: engine.stats.coalesced_queries, n - 1)
    query.release.set()
    for thread in threads:
        thread.join(10)
        assert not thread.is_alive()
    return results, errors


class TestEngineSingleFlight:
    def test_identical_cold_queries_share_one_traversal(self):
        workload = mediated_layers(layers=3, width=12, fan_out=3, rng=5)
        engine = RankingEngine(mediator=workload.mediator, incremental=False)
        query = _GatedQuery(workload.query)
        n = 8

        results, errors = _herd(engine, query, n)

        assert all(error is None for error in errors)
        assert query.calls == 1
        assert engine.stats.graph_misses == 1
        assert engine.stats.coalesced_queries == n - 1
        # every waiter got the leader's graph, not a copy
        assert all(qg is results[0] for qg in results)
        assert engine._inflight == {}

    def test_failed_traversal_propagates_to_every_waiter(self):
        workload = mediated_layers(layers=3, width=12, fan_out=3, rng=5)
        engine = RankingEngine(mediator=workload.mediator, incremental=False)
        boom = QueryError("traversal exploded")
        query = _GatedQuery(workload.query, fail=boom)
        n = 6

        results, errors = _herd(engine, query, n)

        assert all(result is None for result in results)
        assert all(error is boom for error in errors)
        # the failed flight is gone: nothing cached, nothing pending
        assert engine._inflight == {}
        assert engine.stats.graph_misses == 1

        # the next identical request retries cold instead of awaiting a
        # dead flight or inheriting the stale error
        query.fail = None
        qg = engine.execute(query)
        assert qg is not None
        assert query.calls == 2
        assert engine.stats.graph_misses == 2


class TestSessionThunderingHerd:
    def test_concurrent_identical_cold_specs_traverse_once(self, monkeypatch):
        """The satellite regression at the session surface: N threads,
        one identical cold spec each, exactly one traversal."""
        from repro.integration.query import ExploratoryQuery

        workload = mediated_layers(layers=3, width=16, fan_out=3, rng=11)
        calls = []
        calls_lock = threading.Lock()
        real = ExploratoryQuery.execute_with

        def counted(self, mediator, builder, **kwargs):
            with calls_lock:
                calls.append(self.signature)
            # widen the in-flight window so the herd genuinely overlaps
            time.sleep(0.05)
            return real(self, mediator, builder, **kwargs)

        # both cold paths (plain and probe-recording) funnel through
        # execute_with, so this counts traversals exactly
        monkeypatch.setattr(ExploratoryQuery, "execute_with", counted)

        n = 12
        with workload.open_session() as session:
            spec = workload.spec(method="in_edge")
            report = run_threaded_clients(session, [[spec]] * n)

        assert report.errors == 0
        assert report.requests == n
        assert len(calls) == 1
        delta = report.stats_delta
        assert delta.graph_misses == 1
        # every request accounted for: one miss, the rest coalesced
        # waits or cache hits depending on arrival timing
        assert (
            delta.graph_misses + delta.graph_hits + delta.coalesced_queries == n
        )
        scores = [dict(result.scores) for result in report.results]
        assert all(s == scores[0] for s in scores)
