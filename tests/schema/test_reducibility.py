"""Tests for the Theorem 3.2 reducibility checker."""

import pytest

from repro.schema.cardinality import Cardinality as C
from repro.schema.composition import CompositionOracle
from repro.schema.er import ERSchema
from repro.schema.reducibility import (
    check_reducibility,
    check_reducibility_per_target,
)


def chain(*cardinalities: str) -> ERSchema:
    schema = ERSchema("chain")
    for i in range(len(cardinalities) + 1):
        schema.entity(f"P{i}")
    for i, cardinality in enumerate(cardinalities):
        schema.relate(f"Q{i}", f"P{i}", f"P{i + 1}", cardinality)
    return schema


class TestBaseCases:
    def test_single_relationship_any_cardinality(self):
        assert check_reducibility(chain("n:m")).reducible

    def test_pure_one_to_many_tree(self):
        schema = ERSchema("tree")
        for name in ("r", "a", "b", "c"):
            schema.entity(name)
        schema.relate("ra", "r", "a", "1:n")
        schema.relate("rb", "r", "b", "1:n")
        schema.relate("ac", "a", "c", "1:n")
        assert check_reducibility(schema).reducible

    def test_tree_with_arbitrary_leaf_relationships(self):
        # interior [1:n], terminal [n:m] into a leaf: still reducible
        assert check_reducibility(chain("1:n", "n:m")).reducible

    def test_star_from_one_root(self):
        schema = ERSchema("star")
        for name in ("hub", "x", "y"):
            schema.entity(name)
        schema.relate("hx", "hub", "x", "n:m")
        schema.relate("hy", "hub", "y", "n:1")
        assert check_reducibility(schema).reducible


class TestIrreducible:
    def test_fig2a_interior_many_to_many(self):
        assert not check_reducibility(chain("1:n", "n:m", "n:1")).reducible

    def test_fig2b_unknown_inner_composition(self):
        assert not check_reducibility(chain("1:n", "1:n", "n:1", "n:1")).reducible

    def test_interior_many_to_one_blocks(self):
        # [n:1] into an interior entity allows instance in-degree > 1
        assert not check_reducibility(chain("n:1", "1:n", "n:1")).reducible


class TestContraction:
    def test_simple_chain_contracts(self):
        report = check_reducibility(chain("1:n", "n:1"))
        assert report.reducible

    def test_fig2d_with_domain_knowledge(self):
        oracle = CompositionOracle()
        oracle.declare("Q1", "Q2", C.ONE_TO_MANY)
        oracle.declare("Q1∘Q2", "Q3", C.MANY_TO_ONE)
        report = check_reducibility(chain("1:n", "1:n", "n:1", "n:1"), oracle)
        assert report.reducible
        assert len(report.steps) >= 1

    def test_one_to_one_counts_as_injective_and_functional(self):
        # [1:1] in and [1:1] out must allow the contraction
        report = check_reducibility(chain("1:n", "1:1", "n:1"))
        assert report.reducible

    def test_negative_report_has_reason(self):
        report = check_reducibility(chain("1:n", "n:m", "n:1"))
        assert not report.reducible
        assert "Wheatstone" in report.reason

    def test_report_is_truthy(self):
        assert bool(check_reducibility(chain("1:n", "n:1")))
        assert not bool(check_reducibility(chain("1:n", "n:m", "n:1")))


class TestPerTargetView:
    def test_terminal_many_to_many_becomes_functional(self):
        # [1:n][1:n][n:m]: as a whole the leaf [n:m] is fine (leaf rule),
        # but deeper: [1:n][n:1][n:m] needs the per-target view plus the
        # composition of the first two
        schema = chain("1:n", "n:1", "n:m")
        oracle = CompositionOracle()
        oracle.declare("Q0", "Q1", C.ONE_TO_MANY)
        blind = check_reducibility(schema, oracle)
        viewed = check_reducibility_per_target(schema, "P3", oracle)
        assert viewed.reducible
        # the un-viewed schema is also reducible here via the leaf rule
        assert blind.reducible

    def test_per_target_only_retypes_edges_into_target(self):
        schema = chain("1:n", "n:m", "n:1")
        report = check_reducibility_per_target(schema, "P3")
        # the interior [n:m] is untouched, so this stays irreducible
        assert not report.reducible

    def test_unknown_target_entity_raises(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            check_reducibility_per_target(chain("1:n"), "nope")
