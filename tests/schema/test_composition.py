"""Tests for the cardinality composition algebra and the oracle."""

import pytest

from repro.errors import SchemaError
from repro.schema.cardinality import Cardinality as C
from repro.schema.composition import CompositionOracle, compose_cardinalities


class TestAlgebra:
    def test_one_to_many_chains(self):
        assert compose_cardinalities(C.ONE_TO_MANY, C.ONE_TO_MANY) == {C.ONE_TO_MANY}

    def test_many_to_one_chains(self):
        assert compose_cardinalities(C.MANY_TO_ONE, C.MANY_TO_ONE) == {C.MANY_TO_ONE}

    def test_fan_out_then_in_is_ambiguous(self):
        possible = compose_cardinalities(C.ONE_TO_MANY, C.MANY_TO_ONE)
        assert possible == {C.ONE_TO_MANY, C.MANY_TO_ONE, C.MANY_TO_MANY}

    def test_fan_in_then_out_is_many_to_many(self):
        assert compose_cardinalities(C.MANY_TO_ONE, C.ONE_TO_MANY) == {C.MANY_TO_MANY}

    @pytest.mark.parametrize("other", list(C))
    def test_many_to_many_is_absorbing(self, other):
        assert compose_cardinalities(C.MANY_TO_MANY, other) == {C.MANY_TO_MANY}

    def test_one_to_one_folds_into_many_to_one(self):
        # [1:1] composed with [n:1] behaves as [n:1] ∘ [n:1]
        assert compose_cardinalities(C.ONE_TO_ONE, C.MANY_TO_ONE) == {C.MANY_TO_ONE}


class TestOracle:
    def test_unambiguous_resolves_without_oracle(self):
        oracle = CompositionOracle()
        result = oracle.resolve("a", "b", C.ONE_TO_MANY, C.ONE_TO_MANY)
        assert result is C.ONE_TO_MANY

    def test_ambiguous_without_declaration_is_none(self):
        oracle = CompositionOracle()
        assert oracle.resolve("a", "b", C.ONE_TO_MANY, C.MANY_TO_ONE) is None

    def test_declaration_resolves_ambiguity(self):
        oracle = CompositionOracle()
        oracle.declare("a", "b", C.MANY_TO_ONE)
        result = oracle.resolve("a", "b", C.ONE_TO_MANY, C.MANY_TO_ONE)
        assert result is C.MANY_TO_ONE

    def test_declaration_contradicting_algebra_raises(self):
        oracle = CompositionOracle()
        oracle.declare("a", "b", C.ONE_TO_MANY)
        with pytest.raises(SchemaError):
            # algebra says [n:1] ∘ [1:n] can only be [m:n]
            oracle.resolve("a", "b", C.MANY_TO_ONE, C.ONE_TO_MANY)

    def test_declarations_are_order_sensitive(self):
        oracle = CompositionOracle()
        oracle.declare("a", "b", C.MANY_TO_ONE)
        assert oracle.resolve("b", "a", C.ONE_TO_MANY, C.MANY_TO_ONE) is None
