"""Tests for entity sets, relationships and the E/R schema."""

import pytest

from repro.errors import SchemaError
from repro.schema.er import EntitySet, ERSchema


@pytest.fixture
def schema() -> ERSchema:
    s = ERSchema("s")
    s.entity("A")
    s.entity("B")
    s.entity("C")
    s.relate("ab", "A", "B", "1:n")
    s.relate("bc", "B", "C", "n:1")
    return s


class TestConstruction:
    def test_duplicate_entity_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.entity("A")

    def test_duplicate_relationship_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.relate("ab", "A", "C", "1:n")

    def test_relationship_needs_known_endpoints(self, schema):
        with pytest.raises(SchemaError):
            schema.relate("ax", "A", "X", "1:n")

    def test_empty_entity_name_rejected(self):
        with pytest.raises(SchemaError):
            EntitySet("")


class TestInspection:
    def test_incoming_outgoing(self, schema):
        assert [r.name for r in schema.incoming("B")] == ["ab"]
        assert [r.name for r in schema.outgoing("B")] == ["bc"]

    def test_roots(self, schema):
        assert [e.name for e in schema.roots()] == ["A"]

    def test_get_unknown_entity_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.get_entity("X")

    def test_get_unknown_relationship_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.get_relationship("xy")


class TestIsTree:
    def test_chain_is_tree(self, schema):
        assert schema.is_tree()

    def test_two_roots_is_not_tree(self, schema):
        schema.entity("D")  # isolated second root
        assert not schema.is_tree()

    def test_multi_incoming_is_not_tree(self, schema):
        schema.relate("ac", "A", "C", "1:n")
        assert not schema.is_tree()

    def test_parallel_relationships_not_tree(self, schema):
        schema.relate("ab2", "A", "B", "n:1")
        assert not schema.is_tree()


class TestCopy:
    def test_copy_is_independent(self, schema):
        clone = schema.copy()
        clone.entity("Z")
        assert len(schema.entities) == 3
        assert len(clone.entities) == 4
