"""Tests for cardinality classes."""

import pytest

from repro.errors import SchemaError
from repro.schema.cardinality import Cardinality


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1:1", Cardinality.ONE_TO_ONE),
            ("1:n", Cardinality.ONE_TO_MANY),
            ("n:1", Cardinality.MANY_TO_ONE),
            ("n:m", Cardinality.MANY_TO_MANY),
            ("m:n", Cardinality.MANY_TO_MANY),
            (" 1:N ", Cardinality.ONE_TO_MANY),
        ],
    )
    def test_parse(self, text, expected):
        assert Cardinality.parse(text) is expected

    def test_parse_rejects_unknown(self):
        with pytest.raises(SchemaError):
            Cardinality.parse("2:3")


class TestProperties:
    def test_inverse_swaps_direction(self):
        assert Cardinality.ONE_TO_MANY.inverse is Cardinality.MANY_TO_ONE
        assert Cardinality.MANY_TO_ONE.inverse is Cardinality.ONE_TO_MANY

    def test_inverse_fixed_points(self):
        assert Cardinality.ONE_TO_ONE.inverse is Cardinality.ONE_TO_ONE
        assert Cardinality.MANY_TO_MANY.inverse is Cardinality.MANY_TO_MANY

    def test_functional(self):
        assert Cardinality.MANY_TO_ONE.functional
        assert Cardinality.ONE_TO_ONE.functional
        assert not Cardinality.ONE_TO_MANY.functional
        assert not Cardinality.MANY_TO_MANY.functional

    def test_injective(self):
        assert Cardinality.ONE_TO_MANY.injective
        assert Cardinality.ONE_TO_ONE.injective
        assert not Cardinality.MANY_TO_ONE.injective
        assert not Cardinality.MANY_TO_MANY.injective

    def test_folding_collapses_one_to_one(self):
        assert Cardinality.ONE_TO_ONE.folded() is Cardinality.MANY_TO_ONE
        assert Cardinality.ONE_TO_MANY.folded() is Cardinality.ONE_TO_MANY

    def test_str_is_notation(self):
        assert str(Cardinality.MANY_TO_MANY) == "n:m"
