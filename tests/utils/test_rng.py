"""Tests for the RNG plumbing."""

import random

import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(ensure_rng(None), random.Random)

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_different_seeds_differ(self):
        assert ensure_rng(1).random() != ensure_rng(2).random()

    def test_passthrough_of_existing_generator(self):
        rng = random.Random(7)
        assert ensure_rng(rng) is rng

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRng:
    def test_distinct_streams_are_decorrelated(self):
        a = spawn_rng(1, "alpha")
        b = spawn_rng(1, "beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_same_stream_same_parent_state_reproduces(self):
        first = spawn_rng(9, "stream")
        second = spawn_rng(9, "stream")
        assert first.random() == second.random()

    def test_spawn_advances_parent(self):
        parent = random.Random(3)
        before = parent.getstate()
        spawn_rng(parent, "x")
        assert parent.getstate() != before
