"""Tests for argument validation helpers."""


import pytest

from repro.errors import ValidationError
from repro.utils.validation import check_fraction, check_positive, check_probability


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0, 1, 0.5, 0.0001, 0.9999])
    def test_accepts_valid(self, value):
        assert check_probability(value) == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2, -1, float("nan")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_probability(value)

    def test_rejects_non_numbers(self):
        with pytest.raises(ValidationError):
            check_probability("half")

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="my_prob"):
            check_probability(2.0, name="my_prob")

    def test_int_coerced_to_float(self):
        assert isinstance(check_probability(1), float)


class TestCheckFraction:
    def test_accepts_interior(self):
        assert check_fraction(0.5) == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_rejects_boundaries(self, value):
        with pytest.raises(ValidationError):
            check_fraction(value)


class TestCheckPositive:
    @pytest.mark.parametrize("value", [1, 0.001, 1e9])
    def test_accepts_positive(self, value):
        assert check_positive(value) == float(value)

    @pytest.mark.parametrize("value", [0, -1, float("inf"), float("nan")])
    def test_rejects_non_positive_and_non_finite(self, value):
        with pytest.raises(ValidationError):
            check_positive(value)
