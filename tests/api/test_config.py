"""RankingOptions / EngineConfig: validation, kwarg mapping, round trips."""

import pytest

from repro.api import EngineConfig, RankingOptions
from repro.errors import RankingError


class TestRankingOptionsValidation:
    def test_defaults_are_all_none(self):
        assert RankingOptions().as_dict() == {}

    def test_bad_strategy(self):
        with pytest.raises(RankingError, match="unknown reliability strategy"):
            RankingOptions(strategy="guess")

    @pytest.mark.parametrize("field", ["trials", "iterations", "max_iterations"])
    def test_positive_int_fields(self, field):
        with pytest.raises(RankingError, match=field):
            RankingOptions(**{field: 0})
        with pytest.raises(RankingError, match=field):
            RankingOptions(**{field: 2.5})

    def test_bad_tolerance(self):
        with pytest.raises(RankingError, match="tolerance"):
            RankingOptions(tolerance=0.0)

    def test_bad_reduce(self):
        with pytest.raises(RankingError, match="reduce"):
            RankingOptions(reduce="yes")


class TestToKwargs:
    def test_reliability_fields_only(self):
        options = RankingOptions(
            strategy="mc", trials=500, reduce=False, iterations=9
        )
        assert options.to_kwargs("reliability") == {
            "strategy": "mc",
            "trials": 500,
            "reduce": False,
        }

    def test_sweep_fields_only(self):
        options = RankingOptions(strategy="mc", iterations=9, tolerance=1e-6)
        assert options.to_kwargs("propagation") == {
            "iterations": 9,
            "tolerance": 1e-6,
        }

    def test_deterministic_methods_get_nothing(self):
        options = RankingOptions(strategy="mc", trials=10, iterations=2)
        assert options.to_kwargs("in_edge") == {}
        assert options.to_kwargs("path_count") == {}

    def test_seed_threads_into_stochastic_reliability(self):
        assert RankingOptions(strategy="mc").to_kwargs("reliability", seed=7)[
            "rng"
        ] == 7
        # "auto" (the default) samples too
        assert RankingOptions().to_kwargs("reliability", seed=7)["rng"] == 7

    def test_seed_ignored_for_deterministic_strategies(self):
        assert "rng" not in RankingOptions(strategy="closed").to_kwargs(
            "reliability", seed=7
        )
        assert "rng" not in RankingOptions(strategy="exact").to_kwargs(
            "reliability", seed=7
        )
        assert "rng" not in RankingOptions().to_kwargs("propagation", seed=7)

    def test_is_stochastic(self):
        assert RankingOptions().is_stochastic
        assert RankingOptions(strategy="naive-mc").is_stochastic
        assert not RankingOptions(strategy="closed").is_stochastic


class TestOptionsRoundTrip:
    def test_round_trip(self):
        options = RankingOptions(strategy="mc", trials=123, reduce=True)
        assert RankingOptions.from_dict(options.as_dict()) == options

    def test_unknown_field(self):
        with pytest.raises(RankingError, match="unknown RankingOptions field"):
            RankingOptions.from_dict({"rngs": 1})


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "compiled"
        assert config.builder == "batched"
        assert config.cache_graphs and config.cache_scores

    def test_bad_backend(self):
        with pytest.raises(RankingError, match="unknown backend"):
            EngineConfig(backend="gpu")

    def test_bad_builder(self):
        with pytest.raises(RankingError, match="unknown builder"):
            EngineConfig(builder="columnar")

    def test_bad_cache_sizes(self):
        with pytest.raises(RankingError, match="max_cached_scores"):
            EngineConfig(max_cached_scores=0)

    def test_bad_workers(self):
        with pytest.raises(RankingError, match="max_workers"):
            EngineConfig(max_workers=-1)

    def test_make_engine_applies_settings(self):
        config = EngineConfig(
            backend="reference",
            builder="scalar",
            cache_scores=False,
            max_cached_graphs=7,
        )
        engine = config.make_engine()
        assert engine.backend == "reference"
        assert engine.builder == "scalar"
        assert engine.cache_scores is False
        assert engine.max_cached_graphs == 7

    def test_round_trip(self):
        config = EngineConfig(backend="reference", max_workers=2)
        assert EngineConfig.from_dict(config.as_dict()) == config

    def test_shards_default_to_single_engine(self):
        config = EngineConfig()
        assert config.shards == 1
        assert config.partitioner == "hash"

    @pytest.mark.parametrize("shards", [0, -2, 1.5, "two"])
    def test_bad_shards(self, shards):
        with pytest.raises(RankingError, match="shards"):
            EngineConfig(shards=shards)

    def test_bad_partitioner(self):
        with pytest.raises(RankingError, match="unknown partitioner"):
            EngineConfig(partitioner="modulo")

    def test_sharded_round_trip(self):
        config = EngineConfig(shards=4, partitioner="range")
        assert config.as_dict()["shards"] == 4
        assert EngineConfig.from_dict(config.as_dict()) == config
