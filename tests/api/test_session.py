"""Session facade: execution, batching, caching, explain, lifecycle."""

import pytest

from repro.api import (
    EngineConfig,
    Query,
    QuerySpec,
    RankingOptions,
    ResultSet,
    open_session,
)
from repro.engine import EngineStats
from repro.errors import QueryError, RankingError
from repro.workloads.mediated import mediated_layers


@pytest.fixture()
def workload():
    return mediated_layers(layers=3, width=25, fan_out=2, seeds=2, rng=3)


@pytest.fixture()
def session(workload):
    return workload.open_session()


class TestOpenSession:
    def test_mediator_and_sources_conflict(self, workload):
        with pytest.raises(QueryError, match="not both"):
            open_session(sources=[object()], mediator=workload.mediator)

    def test_empty_session_ranks_prebuilt_graphs(self, workload):
        qg = workload.query.execute(workload.mediator)[0]
        results = open_session().rank(qg, "in_edge")
        assert isinstance(results, ResultSet)
        assert len(results) == len(qg.targets)

    def test_fresh_session_starts_empty(self):
        assert open_session().mediator.sources == []


class TestExecute:
    def test_accepts_spec_builder_and_dict(self, workload, session):
        spec = workload.spec(method="path_count")
        by_spec = session.execute(spec)
        by_builder = session.execute(
            Query.on(spec.entity_set)
            .where(spec.attribute, spec.value)
            .outputs(*spec.outputs)
            .rank_by("path_count")
        )
        by_dict = session.execute(spec.to_dict())
        assert by_spec.scores == by_builder.scores == by_dict.scores

    def test_rejects_other_types(self, session):
        with pytest.raises(QueryError, match="cannot execute"):
            session.execute(42)

    def test_unknown_entity_set_fails(self, session):
        with pytest.raises(QueryError, match="no source provides"):
            session.execute(Query.on("Nope").where(a=1).outputs("E1"))

    def test_workload_spec_outputs_forms(self, workload):
        assert workload.spec(outputs="E1").outputs == ("E1",)
        assert workload.spec().outputs == (workload.entity_sets[-1],)
        with pytest.raises(QueryError, match="at least one output"):
            workload.spec(outputs=[])

    def test_result_carries_spec(self, workload, session):
        spec = workload.spec(method="in_edge", top_k=2)
        results = session.execute(spec)
        assert results.spec == spec
        assert results.method == "in_edge"
        assert len(results.top()) == 2

    def test_repeated_execute_hits_caches(self, workload, session):
        spec = workload.spec(method="in_edge")
        first = session.execute(spec)
        stats = session.stats()
        assert (stats.graph_hits, stats.score_hits) == (0, 0)
        second = session.execute(spec)
        stats = session.stats()
        assert stats.graph_hits == 1
        assert stats.score_hits == 1
        assert first.scores == second.scores
        # the cached path reuses the very same materialised graph
        assert first.graph is second.graph


class TestSeedReproducibility:
    """QuerySpec.seed makes Monte Carlo reliability deterministic
    end to end — and therefore engine-cacheable."""

    def test_same_seed_same_scores_across_sessions(self, workload):
        spec = workload.spec(
            method="reliability",
            options=RankingOptions(strategy="mc", trials=200),
            seed=11,
        )
        scores_a = workload.open_session().execute(spec).scores
        scores_b = workload.open_session().execute(spec).scores
        assert scores_a == scores_b

    def test_different_seeds_differ(self, workload, session):
        spec = workload.spec(
            method="reliability",
            options=RankingOptions(strategy="mc", trials=50),
            seed=1,
        )
        other = spec.replace(seed=2)
        assert session.execute(spec).scores != session.execute(other).scores

    def test_seeded_mc_is_score_cacheable(self, workload, session):
        spec = workload.spec(
            method="reliability",
            options=RankingOptions(strategy="mc", trials=50),
            seed=5,
        )
        session.execute(spec)
        session.execute(spec)
        assert session.stats().score_hits == 1

    def test_unseeded_mc_is_not_cached(self, workload, session):
        spec = workload.spec(
            method="reliability",
            options=RankingOptions(strategy="mc", trials=50),
        )
        session.execute(spec)
        session.execute(spec)
        stats = session.stats()
        assert stats.score_hits == 0
        assert stats.graph_hits == 1  # the graph, however, is shared


class TestExecuteMany:
    def test_matches_sequential_execute(self, workload):
        specs = workload.serving_batch(methods=("in_edge", "path_count"))
        sequential = [
            workload.open_session().execute(spec).scores for spec in specs
        ]
        batched = workload.open_session().execute_many(specs)
        assert [r.scores for r in batched] == sequential

    def test_results_in_spec_order(self, workload, session):
        specs = [
            workload.spec(outputs=("E2",), method="path_count"),
            workload.spec(outputs=("E1",), method="in_edge"),
        ]
        results = session.execute_many(specs)
        assert results[0].spec == specs[0]
        assert results[1].spec == specs[1]

    def test_duplicates_answered_once(self, workload, session):
        spec = workload.spec(method="in_edge")
        results = session.execute_many([spec, spec, spec])
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert session.stats().queries_executed == 1

    def test_shared_traversal_materialises_once(self, workload, session):
        # three different output sets over one traversal: one build
        specs = [
            workload.spec(outputs=(layer,), method="in_edge")
            for layer in workload.entity_sets
        ]
        session.execute_many(specs)
        assert session.stats().queries_executed == 1

    def test_thread_pool_matches_sequential(self, workload):
        # per-record point queries: five distinct traversal groups, so
        # the thread pool genuinely engages
        specs = [
            QuerySpec("E0", "id", f"E0:{i}", outputs=outputs, method=method)
            for i in range(5)
            for outputs, method in (
                (("E1", "E2"), "path_count"),
                (("E2",), "in_edge"),
            )
        ]
        expected = [
            workload.open_session().execute(spec).scores for spec in specs
        ]
        threaded = workload.open_session(
            EngineConfig(max_workers=4)
        ).execute_many(specs)
        assert [r.scores for r in threaded] == expected

    def test_errors_raise_by_default(self, workload, session):
        good = workload.spec(method="in_edge")
        bad = good.replace(attribute="missing_column")
        with pytest.raises(QueryError, match="missing_column"):
            session.execute_many([good, bad])

    def test_return_errors_keeps_slots(self, workload, session):
        good = workload.spec(method="in_edge")
        bad = good.replace(attribute="missing_column")
        unreachable = good.replace(outputs=("E9",))  # no such entity set
        results = session.execute_many(
            [good, bad, unreachable], return_errors=True
        )
        assert isinstance(results[0], ResultSet)
        assert isinstance(results[1], QueryError)
        assert isinstance(results[2], QueryError)

    def test_union_failure_reports_per_spec_errors(self, workload, session):
        """When no spec in a traversal group has answers, each spec's
        error names only its own output sets (parity with execute())."""
        a = workload.spec(outputs=("E8",))
        b = workload.spec(outputs=("E9",))
        results = session.execute_many([a, b], return_errors=True)
        assert "E8" in str(results[0]) and "E9" not in str(results[0])
        assert "E9" in str(results[1]) and "E8" not in str(results[1])

    def test_derived_views_match_direct_execution(self, workload):
        """A spec served from a shared (union) traversal must score
        exactly like the same spec executed directly."""
        batched_session = workload.open_session()
        specs = [
            workload.spec(outputs=("E1",), method="path_count"),
            workload.spec(outputs=("E2",), method="path_count"),
            workload.spec(outputs=("E1", "E2"), method="path_count"),
        ]
        batched = batched_session.execute_many(specs)
        for spec, result in zip(specs, batched):
            direct = workload.open_session().execute(spec)
            assert direct.scores == result.scores


class TestExplainAndStats:
    def test_explain_cold_then_warm(self, workload, session):
        spec = workload.spec(method="in_edge")
        cold = session.explain(spec)
        assert not cold.graph_cached
        assert cold.nodes > 0 and cold.edges > 0 and cold.answers > 0
        assert cold.builder == "batched"
        assert cold.backend == "compiled"
        assert cold.fingerprint
        warm = session.explain(spec)
        assert warm.graph_cached
        assert warm.score_cached
        assert warm.fingerprint == cold.fingerprint
        assert "query cache" in str(warm)
        assert warm.as_dict()["engine_stats"]["graph_hits"] >= 1

    def test_stats_surface(self, workload, session):
        spec = workload.spec(method="in_edge")
        session.execute(spec)
        session.execute(spec)
        stats = session.stats()
        assert isinstance(stats, EngineStats)
        assert stats.graph_hit_rate == 0.5
        assert stats.score_hit_rate == 0.5
        data = stats.as_dict()
        assert data["graph_hits"] == 1
        assert data["score_hit_rate"] == 0.5
        assert "graph 1/2 (50%)" in str(stats)
        session.reset_stats()
        assert session.stats().queries_executed == 0

    def test_empty_stats_rates_are_zero(self):
        stats = EngineStats()
        assert stats.graph_hit_rate == 0.0
        assert stats.compile_hit_rate == 0.0
        assert stats.score_hit_rate == 0.0


class TestLifecycle:
    def test_context_manager_closes(self, workload):
        with workload.open_session() as session:
            session.execute(workload.spec(method="in_edge"))
        assert session.closed
        with pytest.raises(RankingError, match="closed"):
            session.execute(workload.spec(method="in_edge"))
        with pytest.raises(RankingError, match="closed"):
            session.execute_many([])
        with pytest.raises(RankingError, match="closed"):
            session.register()

    def test_repr(self, session):
        assert "open" in repr(session)
        session.close()
        assert "closed" in repr(session)

    def test_session_exposes_plumbing(self, workload, session):
        assert session.mediator is workload.mediator
        assert session.engine.mediator is workload.mediator
        assert session.config == EngineConfig()


class TestLegacySpellings:
    def test_rank_accepts_plain_mapping_options(self, workload, session):
        qg = workload.query.execute(workload.mediator)[0]
        by_mapping = session.rank(
            qg, "reliability", options={"strategy": "closed"}
        )
        by_object = session.rank(
            qg, "reliability", options=RankingOptions(strategy="closed")
        )
        assert by_mapping.scores == by_object.scores

    def test_rank_options_unpacks_into_low_level_rank(self, workload):
        """The pre-facade spelling over RANK_OPTIONS must keep working."""
        from repro.core.ranker import rank
        from repro.experiments.runner import RANK_OPTIONS

        qg = workload.query.execute(workload.mediator)[0]
        result = rank(qg, "reliability", **RANK_OPTIONS.get("reliability", {}))
        assert result.scores
