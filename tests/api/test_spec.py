"""QuerySpec / Query builder: construction, validation, round trips."""

import pytest

from repro.api import Query, QuerySpec, RankingOptions
from repro.errors import QueryError, RankingError
from repro.integration.query import ExploratoryQuery


class TestBuilder:
    def test_fluent_chain(self):
        spec = (
            Query.on("EntrezProtein")
            .where(name="ABCC8")
            .outputs("GOTerm")
            .rank_by("reliability", strategy="closed")
            .top(10)
            .seed(7)
            .build()
        )
        assert spec.entity_set == "EntrezProtein"
        assert spec.attribute == "name"
        assert spec.value == "ABCC8"
        assert spec.outputs == ("GOTerm",)
        assert spec.method == "reliability"
        assert spec.options.strategy == "closed"
        assert spec.top_k == 10
        assert spec.seed == 7

    def test_where_positional(self):
        spec = Query.on("E").where("attr", 3).outputs("A").build()
        assert (spec.attribute, spec.value) == ("attr", 3)

    def test_where_rejects_ambiguity(self):
        with pytest.raises(QueryError, match="exactly one predicate"):
            Query.on("E").where(a=1, b=2)
        with pytest.raises(QueryError, match="exactly one predicate"):
            Query.on("E").where("a")

    def test_build_requires_all_parts(self):
        with pytest.raises(QueryError, match="no entity set"):
            Query().build()
        with pytest.raises(QueryError, match="no predicate"):
            Query.on("E").build()
        with pytest.raises(QueryError, match="no output sets"):
            Query.on("E").where(a=1).build()

    def test_outputs_rejects_non_iterable(self):
        with pytest.raises(QueryError, match="entity-set names"):
            Query.on("E").where(a=1).outputs(123)

    def test_method_alias_resolves(self):
        spec = Query.on("E").where(a=1).outputs("A").rank_by("rel").build()
        assert spec.method == "reliability"

    def test_rank_by_resets_previous_options(self):
        query = Query.on("E").where(a=1).outputs("A")
        query.rank_by("reliability", strategy="mc", trials=100)
        query.rank_by("reliability")
        assert query.build().options == RankingOptions()

    def test_prebuilt_options(self):
        options = RankingOptions(trials=500)
        spec = Query.on("E").where(a=1).outputs("A").options(options).build()
        assert spec.options is options


class TestSpecValidation:
    def test_outputs_sorted_and_deduped(self):
        spec = QuerySpec("E", "a", 1, outputs=("Z", "A", "Z"))
        assert spec.outputs == ("A", "Z")

    def test_equal_specs_hash_equal(self):
        a = QuerySpec("E", "a", 1, outputs=("X", "Y"))
        b = QuerySpec("E", "a", 1, outputs=("Y", "X", "X"))
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize("bad", ["", "   ", None, 3])
    def test_bad_entity_set(self, bad):
        with pytest.raises(QueryError, match="entity_set"):
            QuerySpec(bad, "a", 1, outputs=("A",))

    def test_bad_attribute(self):
        with pytest.raises(QueryError, match="attribute"):
            QuerySpec("E", "", 1, outputs=("A",))

    def test_empty_outputs(self):
        with pytest.raises(QueryError, match="at least one output"):
            QuerySpec("E", "a", 1, outputs=())

    def test_non_string_outputs(self):
        with pytest.raises(QueryError, match="non-empty strings"):
            QuerySpec("E", "a", 1, outputs=("A", 7))

    def test_non_iterable_outputs_in_constructor(self):
        with pytest.raises(QueryError, match="entity-set names"):
            QuerySpec("E", "a", 1, outputs=123)
        spec = QuerySpec("E", "a", 1, outputs=("A",))
        with pytest.raises(QueryError, match="entity-set names"):
            spec.replace(outputs=123)

    def test_unknown_method(self):
        with pytest.raises(RankingError, match="unknown ranking method"):
            QuerySpec("E", "a", 1, outputs=("A",), method="pagerank")

    def test_unhashable_value_rejected_eagerly(self):
        with pytest.raises(QueryError, match="must be hashable"):
            QuerySpec("E", "a", ["v1", "v2"], outputs=("A",))

    def test_bad_top_k(self):
        with pytest.raises(QueryError, match="top_k"):
            QuerySpec("E", "a", 1, outputs=("A",), top_k=0)

    def test_bad_seed(self):
        with pytest.raises(QueryError, match="seed"):
            QuerySpec("E", "a", 1, outputs=("A",), seed="7")

    def test_bad_options_type(self):
        with pytest.raises(QueryError, match="RankingOptions"):
            QuerySpec("E", "a", 1, outputs=("A",), options={"trials": 3})

    def test_replace_revalidates(self):
        spec = QuerySpec("E", "a", 1, outputs=("A",))
        assert spec.replace(method="prop").method == "propagation"
        with pytest.raises(QueryError):
            spec.replace(outputs=())


class TestRoundTrip:
    def test_json_round_trip(self):
        spec = QuerySpec(
            "E",
            "a",
            "v",
            outputs=("B", "A"),
            method="in_edge",
            options=RankingOptions(trials=100),
            top_k=5,
            seed=3,
        )
        assert QuerySpec.from_json(spec.to_json()) == spec

    def test_dict_round_trip_minimal(self):
        spec = QuerySpec("E", "a", True, outputs=("A",))
        data = spec.to_dict()
        assert "top_k" not in data and "seed" not in data and "options" not in data
        assert QuerySpec.from_dict(data) == spec

    def test_from_dict_unknown_field(self):
        with pytest.raises(QueryError, match="unknown QuerySpec field"):
            QuerySpec.from_dict(
                {"entity_set": "E", "attribute": "a", "value": 1,
                 "outputs": ["A"], "limit": 5}
            )

    def test_from_dict_non_iterable_outputs(self):
        with pytest.raises(QueryError, match="'outputs' must be"):
            QuerySpec.from_dict(
                {"entity_set": "E", "attribute": "a", "value": 1, "outputs": 7}
            )

    def test_from_dict_missing_field(self):
        with pytest.raises(QueryError, match="missing field"):
            QuerySpec.from_dict({"entity_set": "E"})

    def test_tuple_value_round_trips_hashable(self):
        """JSON turns tuples into lists; decoding must restore a
        hashable (tuple) predicate value so the spec stays a cache key."""
        spec = QuerySpec("E", "a", ("v1", ("v2", 3)), outputs=("A",))
        back = QuerySpec.from_json(spec.to_json())
        assert back == spec
        assert hash(back) == hash(spec)

    def test_from_dict_string_outputs_is_one_name(self):
        """A bare string names one entity set — never a character soup."""
        spec = QuerySpec.from_dict(
            {"entity_set": "P", "attribute": "name", "value": "x",
             "outputs": "GOTerm"}
        )
        assert spec.outputs == ("GOTerm",)
        assert QuerySpec.from_json(
            '{"entity_set": "P", "attribute": "name", "value": "x", '
            '"outputs": "GOTerm"}'
        ).outputs == ("GOTerm",)

    def test_from_json_invalid(self):
        with pytest.raises(QueryError, match="invalid QuerySpec JSON"):
            QuerySpec.from_json("{nope")
        with pytest.raises(QueryError, match="must be an object"):
            QuerySpec.from_json("[1, 2]")

    def test_to_exploratory(self):
        spec = QuerySpec("E", "a", 1, outputs=("A", "B"))
        query = spec.to_exploratory()
        assert isinstance(query, ExploratoryQuery)
        assert query.signature == spec.signature


class TestExploratoryQueryValidation:
    """The satellite: malformed queries fail fast with useful messages."""

    def test_empty_outputs(self):
        with pytest.raises(QueryError, match="at least one output set"):
            ExploratoryQuery("E", "a", 1, outputs=())

    @pytest.mark.parametrize("bad", ["", None, 42])
    def test_non_string_entity_set(self, bad):
        with pytest.raises(QueryError, match="entity_set"):
            ExploratoryQuery(bad, "a", 1, outputs=("A",))

    def test_non_string_attribute(self):
        with pytest.raises(QueryError, match="attribute"):
            ExploratoryQuery("E", None, 1, outputs=("A",))

    def test_non_string_output_names(self):
        with pytest.raises(QueryError, match="non-empty strings"):
            ExploratoryQuery("E", "a", 1, outputs=("A", object()))

    def test_valid_query_unaffected(self):
        query = ExploratoryQuery("E", "a", 1, outputs=("B", "A"))
        assert query.outputs == frozenset({"A", "B"})
