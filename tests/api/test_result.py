"""ResultSet: ranked entities, ties, pagination, provenance, export."""

import json

import pytest

from repro.api import RankedEntity, RankingOptions, open_session
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import GraphError, ValidationError


@pytest.fixture(scope="module")
def tied_results():
    """Five answers: b (1.0), then a three-way tie (0.25), then e (0.0625)."""
    graph = ProbabilisticEntityGraph()
    graph.add_node("s")
    graph.add_node("m", p=1.0)
    for name in ("a", "b", "c", "d", "e"):
        graph.add_node(name, p=1.0)
    graph.add_edge("s", "b", q=1.0)
    graph.add_edge("s", "m", q=0.25)
    for name in ("a", "c", "d"):
        graph.add_edge("s", name, q=0.25)
    graph.add_edge("m", "e", q=0.25)
    qg = QueryGraph(graph, "s", ["a", "b", "c", "d", "e"])
    # closed form is exact, so the constructed ties hold precisely
    return open_session().rank(
        qg, "reliability", options=RankingOptions(strategy="closed")
    )


class TestEntities:
    def test_order_and_intervals(self, tied_results):
        entities = tied_results.entities
        assert [e.label for e in entities] == ["b", "a", "c", "d", "e"]
        assert [e.rank for e in entities] == [1, 2, 3, 4, 5]
        assert entities[0].rank_interval == (1, 1)
        # the three-way tie shares one interval
        for entity in entities[1:4]:
            assert entity.rank_interval == (2, 4)
            assert entity.expected_rank == 3.0
            assert entity.is_tied
        assert entities[4].rank_interval == (5, 5)

    def test_matches_ranked_result_intervals(self, tied_results):
        for entity in tied_results:
            assert entity.rank_interval == tied_results.ranked.rank_interval(
                entity.node
            )

    def test_tie_groups(self, tied_results):
        groups = tied_results.tie_groups()
        assert [len(group) for group in groups] == [1, 3, 1]

    def test_entity_lookup(self, tied_results):
        assert tied_results.entity("b").rank == 1
        with pytest.raises(GraphError, match="not in this result set"):
            tied_results.entity("nope")

    def test_sequence_protocol(self, tied_results):
        assert len(tied_results) == 5
        assert isinstance(tied_results[0], RankedEntity)
        assert [e.node for e in tied_results][0] == "b"


class TestPagination:
    def test_first_and_last_page(self, tied_results):
        first = tied_results.page(1, size=2)
        assert [e.label for e in first] == ["b", "a"]
        assert first.total_results == 5
        assert first.total_pages == 3
        assert first.has_next and not first.has_previous
        last = tied_results.page(3, size=2)
        assert len(last) == 1
        assert last.has_previous and not last.has_next

    def test_page_past_end_is_empty(self, tied_results):
        page = tied_results.page(99, size=2)
        assert len(page) == 0
        assert page.total_results == 5

    def test_single_large_page(self, tied_results):
        page = tied_results.page(1, size=500)
        assert len(page) == 5
        assert page.total_pages == 1

    @pytest.mark.parametrize("number,size", [(0, 2), (-1, 2), (1, 0), (1, -3)])
    def test_invalid_page_args(self, tied_results, number, size):
        with pytest.raises(ValidationError):
            tied_results.page(number, size=size)

    @pytest.mark.parametrize("n", [0, -1, 2.5])
    def test_invalid_top_args(self, tied_results, n):
        with pytest.raises(ValidationError):
            tied_results.top(n)
        with pytest.raises(ValidationError):
            tied_results.to_dict(limit=n)


class TestPaginationBoundaries:
    """Regression coverage for the paging edge cases: zero sizes, pages
    past the end, and pages straddling a tie group."""

    def test_size_zero_is_rejected_with_actionable_message(self, tied_results):
        with pytest.raises(ValidationError, match="page size"):
            tied_results.page(1, size=0)

    def test_page_past_end_keeps_consistent_navigation(self, tied_results):
        page = tied_results.page(99, size=2)
        assert page.entities == ()
        assert page.number == 99
        assert page.total_results == 5
        assert page.total_pages == 3
        # past the end nothing follows, and the totals point the client
        # back to the real last page
        assert not page.has_next
        assert page.has_previous

    def test_exact_boundary_page_is_last(self, tied_results):
        # 5 results, size 5: page 1 is full and final, page 2 is empty
        full = tied_results.page(1, size=5)
        assert len(full) == 5
        assert full.total_pages == 1
        assert not full.has_next
        empty = tied_results.page(2, size=5)
        assert len(empty) == 0
        assert not empty.has_next

    def test_page_straddling_a_tie_group(self, tied_results):
        """The three-way tie (ranks 2-4) is split across pages 1 and 2;
        every member keeps its *global* rank interval, and the page cut
        never reorders within the tie."""
        first = tied_results.page(1, size=3)
        second = tied_results.page(2, size=3)
        labels = [e.label for e in first] + [e.label for e in second]
        assert labels == [e.label for e in tied_results.entities]
        straddlers = [e for e in list(first) + list(second) if e.is_tied]
        assert len(straddlers) == 3
        assert {e.rank_interval for e in straddlers} == {(2, 4)}
        # the straddled tie group is intact in the tie view
        assert [len(g) for g in tied_results.tie_groups()] == [1, 3, 1]

    def test_size_one_pages_enumerate_every_entity(self, tied_results):
        pages = [tied_results.page(n, size=1) for n in range(1, 6)]
        assert all(len(page) == 1 for page in pages)
        assert pages[0].total_pages == 5
        assert [page.entities[0].rank for page in pages] == [1, 2, 3, 4, 5]
        assert not pages[-1].has_next


class TestProvenanceAndExport:
    def test_provenance_paths(self, tied_results):
        paths = tied_results.provenance("e", top=2)
        assert paths and paths[0].nodes == ("s", "m", "e")
        # accepts the entity object too
        assert tied_results.provenance(tied_results.entity("e"))

    def test_explain_mentions_path_count(self, tied_results):
        assert "supporting path" in tied_results.explain("b")

    def test_to_dict_shape(self, tied_results):
        data = tied_results.to_dict(limit=2)
        assert data["total"] == 5
        assert data["returned"] == 2
        assert data["entities"][0]["rank"] == 1
        assert data["entities"][0]["rank_interval"] == [1, 1]

    def test_to_json_parses(self, tied_results):
        payload = json.loads(tied_results.to_json())
        assert payload["method"] == "reliability"
        assert len(payload["entities"]) == 5


class TestTopWindow:
    def test_top_defaults_to_spec_top_k(self):
        from repro.workloads.mediated import mediated_layers

        workload = mediated_layers(layers=2, width=12, fan_out=4, seeds=3, rng=1)
        session = workload.open_session()
        results = session.execute(workload.spec(method="path_count", top_k=3))
        assert len(results.top()) == 3
        assert len(results.top(1)) == 1
        assert len(results.entities) >= 3
        assert results.to_dict()["returned"] == 3
