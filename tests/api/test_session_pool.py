"""The session's persistent batch pool.

``execute_many`` used to build and tear down a ``ThreadPoolExecutor``
on every call — thread spawn/join dominated small warm batches. The
pool is now lazy, persistent, and reaped by ``close()``; an explicit
non-default ``max_workers`` still gets a transient pool of exactly
that width.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import EngineConfig
from repro.api.spec import QuerySpec
from repro.errors import RankingError
from repro.workloads import mediated_layers


@pytest.fixture()
def workload():
    generated = mediated_layers(layers=3, width=16, fan_out=3, rng=11)
    yield generated
    generated.close()


def _specs(n):
    # distinct roots -> distinct traversal groups, so the batch
    # actually exercises the pool (a single group runs serially)
    return [
        QuerySpec(
            entity_set="E0",
            attribute="id",
            value=f"E0:{i}",
            outputs=("E1", "E2"),
            method="in_edge",
        )
        for i in range(n)
    ]


class TestPersistentPool:
    def test_repeated_batches_reuse_one_pool(self, workload):
        with workload.open_session() as session:
            assert session._pool is None  # lazy: no batch, no pool
            first = session.execute_many(_specs(4))
            pool = session._pool
            assert pool is not None
            second = session.execute_many(_specs(4))
            assert session._pool is pool  # no churn across calls
            for a, b in zip(first, second):
                assert dict(a.scores) == dict(b.scores)

    def test_pool_threads_are_labelled(self, workload):
        with workload.open_session() as session:
            session.execute_many(_specs(4))
            alive = {thread.name for thread in threading.enumerate()}
            assert any(name.startswith("repro-batch") for name in alive)

    def test_close_reaps_the_pool(self, workload):
        session = workload.open_session()
        session.execute_many(_specs(4))
        pool = session._pool
        assert pool is not None
        session.close()
        assert session._pool is None
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)  # shut down, not leaked

    def test_single_group_batch_stays_serial(self, workload):
        with workload.open_session() as session:
            spec = _specs(1)[0]
            # one traversal group: the serial path, no pool needed
            results = session.execute_many([spec, spec])
            assert session._pool is None
            assert results[0] is results[1]  # identical specs collapse

    def test_explicit_width_uses_a_transient_pool(self, workload):
        config = EngineConfig(max_workers=4)
        with workload.open_session(config=config) as session:
            results = session.execute_many(_specs(4), max_workers=2)
            assert len(results) == 4
            assert session._pool is None  # non-default width: transient
            # the default width lands on the persistent pool
            session.execute_many(_specs(4), max_workers=4)
            assert session._pool is not None

    def test_closed_session_rejects_batches(self, workload):
        session = workload.open_session()
        session.close()
        with pytest.raises(RankingError):
            session.execute_many(_specs(2))
