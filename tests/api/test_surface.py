"""Public-API surface snapshots.

``repro.api.__all__`` is the compatibility contract downstream code
targets. These snapshots are intentionally brittle: changing the public
surface must be a deliberate act (update the snapshot in the same
change), never an accident.
"""

import repro
import repro.api

#: the frozen repro.api surface — update deliberately, with a changelog
#: (ShardedResultSet added with the scatter/gather sharding layer)
API_SURFACE = [
    "EngineConfig",
    "Explanation",
    "Query",
    "QuerySpec",
    "RankedEntity",
    "RankingOptions",
    "ResultPage",
    "ResultSet",
    "Session",
    "ShardedResultSet",
    "open_session",
]

#: facade names re-exported at the repro top level
TOP_LEVEL_FACADE = [
    "EngineConfig",
    "Query",
    "QuerySpec",
    "RankingOptions",
    "ResultSet",
    "Session",
    "open_session",
]


def test_api_all_is_frozen():
    assert sorted(repro.api.__all__) == API_SURFACE


def test_api_names_resolve():
    for name in API_SURFACE:
        assert getattr(repro.api, name) is not None


def test_top_level_reexports():
    for name in TOP_LEVEL_FACADE:
        assert name in repro.__all__
        assert getattr(repro, name) is getattr(repro.api, name)


def test_legacy_surface_still_importable():
    """The pre-facade call paths keep working (deprecation-shimmed or
    untouched); removing any of these is a breaking change."""
    from repro import ExploratoryQuery, Mediator, RankingEngine, rank  # noqa: F401
    from repro.engine import EngineStats  # noqa: F401
    from repro.experiments.runner import default_engine  # noqa: F401
    from repro.integration.query import BUILDERS  # noqa: F401


def test_default_engine_warns_but_works():
    import warnings

    from repro.experiments.runner import default_engine, default_session

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        engine = default_engine()
    assert any(w.category is DeprecationWarning for w in caught)
    assert engine is default_session().engine
