"""Tests for hash indexes."""

import pytest

from repro.errors import IntegrityError
from repro.storage.index import HashIndex


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex("i", ("a",))
        index.add("k", 0)
        index.add("k", 1)
        assert index.lookup("k") == [0, 1]

    def test_lookup_missing_key_is_empty(self):
        assert HashIndex("i", ("a",)).lookup("nope") == []

    def test_unique_rejects_duplicates(self):
        index = HashIndex("i", ("a",), unique=True)
        index.add("k", 0)
        with pytest.raises(IntegrityError):
            index.add("k", 1)

    def test_remove(self):
        index = HashIndex("i", ("a",))
        index.add("k", 0)
        index.remove("k", 0)
        assert index.lookup("k") == []
        assert len(index) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(IntegrityError):
            HashIndex("i", ("a",)).remove("k", 0)

    def test_lookup_many_groups_present_keys(self):
        index = HashIndex("i", ("a",))
        index.add("k", 0)
        index.add("k", 1)
        index.add("m", 2)
        grouped = index.lookup_many(["k", "missing", "m", "k"])
        assert grouped == {"k": [0, 1], "m": [2]}

    def test_lookup_many_returns_copies(self):
        index = HashIndex("i", ("a",))
        index.add("k", 0)
        index.lookup_many(["k"])["k"].append(99)
        assert index.lookup("k") == [0]

    def test_contains_many(self):
        index = HashIndex("i", ("a",))
        index.add("k", 0)
        index.add("m", 1)
        assert index.contains_many(["k", "m", "x"]) == {"k", "m"}
        assert index.contains_many([]) == set()

    def test_key_for_single_column(self):
        index = HashIndex("i", ("a",))
        assert index.key_for({"a": 1, "b": 2}) == 1

    def test_key_for_composite_columns(self):
        index = HashIndex("i", ("a", "b"))
        assert index.key_for({"a": 1, "b": 2}) == (1, 2)

    def test_needs_at_least_one_column(self):
        with pytest.raises(ValueError):
            HashIndex("i", ())

    def test_len_counts_entries(self):
        index = HashIndex("i", ("a",))
        index.add("k", 0)
        index.add("j", 1)
        index.add("j", 2)
        assert len(index) == 3
