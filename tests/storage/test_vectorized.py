"""Vectorized backend specifics: mmap persistence, O(1) attach, and the
selection-vector (``probe_positions`` / ``gather``) read surface.

The shared Table semantics are covered by ``test_table.py`` (the whole
suite runs on every backend, the vectorized one included); this module
tests what only the vectorized backend does — the ``.npy`` + manifest
directory layout, lazy memory-mapped re-attach, copy-on-write mutation
after attach, deferred index backfill, and the batch-columnar surface
the graph builders' fast path consumes.
"""

import json

import numpy as np
import pytest

from repro.api import EngineConfig, open_session
from repro.errors import StorageError, ValidationError
from repro.storage import (
    Column,
    ColumnType,
    Database,
    Table,
    create_backend,
)
from repro.workloads import mediated_layers


def _gene_columns():
    return [
        Column("gid", ColumnType.TEXT),
        Column("chrom", ColumnType.INT, nullable=True),
        Column("weight", ColumnType.FLOAT),
        Column("active", ColumnType.BOOL),
    ]


def _populate(table, n=5):
    return [
        table.insert(
            {
                "gid": f"g{i}",
                "chrom": None if i % 3 == 0 else i,
                "weight": i / 10.0,
                "active": i % 2 == 0,
            }
        )
        for i in range(n)
    ]


class TestPersistence:
    def test_round_trip_through_a_directory(self, tmp_path):
        path = tmp_path / "genes"
        db = Database("genes", storage="vectorized", storage_path=path)
        table = db.create_table("genes", _gene_columns(), primary_key=["gid"])
        ids = _populate(table)
        db.close()
        assert (path / "genes.manifest.json").exists()
        assert (path / "genes.c0.npy").exists()
        assert (path / "genes.ids.npy").exists()

        db2 = Database("genes", storage="vectorized", storage_path=path)
        again = db2.create_table("genes", _gene_columns(), primary_key=["gid"])
        assert len(again) == len(ids)
        assert [row["gid"] for row in again.rows()] == [f"g{i}" for i in range(5)]
        assert again.get(ids[3]) == table.get(ids[3])
        assert again.lookup(("chrom",), (None,)) == table.lookup(("chrom",), (None,))
        db2.close()

    def test_reattach_is_memory_mapped_and_lazy(self, tmp_path):
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        _populate(db.create_table("t", _gene_columns()))
        db.close()

        db2 = Database("d", storage="vectorized", storage_path=path)
        table = db2.create_table("t", _gene_columns())
        backend = table._backend
        assert backend._attached
        # numeric columns serve straight from the mapped files
        assert isinstance(backend._cols["weight"]._arr, np.memmap)
        # reads keep the attach (no copy-on-write)
        assert table.lookup(("gid",), ("g2",))[0]["weight"] == 0.2
        assert backend._attached
        # the first mutation materialises private arrays
        table.insert({"gid": "g9", "chrom": 9, "weight": 0.9, "active": False})
        assert not backend._attached
        assert not isinstance(backend._cols["weight"]._arr, np.memmap)
        db2.close()

    def test_untouched_attach_skips_rewrite(self, tmp_path):
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        _populate(db.create_table("t", _gene_columns()))
        db.close()
        manifest = path / "t.manifest.json"
        before = manifest.stat().st_mtime_ns

        db2 = Database("d", storage="vectorized", storage_path=path)
        table = db2.create_table("t", _gene_columns())
        list(table.rows())
        db2.close()  # read-only session: nothing to write back
        assert manifest.stat().st_mtime_ns == before

    def test_reattach_continues_row_ids(self, tmp_path):
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        table = db.create_table("t", _gene_columns())
        first = table.insert({"gid": "a", "weight": 0.1, "active": True})
        db.close()

        db2 = Database("d", storage="vectorized", storage_path=path)
        table2 = db2.create_table("t", _gene_columns())
        second = table2.insert({"gid": "b", "weight": 0.2, "active": True})
        assert second > first
        db2.close()

    def test_reattached_unique_index_backfills_on_first_write(self, tmp_path):
        from repro.errors import IntegrityError

        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        table = db.create_table("t", _gene_columns())
        table.create_index("by_gid", ["gid"], unique=True)
        _populate(table)
        db.close()

        db2 = Database("d", storage="vectorized", storage_path=path)
        table2 = db2.create_table("t", _gene_columns())
        table2.create_index("by_gid", ["gid"], unique=True)
        # declared while attached: deferred, probes stay on the scan path
        assert table2._backend._pending_indexes
        assert [r["gid"] for r in table2.lookup(("gid",), ("g1",))] == ["g1"]
        with pytest.raises(IntegrityError):
            table2.insert(
                {"gid": "g1", "chrom": 1, "weight": 0.5, "active": True}
            )
        # the failed insert still backfilled (and kept) the index
        assert not table2._backend._pending_indexes
        assert len(table2) == 5
        db2.close()

    def test_schema_mismatch_on_reattach_rejected(self, tmp_path):
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        _populate(db.create_table("t", _gene_columns()))
        db.close()

        db2 = Database("d", storage="vectorized", storage_path=path)
        with pytest.raises(StorageError, match="schema migration"):
            db2.create_table("t", [Column("other", ColumnType.TEXT)])

    def test_retyped_column_on_reattach_rejected(self, tmp_path):
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        _populate(db.create_table("t", _gene_columns()))
        db.close()

        retyped = _gene_columns()
        retyped[2] = Column("weight", ColumnType.INT)  # was FLOAT
        db2 = Database("d", storage="vectorized", storage_path=path)
        with pytest.raises(StorageError, match="persisted as"):
            db2.create_table("t", retyped)

    def test_corrupt_manifest_rejected(self, tmp_path):
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        _populate(db.create_table("t", _gene_columns()))
        db.close()
        (path / "t.manifest.json").write_text("{not json")

        db2 = Database("d", storage="vectorized", storage_path=path)
        with pytest.raises(StorageError, match="unreadable vectorized manifest"):
            db2.create_table("t", _gene_columns())

    def test_int_promotion_survives_round_trip(self, tmp_path):
        huge = 2**70  # beyond int64: the column promotes to dict encoding
        path = tmp_path / "d"
        db = Database("d", storage="vectorized", storage_path=path)
        table = db.create_table("t", [Column("k", ColumnType.INT)])
        table.insert({"k": 1})
        table.insert({"k": huge})
        assert [row["k"] for row in table.rows()] == [1, huge]
        db.close()
        manifest = json.loads((path / "t.manifest.json").read_text())
        assert manifest["columns"][0]["kind"] == "dict"

        db2 = Database("d", storage="vectorized", storage_path=path)
        table2 = db2.create_table("t", [Column("k", ColumnType.INT)])
        assert [row["k"] for row in table2.rows()] == [1, huge]
        assert [r["k"] for r in table2.lookup(("k",), (huge,))] == [huge]
        db2.close()


class TestColumnarSurface:
    def test_probe_positions_and_gather(self):
        table = Table("t", _gene_columns(), backend=create_backend("vectorized"))
        _populate(table)
        assert table.supports_columnar
        groups = table.probe_positions(("gid",), ["g1", "g3", "missing"])
        assert set(groups) == {"g1", "g3"}
        positions = np.concatenate([groups["g1"], groups["g3"]])
        weights, active = table.gather(("weight", "active"), positions)
        assert weights.tolist() == [0.1, 0.3]
        assert active.tolist() == [False, False]

    def test_probe_positions_agree_with_lookup_many(self):
        table = Table("t", _gene_columns(), backend=create_backend("vectorized"))
        _populate(table, n=8)
        keys = ["g0", "g5", None, "zzz"]
        groups = table.probe_positions(("gid",), keys)
        rows = table.lookup_many(("gid",), keys)
        assert set(groups) == set(rows)
        for key, positions in groups.items():
            gids, weights = table.gather(("gid", "weight"), positions)
            assert gids.tolist() == [row["gid"] for row in rows[key]]
            assert weights.tolist() == [row["weight"] for row in rows[key]]

    @pytest.mark.parametrize("storage", ["memory", "sqlite", "columnar"])
    def test_other_backends_have_no_columnar_surface(self, storage):
        table = Table("t", _gene_columns(), backend=create_backend(storage))
        assert not table.supports_columnar
        with pytest.raises(StorageError, match="no columnar read surface"):
            table.probe_positions(("gid",), ["g0"])
        with pytest.raises(StorageError, match="no columnar read surface"):
            table.gather(("gid",), np.array([0]))

    def test_shard_views_disable_the_columnar_surface(self):
        from repro.integration.partition import ShardTableView

        assert ShardTableView.supports_columnar is False


class TestSessionAndWorkloadPlumbing:
    def test_engine_config_accepts_vectorized_storage_path(self, tmp_path):
        config = EngineConfig(storage="vectorized", storage_path=str(tmp_path))
        assert EngineConfig.from_dict(config.as_dict()) == config
        db = config.make_database("sources")
        db.create_table("t", _gene_columns()).insert(
            {"gid": "a", "weight": 0.5, "active": True}
        )
        db.close()
        assert (tmp_path / "sources" / "t.manifest.json").exists()

    def test_session_creates_databases_on_vectorized_backend(self, tmp_path):
        config = EngineConfig(storage="vectorized", storage_path=str(tmp_path))
        with open_session(config=config) as session:
            db = session.create_database("sources")
            db.create_table("t", _gene_columns()).insert(
                {"gid": "a", "weight": 0.5, "active": True}
            )
            db.close()
        assert (tmp_path / "sources" / "t.manifest.json").exists()

    def test_workload_round_trip_reattaches_and_ranks_identically(self, tmp_path):
        shape = dict(layers=3, width=8, fan_out=2, rng=7, seeds=2,
                     storage="vectorized", storage_path=tmp_path)
        first = mediated_layers(**shape)
        with first.open_session() as session:
            before = session.execute(first.spec(method="path_count"))
        first.close()
        assert (tmp_path / "layer0" / "ents.manifest.json").exists()

        again = mediated_layers(**shape)  # same dir: adopt, don't regenerate
        assert again.total_records == first.total_records
        assert again.total_links == first.total_links
        # adopted layers serve straight from the mapped files
        assert again.mediator.entity_plan("E1").table._backend._attached
        with again.open_session() as session:
            after = session.execute(again.spec(method="path_count"))
        assert after.scores == before.scores
        assert [r.rank_interval for r in after] == [r.rank_interval for r in before]
        again.close()

    def test_partial_persisted_layer_rejected(self, tmp_path):
        shape = dict(layers=2, width=6, fan_out=2, rng=7,
                     storage="vectorized", storage_path=tmp_path)
        workload = mediated_layers(**shape)
        ents = workload.mediator.entity_plan("E1").table
        ents.delete(next(iter(ents.row_ids())))  # truncate the artefact
        workload.close()
        with pytest.raises(ValidationError, match="truncated"):
            mediated_layers(**shape)

    def test_large_layer_reattach_does_not_load_columns(self, tmp_path):
        """Re-attaching a persisted layer keeps columns memory-mapped:
        attach reads only the manifest, so it stays O(1) in row count."""
        path = tmp_path / "big"
        db = Database("big", storage="vectorized", storage_path=path)
        table = db.create_table(
            "t", [Column("k", ColumnType.INT), Column("w", ColumnType.FLOAT)]
        )
        n = 100_000
        table.insert_many(
            [{"k": i, "w": (i % 100) / 100.0} for i in range(n)]
        )
        db.close()

        db2 = Database("big", storage="vectorized", storage_path=path)
        table2 = db2.create_table(
            "t", [Column("k", ColumnType.INT), Column("w", ColumnType.FLOAT)]
        )
        backend = table2._backend
        assert len(table2) == n
        assert backend._attached
        assert isinstance(backend._cols["k"]._arr, np.memmap)
        assert isinstance(backend._cols["w"]._arr, np.memmap)
        # a point probe pages in only what it touches and answers right
        assert table2.lookup(("k",), (99_999,))[0]["w"] == 0.99
        assert backend._attached  # still serving from the mapped files
        db2.close()
