"""Tests for the column type system."""

import pytest

from repro.errors import IntegrityError
from repro.storage.column import Column, ColumnType


class TestColumnTypes:
    def test_int_accepts_int(self):
        assert ColumnType.INT.coerce(5, "c") == 5

    def test_int_rejects_bool(self):
        with pytest.raises(IntegrityError):
            ColumnType.INT.coerce(True, "c")

    def test_int_rejects_float(self):
        with pytest.raises(IntegrityError):
            ColumnType.INT.coerce(5.0, "c")

    def test_float_coerces_int(self):
        result = ColumnType.FLOAT.coerce(5, "c")
        assert result == 5.0
        assert isinstance(result, float)

    def test_float_rejects_bool(self):
        with pytest.raises(IntegrityError):
            ColumnType.FLOAT.coerce(True, "c")

    def test_text_accepts_str(self):
        assert ColumnType.TEXT.coerce("x", "c") == "x"

    def test_text_rejects_bytes(self):
        with pytest.raises(IntegrityError):
            ColumnType.TEXT.coerce(b"x", "c")

    def test_bool_accepts_bool(self):
        assert ColumnType.BOOL.coerce(False, "c") is False

    def test_bool_rejects_int(self):
        with pytest.raises(IntegrityError):
            ColumnType.BOOL.coerce(1, "c")

    def test_error_message_names_column(self):
        with pytest.raises(IntegrityError, match="'price'"):
            ColumnType.FLOAT.coerce("cheap", "price")


class TestColumn:
    def test_non_nullable_rejects_none(self):
        with pytest.raises(IntegrityError):
            Column("c", ColumnType.INT).validate(None)

    def test_nullable_accepts_none(self):
        assert Column("c", ColumnType.INT, nullable=True).validate(None) is None

    def test_validate_delegates_to_type(self):
        assert Column("c", ColumnType.FLOAT).validate(3) == 3.0
