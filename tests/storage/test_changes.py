"""Change tracking: the bounded per-table log, change-set coalescing,
and the update/delete surface that feeds it — on every backend."""

import pytest

from repro.errors import IntegrityError, StorageError
from repro.storage import (
    ChangeSet,
    Column,
    ColumnType,
    STORAGE_BACKENDS,
    Table,
    TableChangeLog,
)
from repro.storage.backends import create_backend
from repro.storage.changes import FULL_CHANGE_SET


def _columns():
    return [
        Column("gid", ColumnType.TEXT),
        Column("score", ColumnType.FLOAT),
    ]


def _table(storage):
    return Table(
        "genes",
        _columns(),
        primary_key=["gid"],
        backend=create_backend(storage),
    )


class TestChangeSet:
    def test_empty_is_falsy(self):
        empty = ChangeSet()
        assert empty.is_empty
        assert not empty

    def test_full_is_truthy_even_without_rows(self):
        assert FULL_CHANGE_SET.full
        assert not FULL_CHANGE_SET.is_empty
        assert FULL_CHANGE_SET

    def test_any_component_makes_it_nonempty(self):
        assert ChangeSet(inserted=(1,))
        assert ChangeSet(updated={1: {"gid": "a"}})
        assert ChangeSet(deleted={1: {"gid": "a"}})


class TestTableChangeLog:
    def test_clean_window_is_empty(self):
        log = TableChangeLog()
        log.record(1, "insert", 10, None)
        assert log.changes_since(1).is_empty

    def test_insert_then_delete_cancels(self):
        log = TableChangeLog()
        log.record(1, "insert", 10, None)
        log.record(2, "delete", 10, {"gid": "a"})
        assert log.changes_since(0).is_empty

    def test_insert_then_update_stays_an_insert(self):
        log = TableChangeLog()
        log.record(1, "insert", 10, None)
        log.record(2, "update", 10, {"gid": "a", "score": 1.0})
        changes = log.changes_since(0)
        assert changes.inserted == (10,)
        assert changes.updated == {}

    def test_repeated_update_keeps_earliest_pre_image(self):
        log = TableChangeLog()
        log.record(1, "update", 10, {"score": 1.0})
        log.record(2, "update", 10, {"score": 2.0})
        assert log.changes_since(0).updated == {10: {"score": 1.0}}

    def test_update_then_delete_becomes_delete_with_earliest_pre_image(self):
        log = TableChangeLog()
        log.record(1, "update", 10, {"score": 1.0})
        log.record(2, "delete", 10, {"score": 2.0})
        changes = log.changes_since(0)
        assert changes.updated == {}
        assert changes.deleted == {10: {"score": 1.0}}

    def test_window_excludes_older_entries(self):
        log = TableChangeLog()
        log.record(1, "insert", 10, None)
        log.record(2, "insert", 11, None)
        assert log.changes_since(1).inserted == (11,)

    def test_overflow_answers_full_for_trimmed_windows(self):
        log = TableChangeLog(limit=2)
        for version in (1, 2, 3):
            log.record(version, "insert", version, None)
        # version-1 entry was trimmed: windows reaching past it are dirty
        assert log.changes_since(0).full
        # recent windows still answer precisely
        assert log.changes_since(1).inserted == (2, 3)
        assert log.changes_since(3).is_empty

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            TableChangeLog(limit=0)


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
class TestTableUpdates:
    def test_update_rewrites_row_in_place(self, storage):
        table = _table(storage)
        rid = table.insert({"gid": "a", "score": 1.0})
        table.insert({"gid": "b", "score": 2.0})
        table.update(rid, {"score": 9.0})
        assert table.get(rid) == {"gid": "a", "score": 9.0}
        # row order is untouched: update is positional, not delete+insert
        assert [row["gid"] for row in table.rows()] == ["a", "b"]

    def test_update_re_keys_indexes(self, storage):
        table = _table(storage)
        rid = table.insert({"gid": "a", "score": 1.0})
        table.update(rid, {"gid": "z"})
        assert table.lookup(("gid",), ("z",)) == [{"gid": "z", "score": 1.0}]
        assert table.lookup(("gid",), ("a",)) == []

    def test_update_unique_violation_rolls_back(self, storage):
        table = _table(storage)
        rid = table.insert({"gid": "a", "score": 1.0})
        table.insert({"gid": "b", "score": 2.0})
        with pytest.raises(IntegrityError):
            table.update(rid, {"gid": "b"})
        assert table.get(rid) == {"gid": "a", "score": 1.0}
        assert len(table.lookup(("gid",), ("a",))) == 1

    def test_update_rejects_unknown_column_and_empty_changes(self, storage):
        table = _table(storage)
        rid = table.insert({"gid": "a", "score": 1.0})
        with pytest.raises(StorageError):
            table.update(rid, {"nope": 1})
        with pytest.raises(StorageError):
            table.update(rid, {})

    def test_update_unknown_row_id(self, storage):
        table = _table(storage)
        with pytest.raises(StorageError):
            table.update(999, {"score": 1.0})

    def test_update_many_is_one_batch(self, storage):
        table = _table(storage)
        rids = table.insert_many(
            [{"gid": f"g{i}", "score": float(i)} for i in range(4)]
        )
        version = table.version
        table.update_many({rids[0]: {"score": 10.0}, rids[2]: {"score": 12.0}})
        assert table.version == version + 2
        changes = table.changes_since(version)
        assert set(changes.updated) == {rids[0], rids[2]}

    def test_update_many_rolls_back_all_on_failure(self, storage):
        table = _table(storage)
        rids = table.insert_many(
            [{"gid": "a", "score": 1.0}, {"gid": "b", "score": 2.0}]
        )
        version = table.version
        with pytest.raises(IntegrityError):
            table.update_many(
                {rids[0]: {"score": 7.0}, rids[1]: {"gid": "a"}}
            )
        assert table.get(rids[0]) == {"gid": "a", "score": 1.0}
        assert table.get(rids[1]) == {"gid": "b", "score": 2.0}
        assert table.version == version
        assert table.changes_since(version).is_empty


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
class TestTableChangeTracking:
    def test_inserts_and_deletes_are_logged(self, storage):
        table = _table(storage)
        version = table.version
        rid_a = table.insert({"gid": "a", "score": 1.0})
        rid_b = table.insert({"gid": "b", "score": 2.0})
        table.delete(rid_a)
        changes = table.changes_since(version)
        assert changes.inserted == (rid_b,)  # a's insert+delete cancelled
        assert changes.deleted == {}
        assert not changes.full

    def test_delete_pre_image_preserved(self, storage):
        table = _table(storage)
        rid = table.insert({"gid": "a", "score": 1.0})
        version = table.version
        table.delete(rid)
        assert table.changes_since(version).deleted == {
            rid: {"gid": "a", "score": 1.0}
        }

    def test_update_pre_image_is_a_stable_snapshot(self, storage):
        """The pre-image must not alias live backend storage: further
        updates to the row may not mutate it retroactively."""
        table = _table(storage)
        rid = table.insert({"gid": "a", "score": 1.0})
        version = table.version
        table.update(rid, {"score": 2.0})
        table.update(rid, {"score": 3.0})
        changes = table.changes_since(version)
        assert changes.updated[rid]["score"] == 1.0

    def test_overflow_degrades_to_full(self, storage):
        table = _table(storage)
        version = table.version
        table.change_log.limit = 2
        for i in range(4):
            table.insert({"gid": f"g{i}", "score": float(i)})
        assert table.changes_since(version).full
        # a recent window is still precise
        assert not table.changes_since(table.version - 1).full
