"""Tests for CSV dump/load round trips."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    Column,
    ColumnType,
    Database,
    Table,
    dump_database,
    dump_table,
    load_table_rows,
)


@pytest.fixture
def mixed_table() -> Table:
    table = Table(
        "mixed",
        columns=[
            Column("i", ColumnType.INT),
            Column("f", ColumnType.FLOAT),
            Column("t", ColumnType.TEXT),
            Column("b", ColumnType.BOOL),
            Column("opt", ColumnType.TEXT, nullable=True),
        ],
        primary_key=["i"],
    )
    table.insert({"i": 1, "f": 0.5, "t": "hello", "b": True, "opt": None})
    table.insert({"i": 2, "f": 1e-300, "t": "low, key", "b": False, "opt": "x"})
    return table


class TestRoundTrip:
    def test_dump_and_load_preserve_rows(self, mixed_table, tmp_path):
        path = tmp_path / "mixed.csv"
        written = dump_table(mixed_table, path)
        assert written == 2

        clone = Table(
            "clone",
            columns=list(mixed_table.columns),
            primary_key=["i"],
        )
        loaded = load_table_rows(clone, path)
        assert loaded == 2
        assert clone.pk_lookup(1)["opt"] is None
        assert clone.pk_lookup(1)["b"] is True
        assert clone.pk_lookup(2)["f"] == 1e-300
        assert clone.pk_lookup(2)["t"] == "low, key"

    def test_types_restored(self, mixed_table, tmp_path):
        path = tmp_path / "mixed.csv"
        dump_table(mixed_table, path)
        clone = Table("clone", columns=list(mixed_table.columns))
        load_table_rows(clone, path)
        (row, _) = list(clone.rows())
        assert isinstance(row["i"], int)
        assert isinstance(row["f"], float)
        assert isinstance(row["b"], bool)

    def test_load_rejects_unknown_columns(self, mixed_table, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ghost\n1\n")
        with pytest.raises(StorageError):
            load_table_rows(mixed_table, path)

    def test_load_rejects_empty_file(self, mixed_table, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            load_table_rows(mixed_table, path)

    def test_load_enforces_constraints(self, mixed_table, tmp_path):
        path = tmp_path / "mixed.csv"
        dump_table(mixed_table, path)
        # loading into the same table violates the primary key
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            load_table_rows(mixed_table, path)


class TestDumpDatabase:
    def test_one_csv_per_table(self, tmp_path):
        db = Database("d")
        db.create_table("a", columns=[Column("x", ColumnType.INT)])
        db.create_table("b", columns=[Column("y", ColumnType.TEXT)])
        db.insert("a", {"x": 1})
        db.insert("b", {"y": "z"})
        db.insert("b", {"y": "w"})
        total = dump_database(db, tmp_path / "out")
        assert total == 3
        assert (tmp_path / "out" / "a.csv").exists()
        assert (tmp_path / "out" / "b.csv").exists()
