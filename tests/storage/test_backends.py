"""Backend-specific behaviour: persistence, invalidation, internals.

The shared Table semantics are covered by ``test_table.py`` (the whole
suite is parametrized over every backend); this module tests what is
*not* shared — SQLite persistence and re-attachment, columnar position
bookkeeping under deletes, NULL-key batch probes, and the contract the
engine depends on: mutations through any backend bump ``Table.version``
and invalidate the engine's epoch-guarded query cache.
"""

import pytest

from repro.api import EngineConfig, open_session
from repro.errors import RankingError, StorageError
from repro.storage import (
    STORAGE_BACKENDS,
    Column,
    ColumnType,
    Database,
    SQLiteStore,
    Table,
    create_backend,
)
from repro.workloads import mediated_layers


def _gene_columns():
    return [
        Column("gid", ColumnType.TEXT),
        Column("chrom", ColumnType.INT, nullable=True),
        Column("active", ColumnType.BOOL),
    ]


class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(StorageError, match="unknown storage backend"):
            create_backend("parquet")

    def test_database_validates_storage(self):
        with pytest.raises(StorageError, match="unknown storage backend"):
            Database("d", storage="parquet")

    def test_storage_path_requires_sqlite(self):
        with pytest.raises(StorageError, match="storage_path"):
            Database("d", storage="columnar", storage_path="/tmp/x")

    @pytest.mark.parametrize("storage", STORAGE_BACKENDS)
    def test_table_reports_its_storage(self, storage):
        db = Database("d", storage=storage)
        table = db.create_table("t", _gene_columns())
        assert table.storage == storage
        assert db.storage == storage


class TestSQLitePersistence:
    def test_round_trip_through_a_file(self, tmp_path):
        path = tmp_path / "genes.sqlite"
        db = Database("genes", storage="sqlite", storage_path=path)
        table = db.create_table("genes", _gene_columns(), primary_key=["gid"])
        table.insert({"gid": "abcc8", "chrom": 11, "active": True})
        table.insert({"gid": "kir6", "chrom": None, "active": False})
        db.close()

        db2 = Database("genes", storage="sqlite", storage_path=path)
        table2 = db2.create_table("genes", _gene_columns(), primary_key=["gid"])
        assert len(table2) == 2
        assert [row["gid"] for row in table2.rows()] == ["abcc8", "kir6"]
        # types are restored, including BOOL and NULL
        row = table2.pk_lookup("abcc8")
        assert row["active"] is True and row["chrom"] == 11
        assert table2.pk_lookup("kir6")["chrom"] is None

    def test_reattach_continues_row_ids(self, tmp_path):
        path = tmp_path / "t.sqlite"
        db = Database("d", storage="sqlite", storage_path=path)
        table = db.create_table("t", _gene_columns())
        assert table.insert({"gid": "a", "active": True}) == 0
        assert table.insert({"gid": "b", "active": True}) == 1
        db.close()

        db2 = Database("d", storage="sqlite", storage_path=path)
        table2 = db2.create_table("t", _gene_columns())
        assert table2.insert({"gid": "c", "active": False}) == 2
        assert list(table2.row_ids()) == [0, 1, 2]

    def test_reattached_unique_index_still_enforced(self, tmp_path):
        from repro.errors import IntegrityError

        path = tmp_path / "t.sqlite"
        db = Database("d", storage="sqlite", storage_path=path)
        db.create_table("t", _gene_columns(), primary_key=["gid"]).insert(
            {"gid": "a", "active": True}
        )
        db.close()

        db2 = Database("d", storage="sqlite", storage_path=path)
        table2 = db2.create_table("t", _gene_columns(), primary_key=["gid"])
        with pytest.raises(IntegrityError):
            table2.insert({"gid": "a", "active": False})

    def test_schema_mismatch_on_reattach_rejected(self, tmp_path):
        path = tmp_path / "t.sqlite"
        db = Database("d", storage="sqlite", storage_path=path)
        db.create_table("t", _gene_columns()).insert({"gid": "a", "active": True})
        db.close()

        db2 = Database("d", storage="sqlite", storage_path=path)
        with pytest.raises(StorageError, match="schema migration is not supported"):
            db2.create_table("t", [Column("other", ColumnType.TEXT)])

    def test_retyped_column_on_reattach_rejected(self, tmp_path):
        path = tmp_path / "t.sqlite"
        db = Database("d", storage="sqlite", storage_path=path)
        db.create_table("t", [Column("x", ColumnType.TEXT)]).insert({"x": "hello"})
        db.close()

        db2 = Database("d", storage="sqlite", storage_path=path)
        with pytest.raises(StorageError, match="schema migration is not supported"):
            db2.create_table("t", [Column("x", ColumnType.BOOL)])

    def test_index_mismatch_on_reattach_rejected(self, tmp_path):
        path = tmp_path / "t.sqlite"
        db = Database("d", storage="sqlite", storage_path=path)
        db.create_table("t", _gene_columns()).create_index("by_gid", ["gid"])
        db.close()

        db2 = Database("d", storage="sqlite", storage_path=path)
        table2 = db2.create_table("t", _gene_columns())
        # same name, but now unique: must refuse, not silently no-op
        with pytest.raises(StorageError, match="already\\s+exists"):
            table2.create_index("by_gid", ["gid"], unique=True)
        # an exactly matching redeclaration is adopted
        handle = table2.create_index("by_gid2", ["gid"])
        assert len(handle) == 0

    def test_unopenable_path_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="cannot open SQLite database"):
            Database(
                "d",
                storage="sqlite",
                storage_path=tmp_path / "missing" / "dir" / "d.sqlite",
            )

    def test_partial_persisted_layer_rejected(self, tmp_path):
        from repro.errors import ValidationError

        shape = dict(layers=2, width=6, fan_out=2, rng=7,
                     storage="sqlite", storage_path=tmp_path)
        workload = mediated_layers(**shape)
        ents = workload.mediator.entity_plan("E1").table
        ents.delete(next(iter(ents.row_ids())))  # truncate the artefact
        workload.close()
        with pytest.raises(ValidationError, match="truncated"):
            mediated_layers(**shape)

    def test_workload_storage_path_validated_before_mkdir(self, tmp_path):
        from repro.errors import ValidationError

        target = tmp_path / "should-not-exist"
        with pytest.raises(ValidationError, match="storage_path"):
            mediated_layers(layers=2, width=2, fan_out=1,
                            storage="memory", storage_path=target)
        assert not target.exists()

    def test_workload_rerun_adopts_persisted_layers(self, tmp_path):
        shape = dict(layers=2, width=6, fan_out=2, rng=7, seeds=2,
                     storage="sqlite", storage_path=tmp_path)
        first = mediated_layers(**shape)
        with first.open_session() as session:
            before = session.execute(first.spec(method="in_edge"))
        first.close()

        again = mediated_layers(**shape)  # same dir: adopt, don't regenerate
        assert again.total_records == first.total_records
        assert again.total_links == first.total_links
        with again.open_session() as session:
            after = session.execute(again.spec(method="in_edge"))
        assert after.scores == before.scores
        again.close()

    def test_tables_share_one_store(self, tmp_path):
        path = tmp_path / "db.sqlite"
        db = Database("d", storage="sqlite", storage_path=path)
        a = db.create_table("a", _gene_columns())
        b = db.create_table("b", _gene_columns())
        a.insert({"gid": "x", "active": True})
        b.insert({"gid": "y", "active": False})
        assert len(a) == 1 and len(b) == 1

    def test_large_batch_probe_chunks(self):
        # more keys than one IN-list chunk holds
        backend = create_backend("sqlite", SQLiteStore())
        table = Table("t", [Column("k", ColumnType.INT)], backend=backend)
        for i in range(50):
            table.insert({"k": i})
        keys = list(range(1000))
        grouped = table.lookup_many(("k",), keys)
        assert set(grouped) == set(range(50))
        assert table.lookup_in(("k",), keys) == set(range(50))

    def test_affinity_coercion_does_not_leak_matches(self):
        # SQLite's column affinity would match '7' against INTEGER 7;
        # the backend must re-check with Python == semantics so probes
        # behave exactly like the in-memory backends
        table = Table(
            "t",
            [Column("k", ColumnType.INT), Column("s", ColumnType.TEXT)],
            backend=create_backend("sqlite", SQLiteStore()),
        )
        table.insert({"k": 7, "s": "7"})
        assert table.lookup(("k",), ("7",)) == []
        assert table.lookup_many(("k",), ["7"]) == {}
        assert table.lookup_in(("k",), ["7"]) == set()
        assert table.lookup_in(("s",), [7]) == set()
        # while genuinely equal cross-type probes still match (1 == 1.0)
        assert len(table.lookup(("k",), (7.0,))) == 1

    def test_none_probe_keys_match_nulls(self):
        table = Table(
            "t",
            _gene_columns(),
            backend=create_backend("sqlite", SQLiteStore()),
        )
        table.insert({"gid": "a", "chrom": None, "active": True})
        table.insert({"gid": "b", "chrom": 7, "active": True})
        grouped = table.lookup_many(("chrom",), [None, 7, 8])
        assert set(grouped.keys()) == {None, 7}
        assert [r["gid"] for r in grouped[None]] == ["a"]
        assert table.lookup_in(("chrom",), [None, 8]) == {None}


class TestColumnarInternals:
    def test_delete_keeps_positions_consistent(self):
        table = Table(
            "t", _gene_columns(), backend=create_backend("columnar")
        )
        ids = [
            table.insert({"gid": f"g{i}", "chrom": i, "active": True})
            for i in range(5)
        ]
        table.delete(ids[1])
        table.delete(ids[3])
        assert [row["gid"] for row in table.rows()] == ["g0", "g2", "g4"]
        # positional bookkeeping survives: get() by id, scans, lookups
        assert table.get(ids[4])["chrom"] == 4
        assert table.lookup(("chrom",), (2,))[0]["gid"] == "g2"
        grouped = table.lookup_many(("gid",), ["g0", "g4", "g1"])
        assert set(grouped) == {"g0", "g4"}

    def test_unindexed_composite_probe(self):
        table = Table(
            "t", _gene_columns(), backend=create_backend("columnar")
        )
        table.insert({"gid": "a", "chrom": 1, "active": True})
        table.insert({"gid": "a", "chrom": 2, "active": True})
        grouped = table.lookup_many(("gid", "chrom"), [("a", 2), ("a", 9)])
        assert set(grouped) == {("a", 2)}
        assert table.lookup_in(("gid", "chrom"), [("a", 1), ("b", 1)]) == {("a", 1)}

    def test_scan_keeps_duplicates_past_the_last_distinct_match(self):
        """Regression: without a unique index the probe scan must run to
        the end of the column. Here every wanted key has matched by
        position 1, but key "a" has a duplicate at position 2 — an
        unconditional early exit would silently drop it."""
        table = Table(
            "t", _gene_columns(), backend=create_backend("columnar")
        )
        table.insert({"gid": "a", "chrom": 1, "active": True})
        table.insert({"gid": "b", "chrom": 2, "active": True})
        table.insert({"gid": "a", "chrom": 3, "active": True})
        grouped = table.lookup_many(("gid",), ["a", "b"])
        assert [row["chrom"] for row in grouped["a"]] == [1, 3]
        assert [row["chrom"] for row in grouped["b"]] == [2]

    def test_unique_subset_index_enables_scan_early_exit(self):
        """A unique index over a *subset* of the probed columns caps
        every probe key at one row, so the composite-probe scan (which
        has no exact-match index to use) may stop once all keys hit."""

        class CountingColumn(list):
            iterated = 0

            def __iter__(self):
                for value in super().__iter__():
                    CountingColumn.iterated += 1
                    yield value

        table = Table(
            "t", _gene_columns(), backend=create_backend("columnar")
        )
        table.create_index("by_gid", ["gid"], unique=True)
        for i in range(50):
            table.insert({"gid": f"g{i}", "chrom": i, "active": True})
        backend = table._backend
        assert backend._unique_probe(("gid", "chrom"))
        backend._data["gid"] = CountingColumn(backend._data["gid"])

        grouped = table.lookup_many(("gid", "chrom"), [("g0", 0), ("g3", 3)])
        assert set(grouped) == {("g0", 0), ("g3", 3)}
        # stopped at position 3 of 50, not a full pass
        assert CountingColumn.iterated == 4


@pytest.mark.parametrize("storage", STORAGE_BACKENDS)
class TestVersionAndEngineInvalidation:
    """Mutating through any backend bumps ``Table.version``, which feeds
    the mediator epoch and invalidates the engine's query cache."""

    def test_version_counts_mutations(self, storage):
        table = Table(
            "t", _gene_columns(), backend=create_backend(storage)
        )
        assert table.version == 0
        rid = table.insert({"gid": "a", "active": True})
        table.insert({"gid": "b", "active": False})
        assert table.version == 2
        table.delete(rid)
        assert table.version == 3

    def test_mutation_invalidates_query_cache(self, storage):
        workload = mediated_layers(
            layers=2, width=6, fan_out=2, rng=3, storage=storage
        )
        with workload.open_session() as session:
            spec = workload.spec(method="in_edge")
            before = session.execute(spec)
            assert session.execute(spec).scores == before.scores
            stats = session.stats_snapshot()
            assert stats.graph_hits == 1

            # grow the answer layer and relink the root to it: the delta
            # epochs move, the cached graph is brought current (repaired
            # from the change sets, or rebuilt cold), and the next
            # execution must see the new record
            plan = session.mediator.entity_plan("E1")
            ents = plan.table
            version_before = ents.version
            ents.insert({"id": "E1:new", "root": False, "w": 0.9})
            assert ents.version == version_before + 1
            links = session.mediator.entity_plan("E0").out[0].table
            links.insert({"src": "E0:0", "dst": "E1:new", "w": 0.8})

            after = session.execute(spec)
            stats = session.stats_snapshot()
            # not served stale: the entry was repaired or re-materialised
            assert stats.graph_misses + stats.graph_repairs >= 2
            assert ("E1", "E1:new") in after.scores
            assert ("E1", "E1:new") not in before.scores


class TestSessionPlumbing:
    def test_engine_config_validates_storage(self):
        with pytest.raises(RankingError, match="unknown storage backend"):
            EngineConfig(storage="parquet")
        with pytest.raises(RankingError, match="storage_path"):
            EngineConfig(storage="memory", storage_path="/tmp/x")

    def test_engine_config_round_trips_storage(self):
        config = EngineConfig(storage="sqlite", storage_path="/tmp/dbs")
        assert EngineConfig.from_dict(config.as_dict()) == config

    def test_session_creates_databases_on_configured_backend(self, tmp_path):
        config = EngineConfig(storage="sqlite", storage_path=str(tmp_path))
        with open_session(config=config) as session:
            db = session.create_database("sources")
            db.create_table("t", _gene_columns()).insert(
                {"gid": "a", "active": True}
            )
        assert (tmp_path / "sources.sqlite").exists()

    @pytest.mark.parametrize("storage", STORAGE_BACKENDS)
    def test_workload_generator_honours_storage(self, storage):
        workload = mediated_layers(layers=2, width=4, fan_out=1, rng=1, storage=storage)
        table = workload.mediator.entity_plan("E0").table
        assert table.storage == storage
