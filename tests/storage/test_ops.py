"""Tests for relational operations."""

import pytest

from repro.errors import StorageError
from repro.storage import Column, ColumnType, Table, equijoin, project, select


@pytest.fixture
def orders() -> Table:
    table = Table(
        "orders",
        columns=[
            Column("oid", ColumnType.INT),
            Column("customer", ColumnType.TEXT),
            Column("total", ColumnType.FLOAT),
        ],
        primary_key=["oid"],
    )
    table.insert({"oid": 1, "customer": "ada", "total": 10.0})
    table.insert({"oid": 2, "customer": "bob", "total": 25.0})
    table.insert({"oid": 3, "customer": "ada", "total": 5.0})
    return table


@pytest.fixture
def customers() -> Table:
    table = Table(
        "customers",
        columns=[
            Column("customer", ColumnType.TEXT),
            Column("city", ColumnType.TEXT),
        ],
        primary_key=["customer"],
    )
    table.insert({"customer": "ada", "city": "Seattle"})
    table.insert({"customer": "bob", "city": "Boston"})
    return table


class TestSelectProject:
    def test_select(self, orders):
        big = select(orders.rows(), lambda row: row["total"] > 8)
        assert {row["oid"] for row in big} == {1, 2}

    def test_project(self, orders):
        slim = project(orders.rows(), ["oid"])
        assert slim == [{"oid": 1}, {"oid": 2}, {"oid": 3}]

    def test_project_unknown_column(self, orders):
        with pytest.raises(StorageError):
            project(orders.rows(), ["ghost"])


class TestEquijoin:
    def test_join_matches(self, orders, customers):
        joined = equijoin(orders.rows(), customers, "customer", "customer", prefix="c_")
        assert len(joined) == 3
        ada_rows = [row for row in joined if row["customer"] == "ada"]
        assert all(row["c_city"] == "Seattle" for row in ada_rows)

    def test_join_drops_unmatched(self, orders, customers):
        orders.insert({"oid": 4, "customer": "zoe", "total": 1.0})
        joined = equijoin(orders.rows(), customers, "customer", "customer", prefix="c_")
        assert {row["oid"] for row in joined} == {1, 2, 3}

    def test_collision_without_prefix_raises(self, orders, customers):
        with pytest.raises(StorageError):
            equijoin(orders.rows(), customers, "customer", "customer")

    def test_missing_left_column_raises(self, orders, customers):
        with pytest.raises(StorageError):
            equijoin(orders.rows(), customers, "ghost", "customer")

    def test_join_uses_right_index(self, orders, customers):
        # the pk index on customers.customer makes this a hash join;
        # behaviourally we just verify correct results on composite input
        subset = select(orders.rows(), lambda row: row["total"] < 20)
        joined = equijoin(subset, customers, "customer", "customer", prefix="r_")
        assert {row["oid"] for row in joined} == {1, 3}
