"""ShardTableView: filtered retrieval and version delegation.

The partition view is the storage face of sharding-by-view (one
mediator derived into N). Its contract: every retrieval path filters to
the shard's owned rows, and mutations — which go through the *base*
table — bump the delegated ``version`` counter, so every shard's
mediator epoch (and therefore the engine query caches above) observes
shared-storage changes.
"""

import pytest

from repro.engine import HashPartitioner
from repro.integration.partition import ShardTableView
from repro.storage import Column, ColumnType, Database
from repro.storage.backends import STORAGE_BACKENDS


@pytest.fixture(params=STORAGE_BACKENDS)
def base_db(request):
    db = Database("views", storage=request.param)
    db.create_table(
        "ents",
        columns=[
            Column("id", ColumnType.TEXT),
            Column("root", ColumnType.BOOL),
        ],
        primary_key=["id"],
    )
    for i in range(20):
        db.insert("ents", {"id": f"E:{i}", "root": i < 2})
    yield db
    db.close()


@pytest.fixture
def base_table(base_db):
    return base_db.table("ents")


def _views(table, shards=2):
    partitioner = HashPartitioner(shards)
    return partitioner, [
        ShardTableView(table, "E", "id", shard, partitioner)
        for shard in range(shards)
    ]


class TestFiltering:
    def test_views_partition_the_rows(self, base_table):
        _, views = _views(base_table)
        ids = [sorted(row["id"] for row in view.rows()) for view in views]
        assert sorted(ids[0] + ids[1]) == sorted(
            row["id"] for row in base_table.rows()
        )
        assert not set(ids[0]) & set(ids[1])
        assert len(views[0]) + len(views[1]) == len(base_table)

    def test_lookup_respects_ownership(self, base_table):
        partitioner, views = _views(base_table)
        for i in range(20):
            key = f"E:{i}"
            owner = partitioner.owner("E", key)
            for shard, view in enumerate(views):
                matches = view.lookup(("id",), (key,))
                assert bool(matches) == (shard == owner)

    def test_lookup_many_and_lookup_in_filter(self, base_table):
        partitioner, views = _views(base_table)
        keys = [f"E:{i}" for i in range(20)]
        for shard, view in enumerate(views):
            grouped = view.lookup_many(("id",), keys)
            present = view.lookup_in(("id",), keys)
            owned = {k for k in keys if partitioner.owner("E", k) == shard}
            assert set(grouped) == owned == present

    def test_non_key_lookup_still_filters_by_ownership(self, base_table):
        partitioner, views = _views(base_table)
        roots = [
            row["id"] for view in views for row in view.lookup(("root",), (True,))
        ]
        assert sorted(roots) == ["E:0", "E:1"]

    def test_schema_surface_delegates(self, base_table):
        _, views = _views(base_table)
        view = views[0]
        assert view.column_names == base_table.column_names
        assert view.name == base_table.name
        assert view.primary_key == base_table.primary_key
        assert view.base is base_table


class TestVersionDelegation:
    def test_base_mutation_bumps_every_view_version(self, base_table):
        _, views = _views(base_table)
        before = [view.version for view in views]
        base_table.insert({"id": "E:new", "root": False})
        assert [view.version for view in views] == [v + 1 for v in before]

    def test_view_version_feeds_mediator_epoch(self, base_db, base_table):
        """A partition-view mediator's epoch must move when the shared
        base table changes — that is what keeps every shard's query
        cache honest under shared-storage sharding."""
        from repro.integration.mediator import Mediator
        from repro.integration.partition import partition_mediator
        from repro.integration.sources import DataSource, EntityBinding

        mediator = Mediator()
        mediator.register(
            DataSource(
                name="S",
                database=base_db,
                entities=(EntityBinding("E", "ents", "id"),),
            )
        )
        shard_mediators = partition_mediator(mediator, 2, HashPartitioner(2))
        epochs = [m.epoch for m in shard_mediators]
        base_table.insert({"id": "E:epoch", "root": False})
        assert [m.epoch for m in shard_mediators] == [e + 1 for e in epochs]
