"""Tests for the set-at-a-time bulk-insert fast path.

``Database.insert_many`` batches the foreign-key existence probes and
hands the physical writes to the backend's bulk path (one
``executemany`` transaction under SQLite). The observable contract:
identical rows/ids/versions to a loop of ``insert``, plus whole-batch
atomicity on violations.
"""

import pytest

from repro.errors import IntegrityError, StorageError
from repro.storage import Column, ColumnType, Database, ForeignKey
from repro.storage.backends import STORAGE_BACKENDS


@pytest.fixture(params=STORAGE_BACKENDS)
def db(request) -> Database:
    database = Database("bulk", storage=request.param)
    database.create_table(
        "genes",
        columns=[Column("gid", ColumnType.TEXT)],
        primary_key=["gid"],
    )
    database.create_table(
        "annotations",
        columns=[
            Column("gid", ColumnType.TEXT),
            Column("term", ColumnType.TEXT),
        ],
        foreign_keys=[ForeignKey(("gid",), "genes", ("gid",))],
    )
    yield database
    database.close()


class TestTableInsertMany:
    def test_matches_loop_of_inserts(self, db):
        table = db.table("genes")
        ids = table.insert_many([{"gid": f"G{i}"} for i in range(5)])
        assert ids == list(range(5))
        assert [row["gid"] for row in table.rows()] == [f"G{i}" for i in range(5)]
        assert list(table.row_ids()) == ids

    def test_version_bumps_by_batch_size(self, db):
        table = db.table("genes")
        before = table.version
        table.insert_many([{"gid": f"G{i}"} for i in range(4)])
        assert table.version == before + 4

    def test_unknown_column_rejected_before_any_write(self, db):
        table = db.table("genes")
        with pytest.raises(StorageError):
            table.insert_many([{"gid": "G1"}, {"gid": "G2", "nope": 1}])
        assert len(table) == 0

    def test_unique_violation_rolls_back_whole_batch(self, db):
        table = db.table("genes")
        table.insert({"gid": "G0"})
        version = table.version
        with pytest.raises(IntegrityError):
            table.insert_many([{"gid": "G1"}, {"gid": "G0"}, {"gid": "G2"}])
        assert len(table) == 1
        assert table.version == version
        # ids keep flowing contiguously after the rollback
        assert table.insert({"gid": "G3"}) == 1

    def test_duplicate_within_batch_rolls_back(self, db):
        table = db.table("genes")
        with pytest.raises(IntegrityError):
            table.insert_many([{"gid": "A"}, {"gid": "B"}, {"gid": "A"}])
        assert len(table) == 0
        assert list(table.rows()) == []

    def test_empty_batch_is_a_no_op(self, db):
        table = db.table("genes")
        version = table.version
        assert table.insert_many([]) == []
        assert table.version == version


class TestDatabaseInsertMany:
    def test_batched_fk_check_passes(self, db):
        db.insert_many("genes", [{"gid": f"G{i}"} for i in range(3)])
        count = db.insert_many(
            "annotations",
            [{"gid": f"G{i % 3}", "term": f"GO:{i}"} for i in range(9)],
        )
        assert count == 9
        assert len(db.table("annotations")) == 9

    def test_missing_fk_rejected_without_partial_insert(self, db):
        db.insert("genes", {"gid": "G1"})
        with pytest.raises(IntegrityError):
            db.insert_many(
                "annotations",
                [
                    {"gid": "G1", "term": "GO:1"},
                    {"gid": "GX", "term": "GO:2"},
                ],
            )
        # the batch FK probe fires before any write: nothing landed
        assert len(db.table("annotations")) == 0

    def test_null_fk_components_skip_the_check(self, db):
        db.create_table(
            "optional",
            columns=[Column("gid", ColumnType.TEXT, nullable=True)],
            foreign_keys=[ForeignKey(("gid",), "genes", ("gid",))],
        )
        assert db.insert_many("optional", [{"gid": None}, {"gid": None}]) == 2

    def test_composite_fk_batch_check(self, db):
        db.create_table(
            "pairs",
            columns=[
                Column("a", ColumnType.TEXT),
                Column("b", ColumnType.TEXT),
            ],
            primary_key=["a", "b"],
        )
        db.insert("pairs", {"a": "x", "b": "y"})
        db.create_table(
            "uses",
            columns=[
                Column("a", ColumnType.TEXT),
                Column("b", ColumnType.TEXT),
            ],
            foreign_keys=[ForeignKey(("a", "b"), "pairs", ("a", "b"))],
        )
        assert db.insert_many("uses", [{"a": "x", "b": "y"}] * 3) == 3
        with pytest.raises(IntegrityError):
            db.insert_many("uses", [{"a": "x", "b": "z"}])

    def test_empty_iterable(self, db):
        assert db.insert_many("genes", []) == 0


def test_sqlite_bulk_survives_reattach(tmp_path):
    path = tmp_path / "bulk.sqlite"
    db = Database("bulk", storage="sqlite", storage_path=path)
    db.create_table(
        "genes", columns=[Column("gid", ColumnType.TEXT)], primary_key=["gid"]
    )
    db.insert_many("genes", [{"gid": f"G{i}"} for i in range(10)])
    db.close()

    again = Database("bulk", storage="sqlite", storage_path=path)
    table = again.create_table(
        "genes", columns=[Column("gid", ColumnType.TEXT)], primary_key=["gid"]
    )
    assert len(table) == 10
    assert [row["gid"] for row in table.rows()] == [f"G{i}" for i in range(10)]
    again.close()
