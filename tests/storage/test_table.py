"""Tests for tables: constraints, indexes, retrieval.

The whole suite runs once per storage backend — the Table facade must
behave identically over dict, SQLite and columnar storage.
"""

import pytest

from repro.errors import IntegrityError, StorageError
from repro.storage import STORAGE_BACKENDS, Column, ColumnType, Table, create_backend


@pytest.fixture(params=STORAGE_BACKENDS)
def people(request) -> Table:
    table = Table(
        "people",
        columns=[
            Column("pid", ColumnType.INT),
            Column("name", ColumnType.TEXT),
            Column("age", ColumnType.INT, nullable=True),
        ],
        primary_key=["pid"],
        backend=create_backend(request.param),
    )
    table.insert({"pid": 1, "name": "ada", "age": 36})
    table.insert({"pid": 2, "name": "bob"})
    return table


class TestTableSchema:
    def test_duplicate_column_names_rejected(self):
        with pytest.raises(StorageError):
            Table("t", [Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_needs_columns(self):
        with pytest.raises(StorageError):
            Table("t", [])

    def test_primary_key_must_reference_known_columns(self):
        with pytest.raises(StorageError):
            Table("t", [Column("a", ColumnType.INT)], primary_key=["b"])


class TestInsert:
    def test_insert_returns_increasing_row_ids(self, people):
        rid = people.insert({"pid": 3, "name": "cia"})
        assert rid == 2

    def test_unknown_column_rejected(self, people):
        with pytest.raises(StorageError):
            people.insert({"pid": 3, "name": "x", "height": 180})

    def test_missing_nullable_defaults_to_none(self, people):
        assert people.pk_lookup(2)["age"] is None

    def test_missing_non_nullable_rejected(self, people):
        with pytest.raises(IntegrityError):
            people.insert({"pid": 3})

    def test_primary_key_uniqueness(self, people):
        with pytest.raises(IntegrityError):
            people.insert({"pid": 1, "name": "dup"})

    def test_failed_insert_leaves_table_unchanged(self, people):
        before = len(people)
        with pytest.raises(IntegrityError):
            people.insert({"pid": 1, "name": "dup"})
        assert len(people) == before
        # and the non-pk indexes were rolled back: a subsequent valid
        # insert with the same name must not see ghosts
        people.create_index("by_name", ["name"])
        assert len(people.lookup(("name",), ("dup",))) == 0

    def test_type_violation_rejected(self, people):
        with pytest.raises(IntegrityError):
            people.insert({"pid": "three", "name": "x"})


class TestRetrieve:
    def test_pk_lookup(self, people):
        assert people.pk_lookup(1)["name"] == "ada"

    def test_pk_lookup_missing_is_none(self, people):
        assert people.pk_lookup(99) is None

    def test_lookup_without_index_scans(self, people):
        rows = people.lookup(("name",), ("bob",))
        assert [row["pid"] for row in rows] == [2]

    def test_lookup_with_index(self, people):
        people.create_index("by_name", ["name"])
        rows = people.lookup(("name",), ("ada",))
        assert [row["pid"] for row in rows] == [1]

    def test_index_backfills_existing_rows(self, people):
        index = people.create_index("by_age", ["age"])
        assert len(index) == 2

    def test_scan_with_predicate(self, people):
        rows = people.scan(lambda row: row["age"] is not None)
        assert len(rows) == 1

    def test_rows_are_read_only(self, people):
        row = people.pk_lookup(1)
        with pytest.raises(TypeError):
            row["name"] = "mutated"

    def test_rows_iterates_in_insertion_order(self, people):
        assert [row["pid"] for row in people.rows()] == [1, 2]


class TestBatchedRetrieve:
    def test_lookup_many_without_index_single_scan_groups(self, people):
        grouped = people.lookup_many(("name",), [("ada",), ("bob",), ("nope",)])
        assert set(grouped) == {"ada", "bob"}
        assert [row["pid"] for row in grouped["ada"]] == [1]
        assert [row["pid"] for row in grouped["bob"]] == [2]

    def test_lookup_many_with_index(self, people):
        people.create_index("by_name", ["name"])
        grouped = people.lookup_many(("name",), [("ada",), ("nope",)])
        assert set(grouped) == {"ada"}
        assert grouped["ada"][0]["pid"] == 1

    def test_lookup_many_accepts_bare_single_column_keys(self, people):
        assert set(people.lookup_many(("name",), ["ada", "bob"])) == {"ada", "bob"}

    def test_lookup_many_agrees_with_lookup(self, people):
        people.insert({"pid": 3, "name": "ada", "age": 9})
        for indexed in (False, True):
            if indexed:
                people.create_index("by_name", ["name"])
            grouped = people.lookup_many(("name",), [("ada",)])
            assert grouped["ada"] == people.lookup(("name",), ("ada",))

    def test_lookup_many_composite_keys(self, people):
        grouped = people.lookup_many(("name", "age"), [("ada", 36), ("bob", 1)])
        assert set(grouped) == {("ada", 36)}

    def test_lookup_many_length_mismatch_rejected(self, people):
        with pytest.raises(StorageError):
            people.lookup_many(("name",), [("ada", "extra")])

    def test_lookup_many_composite_bare_value_rejected(self, people):
        with pytest.raises(StorageError):
            people.lookup_many(("name", "age"), [5])

    def test_lookup_many_unknown_column_rejected(self, people):
        with pytest.raises(StorageError):
            people.lookup_many(("ghost",), [("x",)])

    def test_lookup_many_rows_are_read_only(self, people):
        grouped = people.lookup_many(("name",), ["ada"])
        with pytest.raises(TypeError):
            grouped["ada"][0]["name"] = "mutated"

    def test_lookup_in_membership(self, people):
        assert people.lookup_in(("name",), ["ada", "nope"]) == {"ada"}
        people.create_index("by_name", ["name"])
        assert people.lookup_in(("name",), ["ada", "bob", "nope"]) == {"ada", "bob"}

    def test_lookup_in_pk_index(self, people):
        assert people.lookup_in(("pid",), [1, 2, 99]) == {1, 2}


class TestVersion:
    def test_insert_and_delete_bump_version(self, people):
        v0 = people.version
        people.insert({"pid": 3, "name": "cia"})
        assert people.version == v0 + 1
        (rid,) = [r for r in people.row_ids() if people.get(r)["pid"] == 3]
        people.delete(rid)
        assert people.version == v0 + 2

    def test_failed_insert_does_not_bump_version(self, people):
        v0 = people.version
        with pytest.raises(IntegrityError):
            people.insert({"pid": 1, "name": "dup"})
        assert people.version == v0


class TestDelete:
    def test_delete_removes_from_indexes(self, people):
        people.create_index("by_name", ["name"])
        (rid,) = [
            r for r in people.row_ids() if people.get(r)["name"] == "ada"
        ]
        people.delete(rid)
        assert people.lookup(("name",), ("ada",)) == []
        assert len(people) == 1

    def test_delete_missing_raises(self, people):
        with pytest.raises(StorageError):
            people.delete(999)

    def test_pk_reusable_after_delete(self, people):
        (rid,) = [r for r in people.row_ids() if people.get(r)["pid"] == 1]
        people.delete(rid)
        people.insert({"pid": 1, "name": "ada2"})
        assert people.pk_lookup(1)["name"] == "ada2"
