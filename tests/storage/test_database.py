"""Tests for the database layer: namespaces and foreign keys."""

import pytest

from repro.errors import IntegrityError, StorageError
from repro.storage import Column, ColumnType, Database, ForeignKey


@pytest.fixture
def db() -> Database:
    database = Database("test")
    database.create_table(
        "genes",
        columns=[Column("gid", ColumnType.TEXT)],
        primary_key=["gid"],
    )
    database.create_table(
        "annotations",
        columns=[
            Column("gid", ColumnType.TEXT),
            Column("term", ColumnType.TEXT),
        ],
        foreign_keys=[ForeignKey(("gid",), "genes", ("gid",))],
    )
    return database


class TestTables:
    def test_duplicate_table_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_table("genes", columns=[Column("x", ColumnType.INT)])

    def test_unknown_table_raises(self, db):
        with pytest.raises(StorageError):
            db.table("nope")

    def test_contains(self, db):
        assert "genes" in db
        assert "nope" not in db

    def test_fk_to_unknown_table_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_table(
                "bad",
                columns=[Column("x", ColumnType.TEXT)],
                foreign_keys=[ForeignKey(("x",), "missing", ("y",))],
            )

    def test_fk_to_unknown_column_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_table(
                "bad",
                columns=[Column("x", ColumnType.TEXT)],
                foreign_keys=[ForeignKey(("x",), "genes", ("nope",))],
            )

    def test_fk_arity_mismatch_rejected(self):
        with pytest.raises(StorageError):
            ForeignKey(("a", "b"), "t", ("c",))


class TestForeignKeys:
    def test_valid_reference_accepted(self, db):
        db.insert("genes", {"gid": "G1"})
        db.insert("annotations", {"gid": "G1", "term": "GO:1"})
        assert len(db.table("annotations")) == 1

    def test_dangling_reference_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.insert("annotations", {"gid": "GX", "term": "GO:1"})

    def test_null_fk_component_skips_check(self, db):
        db.create_table(
            "optional_links",
            columns=[Column("gid", ColumnType.TEXT, nullable=True)],
            foreign_keys=[ForeignKey(("gid",), "genes", ("gid",))],
        )
        db.insert("optional_links", {"gid": None})
        assert len(db.table("optional_links")) == 1

    def test_insert_many_counts(self, db):
        db.insert("genes", {"gid": "G1"})
        count = db.insert_many(
            "annotations",
            [{"gid": "G1", "term": f"GO:{i}"} for i in range(3)],
        )
        assert count == 3
