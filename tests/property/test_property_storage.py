"""Property-based tests of the storage engine and ranking invariance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.average_precision import expected_average_precision
from repro.storage import Column, ColumnType, Table, dump_table, load_table_rows

text_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r\n"),
    max_size=20,
)

row_strategy = st.fixed_dictionaries(
    {
        "key": st.integers(min_value=0, max_value=10_000),
        "label": text_values,
        "weight": st.floats(allow_nan=False, allow_infinity=False, width=32),
        "flag": st.booleans(),
        "note": st.one_of(st.none(), text_values),
    }
)


def _make_table() -> Table:
    return Table(
        "props",
        columns=[
            Column("key", ColumnType.INT),
            Column("label", ColumnType.TEXT),
            Column("weight", ColumnType.FLOAT),
            Column("flag", ColumnType.BOOL),
            Column("note", ColumnType.TEXT, nullable=True),
        ],
    )


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(row_strategy, max_size=15))
def test_insert_then_scan_returns_everything(rows):
    table = _make_table()
    for row in rows:
        table.insert(row)
    assert len(table) == len(rows)
    stored = list(table.rows())
    for original, kept in zip(rows, stored):
        for column in original:
            if isinstance(original[column], float):
                assert kept[column] == pytest.approx(original[column], nan_ok=False)
            else:
                assert kept[column] == original[column]


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(row_strategy, max_size=15))
def test_indexed_lookup_agrees_with_scan(rows):
    table = _make_table()
    table.create_index("by_key", ["key"])
    for row in rows:
        table.insert(row)
    for row in rows:
        via_index = table.lookup(("key",), (row["key"],))
        via_scan = table.scan(lambda r, k=row["key"]: r["key"] == k)
        assert len(via_index) == len(via_scan)


@settings(max_examples=30, deadline=None)
@given(rows=st.lists(row_strategy, max_size=10))
def test_csv_round_trip(rows, tmp_path_factory):
    table = _make_table()
    for row in rows:
        table.insert(row)
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    dump_table(table, path)
    clone = _make_table()
    load_table_rows(clone, path)
    assert len(clone) == len(table)
    for original, loaded in zip(table.rows(), clone.rows()):
        assert original["key"] == loaded["key"]
        assert original["label"] == loaded["label"]
        assert original["flag"] == loaded["flag"]
        assert original["note"] == loaded["note"]
        assert loaded["weight"] == pytest.approx(original["weight"], rel=1e-6)


@settings(max_examples=80, deadline=None)
@given(
    scores=st.dictionaries(
        st.integers(min_value=0, max_value=20),
        # quantised scores: a float affine transform must not merge or
        # split tie groups, which ulp-adjacent floats could
        st.integers(min_value=0, max_value=8).map(lambda v: v / 8.0),
        min_size=2,
        max_size=10,
    ),
    data=st.data(),
)
def test_expected_ap_invariant_under_monotone_transform(scores, data):
    """AP depends only on the induced order, never on score magnitudes."""
    items = list(scores)
    k = data.draw(st.integers(min_value=1, max_value=len(items)))
    relevant = set(items[:k])
    transformed = {item: 3.0 * value + 1.0 for item, value in scores.items()}
    assert expected_average_precision(scores, relevant) == pytest.approx(
        expected_average_precision(transformed, relevant)
    )
