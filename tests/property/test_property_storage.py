"""Property-based tests of the storage engine and ranking invariance."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.average_precision import expected_average_precision
from repro.storage import (
    Column,
    ColumnType,
    Table,
    create_backend,
    dump_table,
    load_table_rows,
)

text_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r\n"),
    max_size=20,
)

row_strategy = st.fixed_dictionaries(
    {
        "key": st.integers(min_value=0, max_value=10_000),
        "label": text_values,
        "weight": st.floats(allow_nan=False, allow_infinity=False, width=32),
        "flag": st.booleans(),
        "note": st.one_of(st.none(), text_values),
    }
)


def _make_table() -> Table:
    return Table(
        "props",
        columns=[
            Column("key", ColumnType.INT),
            Column("label", ColumnType.TEXT),
            Column("weight", ColumnType.FLOAT),
            Column("flag", ColumnType.BOOL),
            Column("note", ColumnType.TEXT, nullable=True),
        ],
    )


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(row_strategy, max_size=15))
def test_insert_then_scan_returns_everything(rows):
    table = _make_table()
    for row in rows:
        table.insert(row)
    assert len(table) == len(rows)
    stored = list(table.rows())
    for original, kept in zip(rows, stored):
        for column in original:
            if isinstance(original[column], float):
                assert kept[column] == pytest.approx(original[column], nan_ok=False)
            else:
                assert kept[column] == original[column]


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(row_strategy, max_size=15))
def test_indexed_lookup_agrees_with_scan(rows):
    table = _make_table()
    table.create_index("by_key", ["key"])
    for row in rows:
        table.insert(row)
    for row in rows:
        via_index = table.lookup(("key",), (row["key"],))
        via_scan = table.scan(lambda r, k=row["key"]: r["key"] == k)
        assert len(via_index) == len(via_scan)


@settings(max_examples=30, deadline=None)
@given(rows=st.lists(row_strategy, max_size=10))
def test_csv_round_trip(rows, tmp_path_factory):
    table = _make_table()
    for row in rows:
        table.insert(row)
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    dump_table(table, path)
    clone = _make_table()
    load_table_rows(clone, path)
    assert len(clone) == len(table)
    for original, loaded in zip(table.rows(), clone.rows()):
        assert original["key"] == loaded["key"]
        assert original["label"] == loaded["label"]
        assert original["flag"] == loaded["flag"]
        assert original["note"] == loaded["note"]
        assert loaded["weight"] == pytest.approx(original["weight"], rel=1e-6)


PROBES = [
    ("key",), ("label",), ("weight",), ("flag",), ("note",),
    ("key", "flag"), ("label", "note"), ("key", "label", "flag"),
]

#: cross-type probe keys: ``1 == 1.0 == True`` under Python hashing, and
#: the dict path groups by exactly that equivalence — the array path has
#: to reproduce it, including graceful misses on type-mismatched keys
_scalar_keys = st.sampled_from([0, 1, 1.0, 0.5, True, False, None, "x", ""])


def _bits(value):
    """Floats compared by bit pattern, everything else by value."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(row_strategy, max_size=15), data=st.data())
def test_probe_positions_and_gather_match_the_dict_path(rows, data):
    """The vectorized columnar surface (``probe_positions`` + ``gather``)
    must reproduce ``lookup_many`` on the dict-backed reference table
    exactly: same groups, same row order inside each group, and floats
    bit for bit — it feeds the graph builders' fast path, where any
    divergence would change ranking probabilities."""
    reference = _make_table()
    vectorized = Table(
        "props",
        columns=[
            Column("key", ColumnType.INT),
            Column("label", ColumnType.TEXT),
            Column("weight", ColumnType.FLOAT),
            Column("flag", ColumnType.BOOL),
            Column("note", ColumnType.TEXT, nullable=True),
        ],
        backend=create_backend("vectorized"),
    )
    for row in rows:
        reference.insert(row)
        vectorized.insert(row)

    columns = data.draw(st.sampled_from(PROBES))
    present = [tuple(row[c] for c in columns) for row in rows]
    key_strategy = (
        st.one_of(_scalar_keys, st.sampled_from([p[0] for p in present]))
        if len(columns) == 1 and present
        else _scalar_keys
        if len(columns) == 1
        else st.one_of(st.tuples(*[_scalar_keys] * len(columns)),
                       st.sampled_from(present))
        if present
        else st.tuples(*[_scalar_keys] * len(columns))
    )
    keys = data.draw(st.lists(key_strategy, min_size=1, max_size=8))

    expected = reference.lookup_many(columns, keys)
    groups = vectorized.probe_positions(columns, keys)
    assert set(groups) == set(expected)

    names = ("key", "label", "weight", "flag", "note")
    for key, expected_rows in expected.items():
        arrays = vectorized.gather(names, groups[key])
        rebuilt = [
            dict(zip(names, values))
            for values in zip(*(column.tolist() for column in arrays))
        ]
        assert [
            {c: _bits(v) for c, v in row.items()} for row in rebuilt
        ] == [
            {c: _bits(v) for c, v in row.items()} for row in expected_rows
        ]


@settings(max_examples=80, deadline=None)
@given(
    scores=st.dictionaries(
        st.integers(min_value=0, max_value=20),
        # quantised scores: a float affine transform must not merge or
        # split tie groups, which ulp-adjacent floats could
        st.integers(min_value=0, max_value=8).map(lambda v: v / 8.0),
        min_size=2,
        max_size=10,
    ),
    data=st.data(),
)
def test_expected_ap_invariant_under_monotone_transform(scores, data):
    """AP depends only on the induced order, never on score magnitudes."""
    items = list(scores)
    k = data.draw(st.integers(min_value=1, max_value=len(items)))
    relevant = set(items[:k])
    transformed = {item: 3.0 * value + 1.0 for item, value in scores.items()}
    assert expected_average_precision(scores, relevant) == pytest.approx(
        expected_average_precision(transformed, relevant)
    )
