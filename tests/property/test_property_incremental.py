"""Property test: incremental repair is bit-identical to a cold rebuild.

Hypothesis draws a mediated workload, a storage backend and a sequence
of source mutations — batched weight refreshes, link appends, direct
row updates and deletes (bounded deltas the engine must *repair*), plus
confidence tuning and change-log overflow (structural signals that must
re-materialise cold). After every mutation the warm engine's answer is
compared against a from-scratch ``query.execute``: same nodes, same
probabilities, same edges, same :class:`BuildStats`, byte-identical
compiled CSR arrays and fingerprint, identical propagation scores —
and identical error messages when the mutation empties the answer set.

The stats counters are checked too: a bounded delta may not grow
``graph_misses`` (it must be served by a hit or a repair), while tuning
and overflow must.

A second property replays the same mutation kinds through the sharded
scatter/gather paths (pre-partitioned databases for N >= 2, partition
views for N == 1) and requires the warm sharded sessions to stay
observationally identical to a cold unsharded reference.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.core.compile import compile_graph
from repro.core.ranker import rank
from repro.engine import RankingEngine, ShardRouter
from repro.errors import QueryError
from repro.storage import STORAGE_BACKENDS
from repro.workloads import mediated_layers

#: CSR arrays whose bytes must survive a patch unchanged vs cold compile
_CSR_ARRAYS = ("p", "out_offsets", "out_targets", "out_q", "out_mult", "targets")

workload_strategy = st.fixed_dictionaries(
    {
        "layers": st.integers(min_value=2, max_value=3),
        "width": st.integers(min_value=2, max_value=10),
        "fan_out": st.integers(min_value=1, max_value=3),
        "seeds": st.integers(min_value=1, max_value=2),
        "dangling_rate": st.sampled_from([0.0, 0.3]),
        "index_links": st.booleans(),
        "rng": st.integers(min_value=0, max_value=2**32 - 1),
    }
)

#: (kind, *params). ``weights``/``links``/``update_link``/``delete_link``
#: are bounded deltas; ``tune`` and ``overflow`` force a cold rebuild.
#: The sharded property reuses everything but ``tune``: pre-partitioned
#: deployments give each shard mediator its own confidence registry, so
#: tuning is a deployment-level operation there, not a table mutation.
_TABLE_STEPS = (
    st.tuples(st.just("weights"), st.integers(1, 6), st.integers(0, 999)),
    st.tuples(
        st.just("links"), st.integers(0, 3), st.integers(1, 4), st.integers(0, 999)
    ),
    st.tuples(st.just("update_link"), st.integers(0, 999)),
    st.tuples(st.just("delete_link"), st.integers(0, 999)),
    st.tuples(st.just("overflow"), st.integers(0, 999)),
)
step_strategy = st.one_of(
    *_TABLE_STEPS, st.tuples(st.just("tune"), st.integers(1, 9))
)
sharded_step_strategy = st.one_of(*_TABLE_STEPS)

#: mutation kinds whose change sets are bounded (repairable)
BOUNDED = {"weights", "links", "update_link", "delete_link"}


def _apply(workload, step):
    """Apply one drawn mutation step to the workload's live sources."""
    kind = step[0]
    links = workload.mediator.sources[0].database.table("links_rel0")
    if kind == "weights":
        _, count, seed = step
        workload.refresh_entity_weights(count=count, rng=seed)
    elif kind == "links":
        _, layer, count, seed = step
        layer = layer % (len(workload.entity_sets) - 1)
        workload.append_links(layer=layer, count=count, rng=seed)
    elif kind == "update_link":
        row_ids = list(links.row_ids())
        if row_ids:  # drained tables make the step a no-op (a pure hit)
            row_id = row_ids[step[1] % len(row_ids)]
            links.update(row_id, {"w": 0.35 + (step[1] % 50) / 100.0})
    elif kind == "delete_link":
        row_ids = list(links.row_ids())
        if row_ids:
            links.delete(row_ids[step[1] % len(row_ids)])
    elif kind == "tune":
        workload.mediator.confidences.set_entity_confidence(
            workload.entity_sets[-1], step[1] / 10.0
        )
    else:  # overflow: trim the log past the engine's snapshot, then
        # restore the bound so later bounded steps stay repairable
        original = links.change_log.limit
        links.change_log.limit = 2
        try:
            workload.append_links(layer=0, count=3, rng=step[1])
        finally:
            links.change_log.limit = original


def _graph_facts(qg):
    """Everything observable about a materialised query graph."""
    graph = qg.graph
    return {
        "nodes": [(n, graph.p(n), graph.data(n)) for n in graph.nodes()],
        "edges": [
            (e.key, e.source, e.target, graph.q(e.key)) for e in graph.edges()
        ],
        "source": qg.source,
        "targets": qg.targets,
    }


def _outcome(thunk):
    """The thunk's value, or the error it raised as a comparable string."""
    try:
        return thunk()
    except QueryError as error:
        return f"{type(error).__name__}: {error}"


@settings(deadline=None)
@given(
    config=workload_strategy,
    storage=st.sampled_from(STORAGE_BACKENDS),
    steps=st.lists(step_strategy, min_size=1, max_size=4),
)
def test_repaired_engine_matches_cold_rebuild(
    config, storage, steps, tmp_path_factory
):
    config = dict(config)
    config["seeds"] = min(config["seeds"], config["width"])
    storage_path = (
        tmp_path_factory.mktemp("inc-eq") if storage == "sqlite" else None
    )
    workload = mediated_layers(storage=storage, storage_path=storage_path, **config)
    engine = RankingEngine(mediator=workload.mediator)
    try:
        baseline = _outcome(lambda: engine.execute(workload.query))
        cached = not isinstance(baseline, str)
        if cached:
            engine.compile(baseline)  # give the next repair a CSR to patch
        for step in steps:
            _apply(workload, step)
            before = engine.stats_snapshot()
            warm = _outcome(
                lambda: engine.execute_with_stats(workload.query)
            )
            cold = _outcome(
                lambda: workload.query.execute(workload.mediator)
            )
            after = engine.stats_snapshot()
            if isinstance(warm, str) or isinstance(cold, str):
                # an emptied answer set must fail identically on both
                # paths, message and all
                assert warm == cold, f"divergent failure after {step!r}"
                cached = False
                continue
            qg_warm, stats_warm, _ = warm
            qg_cold, stats_cold = cold
            assert _graph_facts(qg_warm) == _graph_facts(qg_cold), (
                f"graph diverged after {step!r}"
            )
            assert stats_warm == stats_cold, f"BuildStats diverged after {step!r}"
            csr_warm = engine.compile(qg_warm)  # patched in place on repair
            csr_cold = compile_graph(qg_cold)
            assert csr_warm.node_ids == csr_cold.node_ids
            for name in _CSR_ARRAYS:
                a, b = getattr(csr_warm, name), getattr(csr_cold, name)
                assert a.dtype == b.dtype and a.tobytes() == b.tobytes(), (
                    f"CSR array {name} diverged after {step!r}"
                )
            assert csr_warm.fingerprint == csr_cold.fingerprint
            assert (
                engine.rank(qg_warm, "propagation").scores
                == rank(qg_cold, "propagation").scores
            )
            if step[0] in BOUNDED and cached:
                assert after.graph_misses == before.graph_misses, (
                    f"bounded step {step!r} fell back to a cold rebuild"
                )
                assert (
                    after.graph_hits + after.graph_repairs
                    == before.graph_hits + before.graph_repairs + 1
                )
            elif step[0] not in BOUNDED:
                assert after.graph_misses == before.graph_misses + 1, (
                    f"structural step {step!r} did not re-materialise cold"
                )
            cached = True
    finally:
        workload.close()


def _observe(results):
    """The client-visible surface of a ResultSet, as plain data."""
    return {
        "entities": [
            (e.node, e.entity_set, e.key, e.label, e.score, e.rank, e.rank_interval)
            for e in results
        ],
        "tie_groups": [[e.node for e in group] for group in results.tie_groups()],
        "json": results.to_json(),
    }


@settings(deadline=None)
@given(
    config=workload_strategy,
    shards=st.sampled_from([1, 2, 3]),
    storage=st.sampled_from(STORAGE_BACKENDS),
    steps=st.lists(sharded_step_strategy, min_size=1, max_size=3),
)
def test_warm_sharded_sessions_track_mutations(
    config, shards, storage, steps, tmp_path_factory
):
    config = dict(config)
    config["seeds"] = min(config["seeds"], config["width"])
    storage_path = (
        tmp_path_factory.mktemp("inc-sharded") if storage == "sqlite" else None
    )
    workload = mediated_layers(
        storage=storage, storage_path=storage_path, shards=shards, **config
    )
    specs = [
        workload.spec(outputs=(workload.entity_sets[-1],), method=method)
        for method in ("propagation", "in_edge")
    ]
    if workload.router is not None:
        warm = workload.open_session(sharded=True)
    else:
        # single-shard deployments scatter/gather over partition views
        # of the full mediator — the other sharded serving mode
        warm = Session(
            mediator=workload.mediator,
            router=ShardRouter.partition(workload.mediator, shards),
        )
    try:
        with warm:
            for spec in specs:  # warm the shard caches before mutating
                _outcome(lambda: warm.execute(spec))
            for step in steps:
                _apply(workload, step)
                for spec in specs:
                    served = _outcome(
                        lambda: _observe(warm.execute(spec))
                    )
                    with workload.open_session(sharded=False) as reference:
                        expected = _outcome(
                            lambda: _observe(reference.execute(spec))
                        )
                    assert served == expected, (
                        f"shards={shards} diverged after {step!r}"
                    )
    finally:
        workload.close()
