"""Property-based tests of graph structure and local semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.biology.sequences import mutate_sequence, random_protein_sequence
from repro.core.diffusion import solve_incoming_diffusion
from repro.core.graph import ProbabilisticEntityGraph
from repro.integration.probability import (
    evalue_to_probability,
    probability_to_evalue,
)
from repro.sensitivity.perturb import inverse_log_odds, log_odds

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
interior = st.floats(min_value=1e-6, max_value=1.0 - 1e-6, allow_nan=False)


@settings(max_examples=150, deadline=None)
@given(
    incoming=st.lists(
        st.tuples(probs, probs), min_size=0, max_size=8
    )
)
def test_diffusion_solve_is_a_fixed_point(incoming):
    rbar = solve_incoming_diffusion(incoming)
    residual = sum(max((r - rbar) * q, 0.0) for r, q in incoming)
    assert residual == pytest.approx(rbar, abs=1e-9)
    assert rbar >= 0.0
    if incoming:
        assert rbar <= max(r for r, _ in incoming) + 1e-12


@settings(max_examples=100, deadline=None)
@given(incoming=st.lists(st.tuples(probs, probs), min_size=1, max_size=6), extra=st.tuples(probs, probs))
def test_diffusion_solve_monotone_in_parents(incoming, extra):
    """Adding a parent can only increase the incoming diffusion."""
    without = solve_incoming_diffusion(incoming)
    with_extra = solve_incoming_diffusion(list(incoming) + [extra])
    assert with_extra >= without - 1e-9


@settings(max_examples=100, deadline=None)
@given(p=interior)
def test_log_odds_round_trip(p):
    assert inverse_log_odds(log_odds(p)) == pytest.approx(p, rel=1e-9, abs=1e-12)


@settings(max_examples=100, deadline=None)
@given(strength=st.floats(min_value=0.001, max_value=1.0, allow_nan=False))
def test_evalue_round_trip(strength):
    assert evalue_to_probability(
        probability_to_evalue(strength)
    ) == pytest.approx(strength, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    qs=st.lists(probs, min_size=1, max_size=5),
)
def test_merged_parallel_edges_match_inclusion_exclusion(qs):
    graph = ProbabilisticEntityGraph()
    graph.add_node("a")
    graph.add_node("b")
    for q in qs:
        graph.add_edge("a", "b", q=q)
    merged = graph.merged_out("a")["b"]
    survive = 1.0
    for q in qs:
        survive *= 1.0 - q
    assert merged == pytest.approx(1.0 - survive, abs=1e-12)
    assert graph.merged_in("b")["a"] == pytest.approx(merged, abs=1e-12)


@settings(max_examples=50, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=80),
    rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_mutation_preserves_length_and_alphabet(length, rate, seed):
    sequence = random_protein_sequence(length, rng=seed)
    mutated = mutate_sequence(sequence, rate, rng=seed + 1)
    assert len(mutated) == length
    if rate == 0.0:
        assert mutated == sequence
