"""Property tests for the serving layer.

Two halves:

1. **Codec round trips** — hypothesis-driven QuerySpec / node /
   fragment / stats / exception payloads pushed through the JSON-RPC
   codec (including a real ``json.dumps``/``loads`` hop, exactly what
   the wire does) must come back equal — scores bit-identically.
2. **Observational equivalence** — on randomized mediated schemas and
   N ∈ {1, 2, 3} shards, process-mode execution must be
   observationally identical (entities, scores, rank intervals,
   tie groups, pagination, JSON export, provenance) to thread-mode
   *and* to the single-engine reference. Spawning real worker
   processes is expensive, so this half pins a small example budget;
   the cheap codec half runs at the profile's budget.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, QuerySpec, RankingOptions, Session
from repro.engine.ranking import EngineStats
from repro.engine.sharded import ShardRouter
from repro.errors import (
    EmptyAnswerError,
    GraphError,
    QueryError,
    RankingError,
    ReproError,
    ValidationError,
)
from repro.integration.builder import BuildStats
from repro.serving import rpc
from repro.serving.source import WorkerSource
from repro.workloads import mediated_layers

# ------------------------------------------------------------------ #
# 1. codec round trips
# ------------------------------------------------------------------ #

_scalars = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.booleans(),
    st.none(),
)
_nodes = st.recursive(
    _scalars, lambda children: st.tuples(children, children), max_leaves=6
)
_finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


def _wire(value):
    """One real JSON hop, exactly what the socket framing does."""
    return json.loads(json.dumps(value))


@given(node=_nodes)
def test_node_codec_round_trips(node):
    assert rpc.decode_node(_wire(rpc.encode_node(node))) == node


@given(
    fragment=st.lists(
        st.tuples(_nodes, _finite_floats, st.text(max_size=20)), max_size=20
    )
)
def test_fragment_scores_round_trip_bit_identically(fragment):
    fragment = [(node, score, label) for node, score, label in fragment]
    decoded = rpc.decode_fragment_scores(
        _wire(rpc.encode_fragment_scores(fragment))
    )
    assert decoded == fragment  # == on floats: bit-identity, not closeness


# QuerySpec validates eagerly: names must be non-empty after strip()
_names = st.text(min_size=1, max_size=10).filter(lambda s: s.strip())

spec_strategy = st.builds(
    QuerySpec,
    entity_set=_names,
    attribute=_names,
    value=st.one_of(st.booleans(), st.integers(), st.text(max_size=10)),
    outputs=st.lists(_names, min_size=1, max_size=3, unique=True).map(tuple),
    method=st.sampled_from(
        ("in_edge", "path_count", "propagation", "diffusion", "reliability")
    ),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
    options=st.builds(
        RankingOptions,
        strategy=st.sampled_from((None, "closed", "mc", "exact", "auto")),
        trials=st.one_of(st.none(), st.integers(min_value=1, max_value=1000)),
        iterations=st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
    ),
)


@given(spec=spec_strategy)
def test_query_spec_round_trips_through_the_wire(spec):
    assert QuerySpec.from_dict(_wire(spec.to_dict())) == spec


@given(
    counters=st.lists(
        st.integers(min_value=0, max_value=2**40), min_size=8, max_size=8
    )
)
def test_engine_stats_round_trip(counters):
    names = ("compile_hits", "compile_misses", "score_hits", "score_misses",
             "graph_hits", "graph_misses", "graph_repairs", "queries_executed")
    stats = EngineStats(**dict(zip(names, counters)))
    decoded = rpc.decode_engine_stats(_wire(rpc.encode_engine_stats(stats)))
    assert decoded.as_dict() == stats.as_dict()


@given(
    nodes=st.integers(min_value=0, max_value=10**6),
    edges=st.integers(min_value=0, max_value=10**6),
    dangling=st.integers(min_value=0, max_value=10**4),
    visited=st.dictionaries(st.text(min_size=1, max_size=6),
                            st.integers(min_value=0, max_value=10**5),
                            max_size=5),
)
def test_build_stats_round_trip(nodes, edges, dangling, visited):
    stats = BuildStats(nodes=nodes, edges=edges, dangling_links=dangling,
                       visited_entities=visited)
    assert rpc.decode_build_stats(_wire(rpc.encode_build_stats(stats))) == stats


_exception_strategy = st.one_of(
    st.builds(QueryError, st.text(max_size=60)),
    st.builds(RankingError, st.text(max_size=60)),
    st.builds(GraphError, st.text(max_size=60)),
    st.builds(ValidationError, st.text(max_size=60)),
    st.builds(
        EmptyAnswerError,
        st.text(max_size=60),
        kind=st.sampled_from(("no-seeds", "dangling-seeds", "no-answers")),
    ),
)


@given(exc=_exception_strategy)
def test_exception_codec_preserves_type_message_and_kind(exc):
    decoded = rpc.decode_exception(_wire(rpc.encode_exception(exc)))
    assert isinstance(decoded, ReproError)
    assert type(decoded) is type(exc)
    assert str(decoded) == str(exc)
    if isinstance(exc, EmptyAnswerError):
        assert decoded.kind == exc.kind


# ------------------------------------------------------------------ #
# 2. process vs thread vs single-engine observational equivalence
# ------------------------------------------------------------------ #

METHODS = ("in_edge", "path_count", "propagation")

serving_workload_strategy = st.fixed_dictionaries(
    {
        "layers": st.integers(min_value=2, max_value=3),
        "width": st.integers(min_value=1, max_value=10),
        "fan_out": st.integers(min_value=1, max_value=3),
        "seeds": st.integers(min_value=1, max_value=2),
        "dangling_rate": st.sampled_from([0.0, 0.3]),
        "rng": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


def _observe(results):
    """Everything a client can see in a ResultSet, as plain data."""
    page = results.page(2, size=3)
    return {
        "entities": [
            (e.node, e.entity_set, e.key, e.label, e.score, e.rank, e.rank_interval)
            for e in results
        ],
        "tie_groups": [[e.node for e in group] for group in results.tie_groups()],
        "page2": [e.node for e in page],
        "page_totals": (page.total_results, page.total_pages),
        "json": results.to_json(),
        "provenance": [results.explain(e) for e in results.top(3)],
    }


def _observe_all(session, specs):
    observed = []
    with session:
        for spec in specs:
            try:
                observed.append(_observe(session.execute(spec)))
            except QueryError as error:
                observed.append(f"{type(error).__name__}: {error}")
    return observed


def _process_session(workload, shards):
    config = EngineConfig(
        shards=shards, shard_mode="process", rpc_timeout=20.0, worker_restarts=2
    )
    if shards > 1:
        return workload.open_session(config=config)
    # N=1 has no pre-partitioned databases; run the other deployment
    # mode — a single-shard scatter over partition views, with the
    # worker rebuilding the same views from the generation recipe
    return Session(
        mediator=workload.mediator,
        config=config,
        router=ShardRouter.partition(workload.mediator, 1),
        worker_source=WorkerSource(
            factory="repro.workloads.mediated:mediated_layers",
            kwargs=dict(workload.generation),
            shards=1,
        ),
    )


def _thread_session(workload, shards):
    if shards > 1:
        return workload.open_session(config=EngineConfig(shards=shards))
    return Session(
        mediator=workload.mediator,
        router=ShardRouter.partition(workload.mediator, 1),
    )


@settings(max_examples=5, deadline=None)
@given(config=serving_workload_strategy, shards=st.sampled_from([1, 2, 3]))
def test_process_mode_is_observationally_identical(config, shards):
    config = dict(config)
    config["seeds"] = min(config["seeds"], config["width"])

    workload = mediated_layers(shards=shards if shards > 1 else 1, **config)
    specs = [
        workload.spec(outputs=(layer,), method=method)
        for method in METHODS
        for layer in workload.entity_sets[1:]
    ]
    # a second pass exercises the warm worker caches over the wire
    specs = specs + specs

    try:
        reference = _observe_all(workload.open_session(sharded=False), specs)
        threaded = _observe_all(_thread_session(workload, shards), specs)
        process = _observe_all(_process_session(workload, shards), specs)
    finally:
        workload.close()

    assert threaded == reference, f"thread diverged: shards={shards} {config!r}"
    assert process == reference, f"process diverged: shards={shards} {config!r}"
