"""Property-based tests of the reliability machinery on random DAGs.

The central invariants:

* factoring == brute-force enumeration (exactness of the solver);
* graph reductions preserve every target's reliability;
* the closed-form pipeline agrees with the exact solver;
* propagation upper-bounds reliability on every graph (§3.2);
* reliability is monotone in every edge probability.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.closed_form import closed_form_reliability
from repro.core.exact import brute_force_reliability, exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.core.propagation import propagation_scores
from repro.core.reduction import reduce_graph

#: probabilities quantised to avoid float-noise flakiness in comparisons
prob = st.integers(min_value=0, max_value=10).map(lambda v: v / 10.0)


@st.composite
def small_dag(draw) -> QueryGraph:
    """A random DAG on 3..6 nodes with edges oriented forward, at most
    ~12 uncertain components (brute force stays fast)."""
    n = draw(st.integers(min_value=3, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    graph = ProbabilisticEntityGraph()
    graph.add_node(nodes[0])  # the query node is certain
    for node in nodes[1:]:
        graph.add_node(node, p=draw(prob))
    edge_slots: List[Tuple[int, int]] = [
        (i, j) for i in range(n) for j in range(i + 1, n)
    ]
    chosen = draw(
        st.lists(
            st.sampled_from(edge_slots),
            min_size=n - 1,
            max_size=min(len(edge_slots), 9),
            unique=True,
        )
    )
    for i, j in chosen:
        graph.add_edge(nodes[i], nodes[j], q=draw(prob))
    return QueryGraph(graph, nodes[0], [nodes[-1]])


@settings(max_examples=60, deadline=None)
@given(qg=small_dag())
def test_factoring_equals_enumeration(qg):
    target = qg.targets[0]
    factored = exact_reliability(qg, target)[target]
    enumerated = brute_force_reliability(qg, target)[target]
    assert factored == pytest.approx(enumerated, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(qg=small_dag())
def test_reduction_preserves_reliability(qg):
    target = qg.targets[0]
    before = brute_force_reliability(qg, target)[target]
    reduced, _ = reduce_graph(qg)
    after = brute_force_reliability(reduced, target)[target]
    assert after == pytest.approx(before, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(qg=small_dag())
def test_closed_form_equals_exact(qg):
    target = qg.targets[0]
    closed = closed_form_reliability(qg).scores[target]
    exact = exact_reliability(qg, target)[target]
    assert closed == pytest.approx(exact, abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(qg=small_dag())
def test_propagation_upper_bounds_reliability(qg):
    target = qg.targets[0]
    reliability = exact_reliability(qg, target)[target]
    propagation = propagation_scores(qg)[target]
    assert propagation >= reliability - 1e-9


@settings(max_examples=40, deadline=None)
@given(qg=small_dag(), data=st.data())
def test_reliability_monotone_in_edge_probability(qg, data):
    """Raising any edge's presence probability cannot lower r(t)."""
    edges = list(qg.graph.edges())
    edge = data.draw(st.sampled_from(edges))
    target = qg.targets[0]
    before = exact_reliability(qg, target)[target]
    boosted = qg.copy()
    boosted.graph.set_q(edge.key, min(1.0, qg.graph.q(edge.key) + 0.3))
    after = exact_reliability(boosted, target)[target]
    assert after >= before - 1e-9


@settings(max_examples=40, deadline=None)
@given(qg=small_dag())
def test_reliability_is_a_probability(qg):
    target = qg.targets[0]
    value = exact_reliability(qg, target)[target]
    assert -1e-12 <= value <= 1.0 + 1e-12
