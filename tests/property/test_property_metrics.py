"""Property-based tests of the IR metrics."""

from __future__ import annotations

import itertools
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.average_precision import (
    average_precision,
    expected_average_precision,
    random_average_precision,
)
from repro.metrics.ranking import interval_midpoint, rank_intervals


@st.composite
def scored_items(draw):
    """A score mapping with deliberate tie mass, plus a relevant subset."""
    n = draw(st.integers(min_value=2, max_value=9))
    scores = {
        f"i{k}": draw(st.integers(min_value=0, max_value=3)) / 3.0
        for k in range(n)
    }
    k = draw(st.integers(min_value=1, max_value=n))
    relevant = set(list(scores)[:k])
    return scores, relevant


@settings(max_examples=100, deadline=None)
@given(data=scored_items())
def test_expected_ap_is_in_unit_interval(data):
    scores, relevant = data
    value = expected_average_precision(scores, relevant)
    assert 0.0 <= value <= 1.0 + 1e-12


@settings(max_examples=50, deadline=None)
@given(data=scored_items())
def test_expected_ap_matches_permutation_enumeration(data):
    """For small lists, the analytic expectation equals the mean plain
    AP over all orderings consistent with the partial order."""
    scores, relevant = data
    groups = {}
    for item, score in scores.items():
        groups.setdefault(score, []).append(item)
    ordered_groups = [groups[s] for s in sorted(groups, reverse=True)]
    if sum(len(g) > 1 for g in ordered_groups) and any(
        len(g) > 5 for g in ordered_groups
    ):
        return  # keep enumeration tractable
    aps = []
    for permutation in itertools.product(
        *(itertools.permutations(g) for g in ordered_groups)
    ):
        order = [item for group in permutation for item in group]
        aps.append(average_precision([item in relevant for item in order]))
    assert expected_average_precision(scores, relevant) == pytest.approx(
        statistics.mean(aps), abs=1e-9
    )


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
def test_random_ap_bounds(n, data):
    k = data.draw(st.integers(min_value=1, max_value=n))
    value = random_average_precision(k, n)
    assert k / n - 1e-12 <= value <= 1.0 + 1e-12


@settings(max_examples=100, deadline=None)
@given(data=scored_items())
def test_all_tied_expected_ap_equals_random_ap(data):
    scores, relevant = data
    tied = {item: 0.5 for item in scores}
    assert expected_average_precision(tied, relevant) == pytest.approx(
        random_average_precision(len(relevant), len(scores))
    )


@settings(max_examples=100, deadline=None)
@given(data=scored_items())
def test_rank_intervals_are_consistent(data):
    scores, _ = data
    intervals = rank_intervals(scores)
    n = len(scores)
    # midpoints over all items sum to n(n+1)/2 regardless of ties
    total = sum(interval_midpoint(intervals[item]) for item in scores)
    assert total == pytest.approx(n * (n + 1) / 2)
    for item, (lo, hi) in intervals.items():
        assert 1 <= lo <= hi <= n
        # interval width equals the tie-group size
        group = [other for other in scores if scores[other] == scores[item]]
        assert hi - lo + 1 == len(group)


@settings(max_examples=100, deadline=None)
@given(data=scored_items())
def test_promoting_a_relevant_item_never_hurts(data):
    scores, relevant = data
    relevant_items = [item for item in scores if item in relevant]
    item = relevant_items[0]
    before = expected_average_precision(scores, relevant)
    promoted = dict(scores)
    promoted[item] = 2.0  # strictly above everything
    after = expected_average_precision(promoted, relevant)
    assert after >= before - 1e-9
