"""Backend cross-checks: compiled CSR kernels vs reference dict scorers.

Every deterministic ranking method must agree between
``backend="reference"`` and ``backend="compiled"`` to 1e-9 on random
DAGs *and* cyclic graphs, including graphs with parallel edges (the
``merged_in`` semantics). The block-sampled Monte Carlo kernel draws
from a different RNG stream than the scalar samplers, so for
reliability the deterministic strategies are compared exactly and the
sampler is checked against the exact solver statistically.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compile import compile_graph
from repro.core.exact import exact_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.core.ranker import rank
from repro.errors import CycleError, RankingError

#: probabilities quantised to avoid float-noise flakiness in comparisons
prob = st.integers(min_value=0, max_value=10).map(lambda v: v / 10.0)

DETERMINISTIC_METHODS = ("propagation", "diffusion", "in_edge", "random")


@st.composite
def multi_edge_graph(draw, cyclic: bool = False) -> QueryGraph:
    """A random graph on 3..7 nodes with parallel edges; forward edges
    only for DAGs, plus a few back edges when ``cyclic``."""
    n = draw(st.integers(min_value=3, max_value=7))
    nodes = [f"n{i}" for i in range(n)]
    graph = ProbabilisticEntityGraph()
    graph.add_node(nodes[0])  # the query node is certain
    for node in nodes[1:]:
        graph.add_node(node, p=draw(prob))
    forward: List[Tuple[int, int]] = [
        (i, j) for i in range(n) for j in range(i + 1, n)
    ]
    chosen = draw(
        st.lists(
            st.sampled_from(forward),
            min_size=n - 1,
            max_size=min(len(forward), 10),
            unique=True,
        )
    )
    for i, j in chosen:
        graph.add_edge(nodes[i], nodes[j], q=draw(prob))
        if draw(st.booleans()):  # a parallel edge to exercise merging
            graph.add_edge(nodes[i], nodes[j], q=draw(prob))
    if cyclic:
        backward = [(j, i) for i, j in chosen]
        for j, i in draw(
            st.lists(st.sampled_from(backward), min_size=1, max_size=3, unique=True)
        ):
            graph.add_edge(nodes[j], nodes[i], q=draw(prob))
    targets = nodes[max(1, n - 2):]
    return QueryGraph(graph, nodes[0], targets)


def _assert_backends_agree(qg: QueryGraph, method: str, **options) -> None:
    reference = rank(qg, method, **options).scores
    compiled = rank(qg, method, backend="compiled", **options).scores
    assert set(reference) == set(compiled)
    for node in reference:
        assert compiled[node] == pytest.approx(reference[node], abs=1e-9), (
            f"{method} disagrees at {node!r}"
        )


@settings(max_examples=60, deadline=None)
@given(qg=multi_edge_graph())
@pytest.mark.parametrize("method", DETERMINISTIC_METHODS + ("path_count",))
def test_backends_agree_on_dags(method, qg):
    _assert_backends_agree(qg, method)


@settings(max_examples=60, deadline=None)
@given(qg=multi_edge_graph(cyclic=True))
@pytest.mark.parametrize("method", DETERMINISTIC_METHODS)
def test_backends_agree_on_cyclic_graphs(method, qg):
    _assert_backends_agree(qg, method)


@settings(max_examples=30, deadline=None)
@given(qg=multi_edge_graph(cyclic=True))
def test_path_count_raises_on_cycles_in_both_backends(qg):
    with pytest.raises(CycleError):
        rank(qg, "path_count")
    with pytest.raises(CycleError):
        rank(qg, "path_count", backend="compiled")


@settings(max_examples=40, deadline=None)
@given(qg=multi_edge_graph())
def test_reliability_deterministic_strategies_agree(qg):
    for strategy in ("closed", "exact"):
        _assert_backends_agree(qg, "reliability", strategy=strategy)


@settings(max_examples=25, deadline=None)
@given(qg=multi_edge_graph())
def test_all_nodes_flag_agrees(qg):
    for method in ("propagation", "diffusion", "in_edge"):
        _assert_backends_agree(qg, method, all_nodes=True)


@settings(max_examples=25, deadline=None)
@given(qg=multi_edge_graph())
def test_fixed_sweep_counts_agree(qg):
    """Truncated Jacobi iteration (the paper's fixed-sweep algorithms)
    must match sweep-for-sweep, not just at the fixed point."""
    for method in ("propagation", "diffusion"):
        for iterations in (1, 3):
            _assert_backends_agree(qg, method, iterations=iterations)


class TestCompiledMonteCarlo:
    def test_block_sampler_tracks_exact(self, two_target_dag):
        exact = exact_reliability(two_target_dag)
        estimate = rank(
            two_target_dag,
            "reliability",
            backend="compiled",
            strategy="mc",
            trials=40_000,
            rng=11,
        ).scores
        for target, value in exact.items():
            assert estimate[target] == pytest.approx(value, abs=0.02)

    def test_block_sampler_handles_cycles(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("a", p=0.9)
        graph.add_node("t")
        graph.add_edge("s", "a", q=0.8)
        graph.add_edge("a", "s", q=0.8)  # cycle back
        graph.add_edge("a", "t", q=0.5)
        qg = QueryGraph(graph, "s", ["t"])
        estimate = rank(
            qg, "reliability", backend="compiled", strategy="mc",
            reduce=False, trials=40_000, rng=3,
        ).scores
        assert estimate["t"] == pytest.approx(0.8 * 0.9 * 0.5, abs=0.02)

    def test_seeded_runs_reproduce(self, wheatstone):
        a = rank(wheatstone, "reliability", backend="compiled", rng=42).scores
        b = rank(wheatstone, "reliability", backend="compiled", rng=42).scores
        assert a == b


class TestPathCountOverflow:
    def test_huge_counts_use_exact_arithmetic(self):
        """A diamond ladder doubles the path count per layer; 70 layers
        exceed int64, where the compiled DP must fall back to Python
        ints instead of silently wrapping."""
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        previous = "s"
        layers = 70
        for i in range(layers):
            a, b, join = f"a{i}", f"b{i}", f"j{i}"
            for node in (a, b, join):
                graph.add_node(node)
            graph.add_edge(previous, a)
            graph.add_edge(previous, b)
            graph.add_edge(a, join)
            graph.add_edge(b, join)
            previous = join
        qg = QueryGraph(graph, "s", [previous])
        expected = float(2 ** layers)
        reference = rank(qg, "path_count").scores[previous]
        compiled = rank(qg, "path_count", backend="compiled").scores[previous]
        assert reference == expected
        assert compiled == expected  # an int64 wrap would go negative


class TestCompiledGraphStructure:
    def test_parallel_in_edges_merge(self):
        graph = ProbabilisticEntityGraph()
        graph.add_node("s")
        graph.add_node("t")
        graph.add_edge("s", "t", q=0.5)
        graph.add_edge("s", "t", q=0.5)
        cg = compile_graph(QueryGraph(graph, "s", ["t"]))
        t = cg.index["t"]
        lo, hi = cg.in_offsets[t], cg.in_offsets[t + 1]
        assert hi - lo == 1  # merged to one entry
        assert cg.in_q[lo] == pytest.approx(0.75)
        assert cg.out_mult.tolist() == [2]  # PathCount still sees both
        assert cg.raw_in_degree[t] == 2  # InEdge still sees both

    def test_fingerprint_is_content_based(self, wheatstone):
        other = wheatstone.copy()
        assert compile_graph(wheatstone).fingerprint == compile_graph(other).fingerprint
        perturbed = wheatstone.copy()
        perturbed.graph.set_p("a", 0.123)
        assert (
            compile_graph(perturbed).fingerprint
            != compile_graph(wheatstone).fingerprint
        )

    def test_unknown_backend_rejected(self, wheatstone):
        with pytest.raises(RankingError):
            rank(wheatstone, "propagation", backend="gpu")
