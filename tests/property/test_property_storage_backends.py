"""Property test: storage backends are interchangeable end to end.

Hypothesis draws a mediated schema shape, generates the *same* workload
(same rng seed) once per storage backend, and runs it through the full
pipeline — binding plans, batched builder, engine caches, session
ranking. Memory, SQLite, columnar and vectorized storage must be
observationally identical: same materialised graphs (nodes, edges,
probabilities, insertion order), same ``BuildStats``, and same
``ResultSet`` rankings. The vectorized backend is the interesting one:
its selection-vector frontier expansion and array-computed edge
probabilities must reproduce the dict path's floats bit for bit.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.storage import STORAGE_BACKENDS
from repro.workloads import mediated_layers

workload_strategy = st.fixed_dictionaries(
    {
        "layers": st.integers(min_value=2, max_value=4),
        "width": st.integers(min_value=1, max_value=20),
        "fan_out": st.integers(min_value=1, max_value=4),
        "seeds": st.integers(min_value=1, max_value=3),
        "dangling_rate": st.sampled_from([0.0, 0.15, 0.5]),
        "cyclic": st.booleans(),
        "index_links": st.booleans(),
        "rng": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


def _run(config, storage):
    """(graph snapshot, stats, rankings) or (None, None, error string)."""
    workload = mediated_layers(storage=storage, **config)
    with workload.open_session() as session:
        try:
            qg, stats, _ = session.engine.execute_with_stats(workload.query)
        except QueryError as error:
            return None, None, str(error)
        graph = qg.graph
        snapshot = (
            [(n, graph.p(n), graph.data(n)) for n in graph.nodes()],
            [(e.key, e.source, e.target, graph.q(e.key)) for e in graph.edges()],
            qg.source,
            qg.targets,
        )
        method = "in_edge" if config["cyclic"] else "path_count"
        results = session.execute(workload.spec(method=method))
        rankings = [
            (entity.node, entity.score, entity.rank_interval)
            for entity in results
        ]
        return snapshot, stats, rankings


@settings(max_examples=25, deadline=None)
@given(config=workload_strategy)
def test_backends_are_observationally_identical(config):
    config = dict(config)
    config["seeds"] = min(config["seeds"], config["width"])

    reference = _run(config, "memory")
    for storage in STORAGE_BACKENDS:
        if storage == "memory":
            continue
        assert _run(config, storage) == reference, (
            f"storage={storage!r} diverged from memory on {config!r}"
        )
