"""Async/sync observational equivalence.

The async session's contract is that it changes *when* work runs —
event loop, executor threads, coalesced futures, inline cache fast
path — but never *what* comes back: every result must be bit-identical
to the synchronous session's, error for error. Hypothesis drives
randomized batches (duplicates included, so the spec-keyed
single-flight and the fast path both fire) through one shared session
and compares against the sync reference spec by spec.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import QuerySpec
from repro.async_ import AsyncSession
from repro.errors import ReproError
from repro.workloads import mediated_layers

_WIDTH = 12

_specs = st.builds(
    QuerySpec,
    entity_set=st.just("E0"),
    attribute=st.just("id"),
    # a few roots beyond the generated range: the empty-answer error
    # path must be equivalent too
    value=st.integers(min_value=0, max_value=_WIDTH + 2).map(lambda i: f"E0:{i}"),
    outputs=st.sampled_from((("E1",), ("E2",), ("E1", "E2"))),
    method=st.sampled_from(
        ("in_edge", "path_count", "propagation", "diffusion", "reliability")
    ),
    seed=st.just(11),  # fixes the MC reliability sampler
)


@pytest.fixture(scope="module")
def session():
    workload = mediated_layers(layers=3, width=_WIDTH, fan_out=3, rng=17)
    opened = workload.open_session()
    yield opened
    opened.close()
    workload.close()


@settings(deadline=None)
@given(specs=st.lists(_specs, min_size=1, max_size=6))
def test_async_results_bit_identical_to_sync(session, specs):
    async def run():
        async with AsyncSession(session) as s:
            return await s.execute_many(specs, return_errors=True)

    outcomes = asyncio.run(run())
    assert len(outcomes) == len(specs)
    for spec, outcome in zip(specs, outcomes):
        try:
            reference = session.execute(spec)
        except ReproError as exc:
            assert type(outcome) is type(exc)
            assert str(outcome) == str(exc)
            continue
        # == on floats: bit-identity, not closeness
        assert dict(outcome.scores) == dict(reference.scores)
        assert [row.key for row in outcome] == [row.key for row in reference]
