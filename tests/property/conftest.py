"""Hypothesis profiles for the property suites.

The ``ci`` profile is what the dedicated CI property job runs
(``HYPOTHESIS_PROFILE=ci pytest tests/property``): derandomized (a
fixed seed derived from each test, so every push checks the same
example corpus) and bounded, making the cross-shard equivalence gate
deterministic and fast. The default profile keeps hypothesis's random
exploration for local runs.

Per-test ``@settings(...)`` decorators override individual fields;
tests that want the profile to control their example budget simply
don't pin ``max_examples``.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=20, deadline=None)
settings.register_profile("stress", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
