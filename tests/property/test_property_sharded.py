"""Property test: sharded scatter/gather equals single-engine ranking.

Hypothesis draws a mediated schema shape, a shard count N ∈ {1, 2, 3, 5}
and a storage backend, generates the *same* workload twice from one rng
seed — once unsharded (the reference), once pre-partitioned across N
shards (``mediated_layers(shards=N)``) — and runs identical specs
through both paths. The sharded execution must be observationally
identical: byte-identical scores, ranks, rank intervals, tie-group
structure, pagination, JSON export and provenance, for every
deterministic ranking method, on every storage backend. Queries whose
answer set is empty must fail with the *same* error message on both
paths.

Why this can hold exactly (and not just approximately): every ranking
method scores a node from its ancestor subgraph only, and only sink
entity sets are partitioned, so each shard holds the complete ancestor
closure of every answer it owns — the per-shard float computations are
the same operations in the same order as the single engine's.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.engine import ShardRouter
from repro.errors import QueryError
from repro.storage import STORAGE_BACKENDS
from repro.workloads import mediated_layers

#: deterministic ranking methods (stochastic reliability samples each
#: shard's own compiled graph, so it is reproducible but not identical)
METHODS = ("in_edge", "path_count", "propagation", "diffusion")

workload_strategy = st.fixed_dictionaries(
    {
        "layers": st.integers(min_value=2, max_value=4),
        "width": st.integers(min_value=1, max_value=14),
        "fan_out": st.integers(min_value=1, max_value=3),
        "seeds": st.integers(min_value=1, max_value=3),
        "dangling_rate": st.sampled_from([0.0, 0.2, 0.6]),
        "index_links": st.booleans(),
        "rng": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


def _observe(results):
    """Everything a client can see in a ResultSet, as plain data."""
    page = results.page(2, size=3)
    return {
        "entities": [
            (e.node, e.entity_set, e.key, e.label, e.score, e.rank, e.rank_interval)
            for e in results
        ],
        "tie_groups": [[e.node for e in group] for group in results.tie_groups()],
        "page2": [e.node for e in page],
        "page_totals": (page.total_results, page.total_pages),
        "json": results.to_json(),
        "provenance": [results.explain(e) for e in results.top(3)],
    }


def _run(workload, specs, sharded, shards=1):
    """Observations (or error strings) for each spec on one path.

    ``shards == 1`` has no pre-partitioned databases, so its sharded
    path runs the other deployment mode: a single-shard scatter/gather
    over partition *views* of the full mediator.
    """
    if not sharded:
        session = workload.open_session(sharded=False)
    elif workload.router is not None:
        session = workload.open_session(sharded=True)
    else:
        session = Session(
            mediator=workload.mediator,
            router=ShardRouter.partition(workload.mediator, shards),
        )
    observed = []
    with session:
        for spec in specs:
            try:
                observed.append(_observe(session.execute(spec)))
            except QueryError as error:
                observed.append(f"{type(error).__name__}: {error}")
    return observed


@settings(deadline=None)
@given(
    config=workload_strategy,
    shards=st.sampled_from([1, 2, 3, 5]),
    storage=st.sampled_from(STORAGE_BACKENDS),
)
def test_sharded_equals_single_engine(config, shards, storage, tmp_path_factory):
    config = dict(config)
    config["seeds"] = min(config["seeds"], config["width"])
    storage_path = (
        tmp_path_factory.mktemp("sharded-eq") if storage == "sqlite" else None
    )

    workload = mediated_layers(
        storage=storage, storage_path=storage_path, shards=shards, **config
    )
    # every non-root layer as an output set, under every method, plus a
    # second pass over the same specs to exercise the warm shard caches
    specs = [
        workload.spec(outputs=(layer,), method=method)
        for method in METHODS
        for layer in workload.entity_sets[1:]
    ]
    specs = specs + specs

    try:
        reference = _run(workload, specs, sharded=False)
        gathered = _run(workload, specs, sharded=True, shards=shards)
    finally:
        workload.close()

    assert gathered == reference, (
        f"shards={shards} storage={storage} diverged on {config!r}"
    )
