"""Property test: the batched builder is indistinguishable from the
scalar reference on randomized multi-source schemas.

Hypothesis drives the schema shape (layers, width, fan-out, seed
count), the dangling-link rate, relationship cyclicity, and index
availability; for every drawn configuration the two builders must
produce node-, edge- and probability-identical graphs with equal
``BuildStats`` — including insertion order, which edge keys and CSR
fingerprints depend on.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.workloads import mediated_layers


def _execute(workload, builder):
    try:
        return workload.query.execute(workload.mediator, builder=builder), None
    except QueryError as error:
        return None, str(error)

workload_strategy = st.fixed_dictionaries(
    {
        "layers": st.integers(min_value=2, max_value=5),
        "width": st.integers(min_value=1, max_value=25),
        "fan_out": st.integers(min_value=1, max_value=4),
        "seeds": st.integers(min_value=1, max_value=3),
        "dangling_rate": st.sampled_from([0.0, 0.15, 0.5]),
        "cyclic": st.booleans(),
        "index_links": st.booleans(),
        "rng": st.integers(min_value=0, max_value=2**32 - 1),
    }
)


@settings(max_examples=40, deadline=None)
@given(config=workload_strategy)
def test_batched_builder_matches_scalar_reference(config):
    config = dict(config)
    config["seeds"] = min(config["seeds"], config["width"])
    workload = mediated_layers(**config)

    batched, batched_error = _execute(workload, "batched")
    scalar, scalar_error = _execute(workload, "scalar")

    # a query that fails (e.g. heavy dangling severs every output path)
    # must fail identically on both paths
    assert batched_error == scalar_error
    if batched_error is not None:
        return

    batched_qg, batched_stats = batched
    scalar_qg, scalar_stats = scalar
    bg, sg = batched_qg.graph, scalar_qg.graph

    # identical node sets, in identical insertion order, with identical
    # probabilities and payloads
    assert list(bg.nodes()) == list(sg.nodes())
    for node in bg.nodes():
        assert bg.p(node) == sg.p(node)
        assert bg.data(node) == sg.data(node)

    # identical edges: same keys, endpoints and q values, in order
    batched_edges = [(e.key, e.source, e.target, bg.q(e.key)) for e in bg.edges()]
    scalar_edges = [(e.key, e.source, e.target, sg.q(e.key)) for e in sg.edges()]
    assert batched_edges == scalar_edges

    # identical build statistics (nodes, edges, dangling tallies)
    assert batched_stats == scalar_stats

    # identical query-graph framing
    assert batched_qg.source == scalar_qg.source
    assert batched_qg.targets == scalar_qg.targets
