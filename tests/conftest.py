"""Shared fixtures: toy graphs and (session-scoped) scenario cases."""

from __future__ import annotations

import pytest

from repro.biology.scenarios import build_scenario
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph


@pytest.fixture
def serial_parallel() -> QueryGraph:
    """Fig 4a: one 0.5 edge feeding two certain parallel 2-edge paths."""
    graph = ProbabilisticEntityGraph()
    for node in ("s", "a", "b", "c", "u"):
        graph.add_node(node)
    graph.add_edge("s", "a", q=0.5)
    graph.add_edge("a", "b", q=1.0)
    graph.add_edge("a", "c", q=1.0)
    graph.add_edge("b", "u", q=1.0)
    graph.add_edge("c", "u", q=1.0)
    return QueryGraph(graph, "s", ["u"])


@pytest.fixture
def wheatstone() -> QueryGraph:
    """Fig 4b: the Wheatstone bridge, every edge probability 0.5."""
    graph = ProbabilisticEntityGraph()
    for node in ("s", "a", "b", "u"):
        graph.add_node(node)
    graph.add_edge("s", "a", q=0.5)
    graph.add_edge("s", "b", q=0.5)
    graph.add_edge("a", "b", q=0.5)
    graph.add_edge("a", "u", q=0.5)
    graph.add_edge("b", "u", q=0.5)
    return QueryGraph(graph, "s", ["u"])


@pytest.fixture
def two_target_dag() -> QueryGraph:
    """A small DAG with two answer nodes and mixed node/edge probabilities."""
    graph = ProbabilisticEntityGraph()
    graph.add_node("s")
    graph.add_node("m1", p=0.9)
    graph.add_node("m2", p=0.8)
    graph.add_node("t1", p=0.95)
    graph.add_node("t2")
    graph.add_edge("s", "m1", q=0.7)
    graph.add_edge("s", "m2", q=0.6)
    graph.add_edge("m1", "t1", q=0.9)
    graph.add_edge("m2", "t1", q=0.5)
    graph.add_edge("m2", "t2", q=0.4)
    return QueryGraph(graph, "s", ["t1", "t2"])


@pytest.fixture(scope="session")
def scenario1_small():
    """Three scenario-1 cases (ABCC8, ABCD1, AGPAT2), built once."""
    return build_scenario(1, seed=0, limit=3)


@pytest.fixture(scope="session")
def scenario2_cases():
    return build_scenario(2, seed=0)


@pytest.fixture(scope="session")
def scenario3_small():
    return build_scenario(3, seed=0, limit=4)
