"""Tests for the synthetic workload generator."""

import pytest

from repro.core.deterministic import path_count_scores
from repro.core.ranker import rank
from repro.errors import ValidationError
from repro.workloads import WorkloadSpec, layered_dag


class TestSpecValidation:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.total_nodes == 61

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"layers": 0},
            {"width": 0},
            {"fan_in": 0},
            {"node_p": (0.9, 0.5)},
            {"edge_q": (-0.1, 0.5)},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            WorkloadSpec(**kwargs)


class TestLayeredDag:
    def test_shape(self):
        spec = WorkloadSpec(layers=4, width=10, fan_in=3)
        qg = layered_dag(spec, rng=0)
        assert qg.graph.num_nodes == spec.total_nodes
        assert len(qg.targets) == 10
        assert qg.graph.is_dag()

    def test_every_node_reachable(self):
        qg = layered_dag(WorkloadSpec(layers=3, width=8), rng=1)
        reachable = qg.graph.reachable_from("query")
        assert reachable == set(qg.graph.nodes())

    def test_probability_ranges_respected(self):
        spec = WorkloadSpec(node_p=(0.6, 0.8), edge_q=(0.2, 0.4))
        qg = layered_dag(spec, rng=2)
        graph = qg.graph
        for node in graph.nodes():
            if node != "query":
                assert 0.6 <= graph.p(node) <= 0.8
        for edge in graph.edges():
            assert 0.2 <= graph.q(edge.key) <= 0.4

    def test_deterministic_given_seed(self):
        spec = WorkloadSpec(layers=2, width=5)
        a, b = layered_dag(spec, rng=7), layered_dag(spec, rng=7)
        assert {(e.source, e.target) for e in a.graph.edges()} == {
            (e.source, e.target) for e in b.graph.edges()
        }

    def test_fan_in_creates_converging_paths(self):
        spec = WorkloadSpec(layers=3, width=6, fan_in=3)
        qg = layered_dag(spec, rng=3)
        counts = path_count_scores(qg)
        assert max(counts.values()) > 1.0

    def test_all_rankers_run_on_workload(self):
        qg = layered_dag(WorkloadSpec(layers=3, width=8), rng=4)
        for method in ("propagation", "diffusion", "in_edge", "path_count"):
            scores = rank(qg, method).scores
            assert set(scores) == set(qg.targets)
        mc = rank(qg, "reliability", strategy="mc", trials=200, rng=5).scores
        assert set(mc) == set(qg.targets)

    def test_single_layer_star(self):
        qg = layered_dag(WorkloadSpec(layers=1, width=4, fan_in=5), rng=6)
        # fan_in exceeds available parents; clamps to the query node
        assert all(qg.graph.in_degree(t) == 1 for t in qg.targets)
