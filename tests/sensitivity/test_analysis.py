"""Tests for the sensitivity sweep harness."""

import pytest

from repro.sensitivity.analysis import sensitivity_sweep


@pytest.fixture
def tiny_cases(two_target_dag):
    return [(two_target_dag, {"t1"})]


class TestSweep:
    def test_point_structure(self, tiny_cases):
        points = sensitivity_sweep(
            tiny_cases,
            method="propagation",
            sigmas=(0.5, 1.0),
            repetitions=5,
            rng=0,
        )
        assert [p.condition for p in points] == [
            "default",
            "sigma=0.5",
            "sigma=1",
            "random",
        ]

    def test_default_point_is_deterministic(self, tiny_cases):
        points = sensitivity_sweep(
            tiny_cases, method="propagation", sigmas=(), repetitions=3, rng=0
        )
        default = points[0]
        assert default.std_ap == 0.0
        assert default.repetitions == 1

    def test_random_condition_optional(self, tiny_cases):
        points = sensitivity_sweep(
            tiny_cases,
            method="propagation",
            sigmas=(1.0,),
            repetitions=2,
            include_random=False,
            rng=0,
        )
        assert [p.condition for p in points] == ["default", "sigma=1"]

    def test_ap_values_are_probabilities(self, tiny_cases):
        points = sensitivity_sweep(
            tiny_cases, method="diffusion", sigmas=(2.0,), repetitions=4, rng=1
        )
        assert all(0.0 <= p.mean_ap <= 1.0 for p in points)

    def test_seeded_reproducibility(self, tiny_cases):
        kwargs = dict(method="propagation", sigmas=(1.0,), repetitions=3, rng=9)
        a = sensitivity_sweep(tiny_cases, **kwargs)
        b = sensitivity_sweep(tiny_cases, **kwargs)
        assert [p.mean_ap for p in a] == [p.mean_ap for p in b]

    def test_empty_cases_rejected(self):
        with pytest.raises(ValueError):
            sensitivity_sweep([], method="propagation")

    def test_robustness_on_scenario_subset(self, scenario3_small):
        """The paper's qualitative finding: sigma = 0.5 noise barely
        moves the AP relative to the random condition."""
        cases = [(c.query_graph, c.relevant) for c in scenario3_small]
        points = sensitivity_sweep(
            cases,
            method="propagation",
            sigmas=(0.5,),
            repetitions=10,
            rng=0,
        )
        default, small_noise, random_cond = points
        assert abs(small_noise.mean_ap - default.mean_ap) < 0.25
        assert small_noise.mean_ap > random_cond.mean_ap - 0.05

    def test_as_row_formatting(self, tiny_cases):
        points = sensitivity_sweep(
            tiny_cases, method="propagation", sigmas=(), repetitions=2, rng=0
        )
        row = points[0].as_row()
        assert "default" in row
        assert "AP" in row
