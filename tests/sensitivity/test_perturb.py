"""Tests for log-odds perturbation of probabilities and graphs."""

import math
import statistics

import pytest

from repro.errors import ValidationError
from repro.sensitivity.perturb import (
    inverse_log_odds,
    log_odds,
    perturb_probability,
    perturb_query_graph,
    randomize_query_graph,
)
from repro.utils.rng import ensure_rng


class TestLogOdds:
    @pytest.mark.parametrize("p", [0.01, 0.3, 0.5, 0.9, 0.999])
    def test_round_trip(self, p):
        assert inverse_log_odds(log_odds(p)) == pytest.approx(p)

    def test_half_maps_to_zero(self):
        assert log_odds(0.5) == 0.0

    def test_boundaries_rejected(self):
        with pytest.raises(ValidationError):
            log_odds(0.0)
        with pytest.raises(ValidationError):
            log_odds(1.0)

    def test_inverse_is_stable_in_both_tails(self):
        assert inverse_log_odds(800.0) == pytest.approx(1.0)
        assert inverse_log_odds(-800.0) == pytest.approx(0.0)

    def test_inverse_is_monotone(self):
        values = [inverse_log_odds(x) for x in (-5, -1, 0, 1, 5)]
        assert values == sorted(values)


class TestPerturbProbability:
    def test_output_is_probability(self):
        rng = ensure_rng(0)
        for _ in range(200):
            value = perturb_probability(0.7, sigma=3.0, rng=rng)
            assert 0.0 < value < 1.0

    def test_small_sigma_stays_close(self):
        rng = ensure_rng(1)
        samples = [perturb_probability(0.6, 0.1, rng) for _ in range(500)]
        assert statistics.mean(samples) == pytest.approx(0.6, abs=0.02)

    def test_extremes_are_clamped_before_logit(self):
        value = perturb_probability(1.0, sigma=0.5, rng=2)
        assert 0.0 < value < 1.0

    def test_median_preserved_in_log_odds_space(self):
        """Noise is symmetric in log-odds, so the median output maps
        back near the input."""
        rng = ensure_rng(3)
        samples = [perturb_probability(0.2, 2.0, rng) for _ in range(2001)]
        median = statistics.median(samples)
        assert math.isclose(median, 0.2, abs_tol=0.05)

    def test_sigma_must_be_positive(self):
        with pytest.raises(ValidationError):
            perturb_probability(0.5, sigma=0.0)


class TestGraphPerturbation:
    def test_all_probabilities_perturbed(self, two_target_dag):
        perturbed = perturb_query_graph(two_target_dag, sigma=1.0, rng=0)
        graph, original = perturbed.graph, two_target_dag.graph
        changed_nodes = sum(
            1
            for node in graph.nodes()
            if node != perturbed.source and graph.p(node) != original.p(node)
        )
        changed_edges = sum(
            1 for edge in graph.edges() if graph.q(edge.key) != original.q(edge.key)
        )
        assert changed_nodes == graph.num_nodes - 1
        assert changed_edges == graph.num_edges

    def test_query_node_untouched(self, two_target_dag):
        perturbed = perturb_query_graph(two_target_dag, sigma=2.0, rng=1)
        assert perturbed.graph.p(perturbed.source) == 1.0

    def test_original_untouched(self, two_target_dag):
        before = {e.key: two_target_dag.graph.q(e.key) for e in two_target_dag.graph.edges()}
        perturb_query_graph(two_target_dag, sigma=2.0, rng=2)
        after = {e.key: two_target_dag.graph.q(e.key) for e in two_target_dag.graph.edges()}
        assert before == after

    def test_targets_preserved(self, two_target_dag):
        perturbed = perturb_query_graph(two_target_dag, sigma=1.0, rng=3)
        assert perturbed.targets == two_target_dag.targets

    def test_seeded_reproducibility(self, two_target_dag):
        a = perturb_query_graph(two_target_dag, sigma=1.0, rng=7)
        b = perturb_query_graph(two_target_dag, sigma=1.0, rng=7)
        assert [a.graph.q(e.key) for e in a.graph.edges()] == [
            b.graph.q(e.key) for e in b.graph.edges()
        ]


class TestRandomize:
    def test_probabilities_uniform(self, two_target_dag):
        randomized = randomize_query_graph(two_target_dag, rng=0)
        graph = randomized.graph
        values = [graph.q(e.key) for e in graph.edges()]
        assert all(0.0 <= v <= 1.0 for v in values)
        assert len(set(values)) == len(values)  # continuous draws differ

    def test_query_node_untouched(self, two_target_dag):
        randomized = randomize_query_graph(two_target_dag, rng=1)
        assert randomized.graph.p(randomized.source) == 1.0
