"""Tests for one-way (component-restricted) sensitivity analysis."""

import pytest

from repro.errors import ValidationError
from repro.sensitivity.oneway import oneway_sweep, perturb_component


class TestPerturbComponent:
    def test_nodes_only_leaves_edges_alone(self, two_target_dag):
        perturbed = perturb_component(two_target_dag, sigma=2.0, component="nodes", rng=0)
        for edge in perturbed.graph.edges():
            assert perturbed.graph.q(edge.key) == two_target_dag.graph.q(edge.key)
        changed = [
            node
            for node in perturbed.graph.nodes()
            if node != perturbed.source
            and perturbed.graph.p(node) != two_target_dag.graph.p(node)
        ]
        assert changed

    def test_edges_only_leaves_nodes_alone(self, two_target_dag):
        perturbed = perturb_component(two_target_dag, sigma=2.0, component="edges", rng=1)
        for node in perturbed.graph.nodes():
            assert perturbed.graph.p(node) == two_target_dag.graph.p(node)
        changed = [
            edge
            for edge in perturbed.graph.edges()
            if perturbed.graph.q(edge.key) != two_target_dag.graph.q(edge.key)
        ]
        assert changed

    def test_all_matches_multiway_semantics(self, two_target_dag):
        perturbed = perturb_component(two_target_dag, sigma=1.0, component="all", rng=2)
        node_changed = any(
            perturbed.graph.p(n) != two_target_dag.graph.p(n)
            for n in perturbed.graph.nodes()
            if n != perturbed.source
        )
        edge_changed = any(
            perturbed.graph.q(e.key) != two_target_dag.graph.q(e.key)
            for e in perturbed.graph.edges()
        )
        assert node_changed and edge_changed

    def test_unknown_component_rejected(self, two_target_dag):
        with pytest.raises(ValidationError):
            perturb_component(two_target_dag, sigma=1.0, component="everything")

    def test_query_node_untouched(self, two_target_dag):
        perturbed = perturb_component(two_target_dag, sigma=3.0, component="nodes", rng=3)
        assert perturbed.graph.p(perturbed.source) == 1.0


class TestOnewaySweep:
    def test_structure(self, two_target_dag):
        results = oneway_sweep(
            [(two_target_dag, {"t1"})],
            method="propagation",
            sigma=1.0,
            repetitions=4,
            rng=0,
        )
        assert set(results) == {"nodes", "edges", "all"}
        for points in results.values():
            assert [p.condition for p in points] == ["default", "sigma=1"]

    def test_default_identical_across_components(self, two_target_dag):
        results = oneway_sweep(
            [(two_target_dag, {"t1"})],
            method="propagation",
            sigma=1.0,
            repetitions=3,
            rng=0,
        )
        defaults = {points[0].mean_ap for points in results.values()}
        assert len(defaults) == 1

    def test_all_noise_hurts_at_least_each_component(self, scenario3_small):
        """Joint noise is at least as disruptive as either restriction
        (on average over repetitions)."""
        cases = [(c.query_graph, c.relevant) for c in scenario3_small]
        results = oneway_sweep(
            cases, method="propagation", sigma=2.0, repetitions=10, rng=0
        )
        ap = {component: points[1].mean_ap for component, points in results.items()}
        assert ap["all"] <= max(ap["nodes"], ap["edges"]) + 0.1
