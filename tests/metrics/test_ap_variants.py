"""Tests for AP@k and interpolated AP."""

import pytest

from repro.errors import ValidationError
from repro.metrics import (
    average_precision,
    average_precision_at,
    interpolated_average_precision,
)


class TestApAtK:
    def test_full_cutoff_equals_plain_ap(self):
        relevances = [1, 0, 1, 0, 1]
        assert average_precision_at(relevances, 5) == pytest.approx(
            average_precision(relevances)
        )

    def test_cutoff_drops_late_hits(self):
        relevances = [1, 0, 0, 1]
        # only the rank-1 hit counts at k=2, normalised by all 2 relevant
        assert average_precision_at(relevances, 2) == pytest.approx(0.5)

    def test_monotone_in_k(self):
        relevances = [0, 1, 0, 1, 1]
        values = [average_precision_at(relevances, k) for k in range(1, 6)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValidationError):
            average_precision_at([1, 0], 3)
        with pytest.raises(ValidationError):
            average_precision_at([0, 0], 1)


class TestInterpolatedAp:
    def test_perfect_ranking_is_one(self):
        assert interpolated_average_precision([1, 1, 0, 0]) == pytest.approx(1.0)

    def test_interpolation_uses_max_future_precision(self):
        # hits at ranks 2 and 3: P@2 = 0.5, P@3 = 2/3; interpolated
        # precision at every recall level <= 2/3's recall uses 2/3
        relevances = [0, 1, 1]
        value = interpolated_average_precision(relevances, points=11)
        # recall levels 0..0.5 interpolate to max(0.5, 2/3) = 2/3;
        # levels above 0.5 reach the 2/3 precision point as well
        assert value == pytest.approx(2 / 3)

    def test_interpolated_at_least_plain_ap(self):
        for relevances in ([0, 1, 0, 1], [1, 0, 0, 1, 1], [0, 0, 1]):
            assert interpolated_average_precision(
                relevances
            ) >= average_precision(relevances) - 1e-9

    def test_point_count_validation(self):
        with pytest.raises(ValidationError):
            interpolated_average_precision([1], points=1)

    def test_no_relevant_raises(self):
        with pytest.raises(ValidationError):
            interpolated_average_precision([0, 0])
