"""Tests for precision/recall at a cut-off."""

import pytest

from repro.errors import ValidationError
from repro.metrics.precision import precision_at, recall_at


class TestPrecisionAt:
    def test_basic(self):
        assert precision_at([1, 0, 1, 0], 1) == 1.0
        assert precision_at([1, 0, 1, 0], 2) == 0.5
        assert precision_at([1, 0, 1, 0], 4) == 0.5

    def test_bools_accepted(self):
        assert precision_at([True, False], 2) == 0.5

    def test_cutoff_bounds(self):
        with pytest.raises(ValidationError):
            precision_at([1, 0], 0)
        with pytest.raises(ValidationError):
            precision_at([1, 0], 3)

    def test_rejects_non_binary(self):
        with pytest.raises(ValidationError):
            precision_at([1, 2], 2)


class TestRecallAt:
    def test_basic(self):
        assert recall_at([1, 0, 1, 0], 1) == 0.5
        assert recall_at([1, 0, 1, 0], 4) == 1.0

    def test_no_relevant_raises(self):
        with pytest.raises(ValidationError):
            recall_at([0, 0], 2)
