"""Tests for rank intervals and their formatting."""

from repro.metrics.ranking import (
    format_rank_interval,
    interval_midpoint,
    rank_intervals,
)


class TestRankIntervals:
    def test_unique_scores(self):
        intervals = rank_intervals({"a": 0.9, "b": 0.5, "c": 0.1})
        assert intervals == {"a": (1, 1), "b": (2, 2), "c": (3, 3)}

    def test_tied_scores_share_interval(self):
        intervals = rank_intervals({"a": 0.9, "b": 0.5, "c": 0.5, "d": 0.5})
        assert intervals["a"] == (1, 1)
        assert intervals["b"] == intervals["c"] == intervals["d"] == (2, 4)

    def test_all_tied(self):
        intervals = rank_intervals({"a": 0.0, "b": 0.0})
        assert intervals == {"a": (1, 2), "b": (1, 2)}

    def test_intervals_partition_positions(self):
        scores = {"a": 3.0, "b": 2.0, "c": 2.0, "d": 1.0, "e": 1.0, "f": 1.0}
        intervals = rank_intervals(scores)
        covered = []
        for lo, hi in set(intervals.values()):
            covered.extend(range(lo, hi + 1))
        assert sorted(covered) == list(range(1, len(scores) + 1))

    def test_empty_scores(self):
        assert rank_intervals({}) == {}


class TestFormatting:
    def test_singleton(self):
        assert format_rank_interval((5, 5)) == "5"

    def test_interval(self):
        assert format_rank_interval((34, 97)) == "34-97"

    def test_midpoint(self):
        assert interval_midpoint((21, 22)) == 21.5
        assert interval_midpoint((4, 4)) == 4.0

    def test_paper_table2_mean_reconstruction(self):
        """The paper's Table 2 'Mean' row for Rel: intervals
        {21-22, 21-22, 17, 1-2, 24, 4, 14} average to 14.8."""
        intervals = [(21, 22), (21, 22), (17, 17), (1, 2), (24, 24), (4, 4), (14, 14)]
        mean = sum(interval_midpoint(i) for i in intervals) / len(intervals)
        assert round(mean, 1) == 14.8
