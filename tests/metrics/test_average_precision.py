"""Tests for AP, tie-aware expected AP, and the random baseline."""

import itertools
import statistics

import pytest

from repro.errors import ValidationError
from repro.metrics.average_precision import (
    average_precision,
    expected_average_precision,
    random_average_precision,
)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 1, 0, 0]) == 1.0

    def test_worst_ranking(self):
        assert average_precision([0, 0, 1, 1]) == pytest.approx(
            (1 / 3 + 2 / 4) / 2
        )

    def test_textbook_example(self):
        assert average_precision([1, 0, 1]) == pytest.approx((1 + 2 / 3) / 2)

    def test_single_relevant_at_rank_k(self):
        assert average_precision([0, 0, 0, 1]) == pytest.approx(0.25)

    def test_all_relevant(self):
        assert average_precision([1, 1, 1]) == 1.0

    def test_no_relevant_raises(self):
        with pytest.raises(ValidationError):
            average_precision([0, 0])

    def test_non_binary_rejected(self):
        with pytest.raises(ValidationError):
            average_precision([0.5, 1])


class TestExpectedAveragePrecision:
    def test_without_ties_equals_plain_ap(self):
        scores = {"a": 0.9, "b": 0.7, "c": 0.5, "d": 0.3}
        relevant = {"a", "c"}
        expected = average_precision([1, 0, 1, 0])
        assert expected_average_precision(scores, relevant) == pytest.approx(expected)

    def test_matches_enumeration_over_permutations(self):
        """Brute-force check of the analytic expectation: average AP over
        every permutation of each tie group."""
        scores = {"a": 0.9, "b": 0.5, "c": 0.5, "d": 0.5, "e": 0.1}
        relevant = {"b", "e"}
        tie_group = ["b", "c", "d"]
        aps = []
        for perm in itertools.permutations(tie_group):
            order = ["a", *perm, "e"]
            aps.append(average_precision([item in relevant for item in order]))
        assert expected_average_precision(scores, relevant) == pytest.approx(
            statistics.mean(aps)
        )

    def test_two_tie_groups_enumeration(self):
        scores = {"a": 0.8, "b": 0.8, "c": 0.2, "d": 0.2}
        relevant = {"a", "d"}
        aps = []
        for top in itertools.permutations(["a", "b"]):
            for bottom in itertools.permutations(["c", "d"]):
                order = [*top, *bottom]
                aps.append(average_precision([x in relevant for x in order]))
        assert expected_average_precision(scores, relevant) == pytest.approx(
            statistics.mean(aps)
        )

    def test_all_tied_equals_random_ap(self):
        scores = {i: 0.0 for i in range(30)}
        relevant = set(range(7))
        assert expected_average_precision(scores, relevant) == pytest.approx(
            random_average_precision(7, 30)
        )

    def test_relevant_items_not_retrieved_are_ignored(self):
        scores = {"a": 0.9, "b": 0.1}
        assert expected_average_precision(scores, {"a", "ghost"}) == 1.0

    def test_empty_ranking_raises(self):
        with pytest.raises(ValidationError):
            expected_average_precision({}, {"a"})

    def test_no_relevant_retrieved_raises(self):
        with pytest.raises(ValidationError):
            expected_average_precision({"a": 1.0}, {"ghost"})

    def test_better_placement_gives_higher_eap(self):
        relevant = {"r"}
        high = expected_average_precision({"r": 0.9, "x": 0.5, "y": 0.1}, relevant)
        low = expected_average_precision({"r": 0.1, "x": 0.5, "y": 0.9}, relevant)
        assert high > low


class TestRandomAveragePrecision:
    def test_definition_4_1_values(self):
        # APrand(k=n) must be exactly 1
        assert random_average_precision(5, 5) == pytest.approx(1.0)

    def test_single_item(self):
        assert random_average_precision(1, 1) == 1.0

    def test_matches_sampled_random_orderings(self):
        import random

        k, n = 3, 8
        rng = random.Random(0)
        items = [1] * k + [0] * (n - k)
        samples = []
        for _ in range(20_000):
            rng.shuffle(items)
            samples.append(average_precision(items))
        assert random_average_precision(k, n) == pytest.approx(
            statistics.mean(samples), abs=0.005
        )

    def test_monotone_in_k(self):
        values = [random_average_precision(k, 10) for k in range(1, 11)]
        assert values == sorted(values)

    def test_bounds_validation(self):
        with pytest.raises(ValidationError):
            random_average_precision(0, 5)
        with pytest.raises(ValidationError):
            random_average_precision(6, 5)
        with pytest.raises(ValidationError):
            random_average_precision(1, 0)

    def test_paper_scenario2_baseline(self):
        """The Fig 5b Random bar: mean APrand over the 3 scenario-2
        proteins with (3, 97), (2, 90), (2, 38)."""
        value = statistics.mean(
            [
                random_average_precision(3, 97),
                random_average_precision(2, 90),
                random_average_precision(2, 38),
            ]
        )
        assert value == pytest.approx(0.12, abs=0.04)
