"""Tests for the scenario builders and the paper's dataset constants."""

import pytest

from repro.biology.scenarios import (
    SCENARIO1_PROTEINS,
    SCENARIO2_FUNCTIONS,
    SCENARIO3_PROTEINS,
    Scenario,
    build_scenario,
)


class TestConstants:
    def test_table1_shape(self):
        assert len(SCENARIO1_PROTEINS) == 20
        assert sum(row[1] for row in SCENARIO1_PROTEINS) == 306
        # the printed paper total is 1036, the column actually sums to 1037
        assert sum(row[2] for row in SCENARIO1_PROTEINS) == 1037

    def test_table2_shape(self):
        functions = [f for fns in SCENARIO2_FUNCTIONS.values() for f in fns]
        assert len(functions) == 7
        assert set(SCENARIO2_FUNCTIONS) == {"ABCC8", "CFTR", "EYA1"}

    def test_table3_shape(self):
        assert len(SCENARIO3_PROTEINS) == 11
        assert all(go.startswith("GO:") for _, go, _ in SCENARIO3_PROTEINS)

    def test_scenario2_proteins_are_scenario1_proteins(self):
        names = {row[0] for row in SCENARIO1_PROTEINS}
        assert set(SCENARIO2_FUNCTIONS) <= names


class TestBuildScenario1:
    def test_counts_match_table1(self, scenario1_small):
        for case, (protein, n_gold, n_total) in zip(
            scenario1_small, SCENARIO1_PROTEINS
        ):
            assert case.name == protein
            assert case.n_relevant == n_gold
            assert case.n_total == n_total

    def test_relevant_is_gold(self, scenario1_small):
        case = scenario1_small[0]
        assert case.relevant == case.case.gold_nodes

    def test_limit(self, scenario1_small):
        assert len(scenario1_small) == 3


class TestBuildScenario2:
    def test_three_proteins(self, scenario2_cases):
        assert [case.name for case in scenario2_cases] == ["ABCC8", "CFTR", "EYA1"]

    def test_relevant_is_novel(self, scenario2_cases):
        totals = {case.name: case.n_relevant for case in scenario2_cases}
        assert totals == {"ABCC8": 3, "CFTR": 2, "EYA1": 2}

    def test_graphs_identical_to_scenario1(self, scenario2_cases, scenario1_small):
        """Scenario 2 reuses scenario 1's graphs (same seed)."""
        abcc8_s2 = scenario2_cases[0].query_graph.graph
        abcc8_s1 = scenario1_small[0].query_graph.graph
        assert {(e.source, e.target) for e in abcc8_s2.edges()} == {
            (e.source, e.target) for e in abcc8_s1.edges()
        }
        assert all(
            abcc8_s2.p(node) == abcc8_s1.p(node) for node in abcc8_s2.nodes()
        )

    def test_novel_functions_have_paper_go_ids(self, scenario2_cases):
        abcc8 = scenario2_cases[0]
        go_ids = {node[1] for node in abcc8.relevant}
        assert go_ids == {"GO:0006855", "GO:0015559", "GO:0042493"}


class TestBuildScenario3:
    def test_counts_match_table3(self, scenario3_small):
        for case, (protein, _, n_total) in zip(scenario3_small, SCENARIO3_PROTEINS):
            assert case.name == protein
            assert case.n_total == n_total
            assert case.n_relevant == 1

    def test_true_function_is_paper_go_id(self, scenario3_small):
        (node,) = scenario3_small[0].relevant
        assert node[1] == "GO:0003973"

    def test_no_gold_in_scenario3(self, scenario3_small):
        assert all(not case.case.gold_nodes for case in scenario3_small)


class TestScenarioEnum:
    def test_values(self):
        assert Scenario(1) is Scenario.WELL_KNOWN
        assert Scenario(2) is Scenario.LESS_KNOWN
        assert Scenario(3) is Scenario.UNKNOWN

    def test_invalid_scenario_rejected(self):
        with pytest.raises(ValueError):
            build_scenario(4)
