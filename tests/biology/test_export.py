"""Tests for dataset export."""

import csv

from repro.biology.export import export_scenario


class TestExportScenario:
    def test_layout_and_manifest(self, tmp_path):
        cases = export_scenario(3, tmp_path, seed=0, limit=2)
        root = tmp_path / "scenario3"
        assert (root / "manifest.csv").exists()
        for case in cases:
            case_dir = root / case.name
            assert (case_dir / "EntrezGene" / "genes.csv").exists()
            assert (case_dir / "EntrezGene" / "gene_go.csv").exists()
            assert (case_dir / "AmiGO" / "terms.csv").exists()
            assert (case_dir / "iProClass" / "functions.csv").exists()

        with (root / "manifest.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert [row["protein"] for row in rows] == ["DP0843", "DP1954"]
        assert rows[0]["relevant_go_ids"] == "GO:0003973"
        assert int(rows[0]["n_answers"]) == 47

    def test_term_counts_match_answer_sets(self, tmp_path):
        cases = export_scenario(3, tmp_path, seed=0, limit=1)
        case = cases[0]
        terms_csv = tmp_path / "scenario3" / case.name / "AmiGO" / "terms.csv"
        with terms_csv.open() as handle:
            n_terms = sum(1 for _ in handle) - 1  # minus header
        assert n_terms == case.n_total
