"""Tests for evidence profiles."""

import pytest

from repro.biology.evidence import (
    DECOY_MEDIUM,
    DECOY_SHORT_STRONG,
    DECOY_WEAK,
    HYPOTHETICAL_DECOY,
    HYPOTHETICAL_SHORT,
    HYPOTHETICAL_TRUE,
    NOVEL_SINGLE_STRONG,
    WELL_KNOWN,
    EvidenceProfile,
)
from repro.errors import ValidationError
from repro.utils.rng import ensure_rng

ALL_PROFILES = (
    WELL_KNOWN,
    DECOY_WEAK,
    DECOY_MEDIUM,
    DECOY_SHORT_STRONG,
    NOVEL_SINGLE_STRONG,
    HYPOTHETICAL_TRUE,
    HYPOTHETICAL_DECOY,
    HYPOTHETICAL_SHORT,
)


class TestPresetInvariants:
    @pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
    def test_every_profile_guarantees_a_path(self, profile):
        """A function assigned any preset profile must always be
        reachable: direct (certain), or min homolog paths >= 1, or min
        family paths >= 1."""
        certain_direct = (
            profile.direct_annotation is not None
            and profile.direct_probability >= 1.0
        )
        assert (
            certain_direct
            or profile.n_homolog_paths[0] >= 1
            or profile.n_family_paths[0] >= 1
        )

    def test_novel_is_single_short_strong(self):
        assert NOVEL_SINGLE_STRONG.n_homolog_paths == (0, 0)
        assert NOVEL_SINGLE_STRONG.n_family_paths == (1, 1)
        assert NOVEL_SINGLE_STRONG.family_match_strength[0] >= 0.85
        assert NOVEL_SINGLE_STRONG.family_kind == "tigrfam"

    def test_well_known_is_redundant(self):
        assert WELL_KNOWN.n_homolog_paths[0] >= 2
        assert WELL_KNOWN.direct_annotation is not None

    def test_decoys_are_weaker_than_novel(self):
        assert DECOY_SHORT_STRONG.family_match_strength[1] < (
            NOVEL_SINGLE_STRONG.family_match_strength[0]
        )


class TestValidation:
    def test_bad_strength_range(self):
        with pytest.raises(ValidationError):
            EvidenceProfile(
                name="bad",
                direct_annotation=None,
                n_homolog_paths=(1, 1),
                homolog_evidence=(0.9, 0.5),  # inverted
                n_family_paths=(0, 0),
                family_match_strength=(0.0, 0.0),
            )

    def test_bad_count_range(self):
        with pytest.raises(ValidationError):
            EvidenceProfile(
                name="bad",
                direct_annotation=None,
                n_homolog_paths=(2, 1),
                homolog_evidence=(0.1, 0.2),
                n_family_paths=(0, 0),
                family_match_strength=(0.0, 0.0),
            )

    def test_bad_family_kind(self):
        with pytest.raises(ValidationError):
            EvidenceProfile(
                name="bad",
                direct_annotation=None,
                n_homolog_paths=(1, 1),
                homolog_evidence=(0.1, 0.2),
                n_family_paths=(0, 0),
                family_match_strength=(0.0, 0.0),
                family_kind="interpro",
            )

    def test_bad_direct_probability(self):
        with pytest.raises(ValidationError):
            EvidenceProfile(
                name="bad",
                direct_annotation=(0.1, 0.2),
                n_homolog_paths=(1, 1),
                homolog_evidence=(0.1, 0.2),
                n_family_paths=(0, 0),
                family_match_strength=(0.0, 0.0),
                direct_probability=1.5,
            )


class TestSampling:
    def test_sample_strength_within_range(self):
        rng = ensure_rng(0)
        for _ in range(100):
            value = WELL_KNOWN.sample_strength(WELL_KNOWN.homolog_evidence, rng)
            lo, hi = WELL_KNOWN.homolog_evidence
            assert lo <= value <= hi

    def test_sample_count_within_range(self):
        rng = ensure_rng(1)
        for _ in range(100):
            count = WELL_KNOWN.sample_count(WELL_KNOWN.n_homolog_paths, rng)
            lo, hi = WELL_KNOWN.n_homolog_paths
            assert lo <= count <= hi

    def test_degenerate_ranges_short_circuit(self):
        assert NOVEL_SINGLE_STRONG.sample_count((1, 1), None) == 1
        assert NOVEL_SINGLE_STRONG.sample_strength((0.5, 0.5), None) == 0.5
