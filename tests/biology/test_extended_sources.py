"""Tests for the extended source catalogue (CDD/PIRSF/SuperFamily/
UniProt/PDB) and the full 11-source deployment."""

import pytest

from repro.biology.sources import amigo, entrez_gene, entrez_protein, ncbi_blast, pfam, tigrfam
from repro.biology.sources.extended import (
    create_family_style_database,
    create_pdb_database,
    create_uniprot_database,
    extended_confidences,
    make_cdd_source,
    make_pdb_source,
    make_pirsf_source,
    make_superfamily_source,
    make_uniprot_source,
)
from repro.core.exact import exact_reliability
from repro.integration.builder import entity_node_id
from repro.integration.mediator import Mediator
from repro.integration.query import ExploratoryQuery


class TestFamilyStyleSources:
    @pytest.mark.parametrize(
        "maker,entity",
        [
            (make_cdd_source, "CddDomain"),
            (make_pirsf_source, "PirsfFamily"),
            (make_superfamily_source, "SuperFamilyDomain"),
        ],
    )
    def test_bindings(self, maker, entity):
        db = create_family_style_database(entity.lower())
        source = maker(db)
        assert source.entities[0].entity_set == entity
        assert len(source.relationships) == 2

    def test_pirsf_trusted_more_than_pfam(self):
        confidences = extended_confidences()
        assert confidences.ps("PirsfFamily") > confidences.ps("PfamFamily")
        assert confidences.qs("pirsf_go") > confidences.qs("pfam_go")


class TestUniProt:
    def test_status_probability(self):
        db = create_uniprot_database()
        db.insert("entries", {"accession": "P1", "status": "reviewed"})
        db.insert("entries", {"accession": "P2", "status": "unreviewed"})
        source = make_uniprot_source(db)
        (binding,) = source.entities
        assert binding.pr(db.table("entries").pk_lookup("P1")) == 1.0
        assert binding.pr(db.table("entries").pk_lookup("P2")) == 0.5

    def test_unknown_status_raises(self):
        db = create_uniprot_database()
        db.insert("entries", {"accession": "P1", "status": "guessed"})
        source = make_uniprot_source(db)
        (binding,) = source.entities
        with pytest.raises(ValueError):
            binding.pr(db.table("entries").pk_lookup("P1"))


class TestPdb:
    def test_entity_only_no_relationships(self):
        db = create_pdb_database()
        source = make_pdb_source(db)
        assert len(source.entities) == 1
        assert source.relationships == ()


class TestFullDeployment:
    def test_eleven_sources_register_and_query(self):
        """Assemble the full catalogue and run an exploratory query that
        travels through a PIRSF path."""
        mediator = Mediator(confidences=extended_confidences())

        ep_db = entrez_protein.create_database()
        entrez_protein.add_protein(ep_db, "PROT1", "ACDEFGHIKL")
        eg_db = entrez_gene.create_database()
        am_db = amigo.create_database()
        amigo.add_term(am_db, "GO:0005524", "ATP binding", "molecular_function")
        bl_db = ncbi_blast.create_database()
        pf_db = pfam.create_database()
        tf_db = tigrfam.create_database()

        pirsf_db = create_family_style_database("pirsf")
        make_pirsf = make_pirsf_source
        from repro.biology.sources.pfam import add_family, add_family_go, add_match

        add_family(pirsf_db, "PIRSF000001")
        add_match(pirsf_db, "PROT1", "PIRSF000001", 1e-150)
        add_family_go(pirsf_db, "PIRSF000001", "GO:0005524")

        cdd_db = create_family_style_database("cdd")
        sf_db = create_family_style_database("superfamily")
        up_db = create_uniprot_database()
        pdb_db = create_pdb_database()

        for source in (
            entrez_protein.make_source(ep_db),
            entrez_gene.make_source(eg_db),
            amigo.make_source(am_db),
            ncbi_blast.make_source(bl_db),
            pfam.make_source(pf_db),
            tigrfam.make_source(tf_db),
            make_pirsf(pirsf_db),
            make_cdd_source(cdd_db),
            make_superfamily_source(sf_db),
            make_uniprot_source(up_db),
            make_pdb_source(pdb_db),
        ):
            mediator.register(source)
        assert len(mediator.sources) == 11

        query = ExploratoryQuery("EntrezProtein", "name", "PROT1", outputs=("GOTerm",))
        qg, _ = query.execute(mediator)
        target = entity_node_id("GOTerm", "GO:0005524")
        assert target in set(qg.targets)
        # path: query -> protein -> PIRSF family (ps=0.97) -> GO
        # (match qr=0.5, family_go qs=0.97)
        score = exact_reliability(qg, target)[target]
        assert score == pytest.approx(0.5 * 0.97 * 0.97, abs=1e-9)
