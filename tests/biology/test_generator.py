"""Tests for the protein case generator."""

import pytest

from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.biology.sources import iproclass
from repro.errors import ValidationError
from repro.integration.builder import entity_node_id


@pytest.fixture(scope="module")
def small_case():
    generator = ProteinCaseGenerator(rng=0)
    spec = CaseSpec(
        protein="TESTP",
        n_gold=4,
        n_total=12,
        novel_go_ids=("GO:0042493",),
        homolog_pool=20,
    )
    return generator.generate(spec)


class TestSpecValidation:
    def test_reserved_exceeding_total_rejected(self):
        with pytest.raises(ValidationError):
            CaseSpec(protein="X", n_gold=5, n_total=4)

    def test_named_exceeding_gold_rejected(self):
        with pytest.raises(ValidationError):
            CaseSpec(
                protein="X",
                n_gold=1,
                n_total=5,
                named_gold_ids=("GO:0005524", "GO:0005886"),
            )


class TestGeneratedCase:
    def test_answer_set_size_matches_spec(self, small_case):
        assert len(small_case.query_graph.targets) == 12

    def test_gold_and_novel_are_answer_nodes(self, small_case):
        targets = set(small_case.query_graph.targets)
        assert small_case.gold_nodes <= targets
        assert small_case.novel_nodes <= targets
        assert len(small_case.gold_nodes) == 4
        assert len(small_case.novel_nodes) == 1

    def test_gold_and_novel_disjoint(self, small_case):
        assert not (small_case.gold_nodes & small_case.novel_nodes)

    def test_iproclass_holds_exactly_the_gold(self, small_case):
        gold_ids = iproclass.gold_functions(small_case.iproclass_db, "TESTP")
        expected = {node[1] for node in small_case.gold_nodes}
        assert gold_ids == expected

    def test_graph_is_dag(self, small_case):
        assert small_case.query_graph.graph.is_dag()

    def test_no_dangling_links(self, small_case):
        assert small_case.build_stats.dangling_links == 0

    def test_query_node_has_full_probability(self, small_case):
        qg = small_case.query_graph
        assert qg.graph.p(qg.source) == 1.0

    def test_all_probabilities_valid(self, small_case):
        graph = small_case.query_graph.graph
        assert all(0.0 <= graph.p(n) <= 1.0 for n in graph.nodes())
        assert all(0.0 <= graph.q(e.key) <= 1.0 for e in graph.edges())

    def test_go_node_helper(self, small_case):
        node = small_case.go_node("GO:0042493")
        assert node == entity_node_id("GOTerm", "GO:0042493")
        assert node in small_case.novel_nodes


class TestDeterminism:
    def test_same_seed_same_graph(self):
        spec = CaseSpec(protein="DET", n_gold=3, n_total=8, homolog_pool=15)
        a = ProteinCaseGenerator(rng=5).generate(spec)
        b = ProteinCaseGenerator(rng=5).generate(spec)
        ga, gb = a.query_graph.graph, b.query_graph.graph
        assert set(ga.nodes()) == set(gb.nodes())
        assert {(e.source, e.target) for e in ga.edges()} == {
            (e.source, e.target) for e in gb.edges()
        }
        assert [ga.p(n) for n in ga.nodes()] == [gb.p(n) for n in ga.nodes()]

    def test_case_independent_of_generation_order(self):
        """The scenario-2 guarantee: a protein's graph depends only on
        (seed, protein), not on which cases were generated before it."""
        spec_a = CaseSpec(protein="AAA", n_gold=2, n_total=6, homolog_pool=10)
        spec_b = CaseSpec(protein="BBB", n_gold=2, n_total=6, homolog_pool=10)

        gen1 = ProteinCaseGenerator(rng=3)
        gen1.generate(spec_a)
        b_after_a = gen1.generate(spec_b)

        gen2 = ProteinCaseGenerator(rng=3)
        b_alone = gen2.generate(spec_b)

        ga, gb = b_after_a.query_graph.graph, b_alone.query_graph.graph
        assert {(e.source, e.target) for e in ga.edges()} == {
            (e.source, e.target) for e in gb.edges()
        }

    def test_different_seeds_differ(self):
        spec = CaseSpec(protein="DET", n_gold=3, n_total=8, homolog_pool=15)
        a = ProteinCaseGenerator(rng=1).generate(spec)
        b = ProteinCaseGenerator(rng=2).generate(spec)
        assert {(e.source, e.target) for e in a.query_graph.graph.edges()} != {
            (e.source, e.target) for e in b.query_graph.graph.edges()
        }
