"""Tests for the synthetic Gene Ontology."""

import pytest

from repro.biology.ontology import PAPER_TERMS, GeneOntology
from repro.errors import ValidationError
from repro.utils.rng import ensure_rng


class TestPaperTerms:
    def test_all_paper_terms_preloaded(self):
        ontology = GeneOntology()
        for term_id in PAPER_TERMS:
            assert ontology.has_term(term_id)

    def test_named_lookup(self):
        ontology = GeneOntology()
        term = ontology.term("GO:0008281")
        assert "sulfonylurea" in term.name

    def test_unknown_term_raises(self):
        with pytest.raises(ValidationError):
            GeneOntology().term("GO:0000000")


class TestGeneration:
    def test_new_terms_get_unique_ids(self):
        ontology = GeneOntology()
        ids = {ontology.new_term(rng=0).term_id for _ in range(50)}
        assert len(ids) == 50

    def test_synthetic_ids_avoid_real_ranges(self):
        ontology = GeneOntology()
        term = ontology.new_term(rng=0)
        assert int(term.term_id.split(":")[1]) >= 900_000

    def test_parents_form_a_dag(self):
        ontology = GeneOntology()
        rng = ensure_rng(1)
        for _ in range(60):
            ontology.new_term(rng=rng)
        # ancestors terminates for every term (no cycles by construction)
        for term in ontology.terms():
            ancestors = ontology.ancestors(term.term_id)
            assert term.term_id not in ancestors

    def test_parents_share_namespace(self):
        ontology = GeneOntology()
        rng = ensure_rng(2)
        for _ in range(40):
            term = ontology.new_term(rng=rng)
            for parent_id in term.parents:
                assert ontology.term(parent_id).namespace == term.namespace

    def test_deterministic_given_seed(self):
        a = GeneOntology()
        b = GeneOntology()
        terms_a = [a.new_term(rng=ensure_rng(7)).term_id for _ in range(1)]
        terms_b = [b.new_term(rng=ensure_rng(7)).term_id for _ in range(1)]
        assert terms_a == terms_b

    def test_len_counts_terms(self):
        ontology = GeneOntology()
        baseline = len(ontology)
        ontology.new_term(rng=0)
        assert len(ontology) == baseline + 1
