"""Tests for the sequence toolkit."""

import pytest

from repro.biology.sequences import (
    AMINO_ACIDS,
    identity_to_evalue,
    mutate_sequence,
    random_protein_sequence,
    sequence_identity,
)
from repro.errors import ValidationError


class TestRandomSequence:
    def test_length_and_alphabet(self):
        seq = random_protein_sequence(50, rng=0)
        assert len(seq) == 50
        assert set(seq) <= set(AMINO_ACIDS)

    def test_deterministic(self):
        assert random_protein_sequence(30, rng=1) == random_protein_sequence(30, rng=1)

    def test_rejects_bad_length(self):
        with pytest.raises(ValidationError):
            random_protein_sequence(0)


class TestMutation:
    def test_zero_rate_is_identity(self):
        seq = random_protein_sequence(40, rng=2)
        assert mutate_sequence(seq, 0.0, rng=3) == seq

    def test_full_rate_changes_every_position(self):
        seq = random_protein_sequence(40, rng=4)
        mutated = mutate_sequence(seq, 1.0, rng=5)
        assert all(a != b for a, b in zip(seq, mutated))

    def test_rate_controls_identity(self):
        seq = random_protein_sequence(500, rng=6)
        light = mutate_sequence(seq, 0.1, rng=7)
        heavy = mutate_sequence(seq, 0.6, rng=8)
        assert sequence_identity(seq, light) > sequence_identity(seq, heavy)

    def test_rate_validated(self):
        with pytest.raises(ValidationError):
            mutate_sequence("AC", 1.5)


class TestIdentity:
    def test_identical(self):
        assert sequence_identity("ACDE", "ACDE") == 1.0

    def test_disjoint(self):
        assert sequence_identity("AAAA", "CCCC") == 0.0

    def test_length_mismatch_penalised(self):
        assert sequence_identity("ACDE", "AC") == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            sequence_identity("", "A")


class TestEvalueModel:
    def test_stronger_matches_give_smaller_evalues(self):
        weak = identity_to_evalue(0.2, 100)
        strong = identity_to_evalue(0.9, 100)
        assert strong < weak

    def test_longer_matches_give_smaller_evalues(self):
        short = identity_to_evalue(0.5, 20)
        long = identity_to_evalue(0.5, 200)
        assert long < short

    def test_floor_at_blast_minimum(self):
        assert identity_to_evalue(1.0, 10_000) == 1e-300

    def test_no_signal_gives_evalue_near_one(self):
        assert identity_to_evalue(0.0, 100) == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            identity_to_evalue(1.5, 100)
        with pytest.raises(ValidationError):
            identity_to_evalue(0.5, 0)
