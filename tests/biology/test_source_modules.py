"""Tests for the per-source schema modules."""

import pytest

from repro.biology.sources import (
    amigo,
    entrez_gene,
    entrez_protein,
    iproclass,
    ncbi_blast,
    pfam,
    tigrfam,
)
from repro.biology.ontology import GeneOntology
from repro.errors import IntegrityError, ValidationError


class TestEntrezProtein:
    def test_round_trip(self):
        db = entrez_protein.create_database()
        entrez_protein.add_protein(db, "P1", "ACDEF")
        entrez_protein.add_gene_xref(db, "P1", "EG:1")
        source = entrez_protein.make_source(db)
        assert source.name == "EntrezProtein"
        assert db.table("proteins").pk_lookup("P1")["seq"] == "ACDEF"

    def test_xref_requires_protein(self):
        db = entrez_protein.create_database()
        with pytest.raises(IntegrityError):
            entrez_protein.add_gene_xref(db, "GHOST", "EG:1")


class TestEntrezGene:
    def test_status_validated_eagerly(self):
        db = entrez_gene.create_database()
        with pytest.raises(ValidationError):
            entrez_gene.add_gene(db, "EG:1", "MadeUp")

    def test_annotation_requires_gene(self):
        db = entrez_gene.create_database()
        with pytest.raises(IntegrityError):
            entrez_gene.add_annotation(db, "EG:1", "GO:1", "IDA")

    def test_pr_binding_decodes_status(self):
        db = entrez_gene.create_database()
        entrez_gene.add_gene(db, "EG:1", "Validated")
        source = entrez_gene.make_source(db)
        (binding,) = source.entities
        row = db.table("genes").pk_lookup("EG:1")
        assert binding.pr(row) == 0.8

    def test_qr_binding_decodes_evidence(self):
        db = entrez_gene.create_database()
        entrez_gene.add_gene(db, "EG:1", "Reviewed")
        entrez_gene.add_annotation(db, "EG:1", "GO:1", "IEA")
        source = entrez_gene.make_source(db)
        (binding,) = source.relationships
        (row,) = db.table("gene_go").rows()
        assert binding.qr(row) == 0.3


class TestAmigo:
    def test_load_ontology(self):
        db = amigo.create_database()
        ontology = GeneOntology()
        count = amigo.load_ontology(db, ontology)
        assert count == len(ontology)
        assert len(db.table("terms")) == count

    def test_label_includes_name(self):
        db = amigo.create_database()
        amigo.add_term(db, "GO:1", "kinase activity", "molecular_function")
        source = amigo.make_source(db)
        (binding,) = source.entities
        (row,) = db.table("terms").rows()
        assert "kinase" in binding.label(row)


class TestNcbiBlast:
    def test_add_hit_populates_three_tables(self):
        db = ncbi_blast.create_database()
        ncbi_blast.add_hit(db, "P1", "H1", 1e-60, "EG:9", sequence="ACD")
        assert len(db.table("hits")) == 1
        assert len(db.table("blast1")) == 1
        assert len(db.table("blast2")) == 1

    def test_qr_decodes_evalue(self):
        db = ncbi_blast.create_database()
        ncbi_blast.add_hit(db, "P1", "H1", 1e-150, "EG:9")
        source = ncbi_blast.make_source(db)
        blast1 = next(
            b for b in source.relationships if b.relationship == "NCBIBlast1"
        )
        (row,) = db.table("blast1").rows()
        assert blast1.qr(row) == pytest.approx(0.5)


class TestFamilySources:
    @pytest.mark.parametrize("module", [pfam, tigrfam], ids=["pfam", "tigrfam"])
    def test_schema_round_trip(self, module):
        db = module.create_database()
        module.add_family(db, "F1")
        module.add_match(db, "P1", "F1", 1e-90)
        module.add_family_go(db, "F1", "GO:1")
        source = module.make_source(db)
        assert len(source.relationships) == 2

    def test_match_requires_family(self):
        db = pfam.create_database()
        with pytest.raises(IntegrityError):
            pfam.add_match(db, "P1", "GHOST", 1e-10)

    def test_tigrfam_entity_set_differs_from_pfam(self):
        pfam_source = pfam.make_source(pfam.create_database())
        tigr_source = tigrfam.make_source(tigrfam.create_database())
        assert pfam_source.entities[0].entity_set == "PfamFamily"
        assert tigr_source.entities[0].entity_set == "TigrFamFamily"


class TestIproclass:
    def test_gold_lookup(self):
        db = iproclass.create_database()
        iproclass.add_gold_function(db, "P1", "GO:1")
        iproclass.add_gold_function(db, "P1", "GO:2")
        iproclass.add_gold_function(db, "P2", "GO:3")
        assert iproclass.gold_functions(db, "P1") == {"GO:1", "GO:2"}
        assert iproclass.gold_functions(db, "PX") == set()

    def test_duplicate_gold_rejected(self):
        db = iproclass.create_database()
        iproclass.add_gold_function(db, "P1", "GO:1")
        with pytest.raises(IntegrityError):
            iproclass.add_gold_function(db, "P1", "GO:1")
