"""CLI acceptance: ``python -m repro.analysis`` over the fixtures."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
DEFECTS = str(Path(__file__).with_name("defect_schemas.py"))


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + str(
        Path(__file__).parent
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


class TestDefectiveSchema:
    def test_reports_every_code_exactly_once_and_exits_nonzero(self):
        result = run_cli(DEFECTS, "--format", "json")
        assert result.returncode == 2, result.stderr
        data = json.loads(result.stdout)
        (report,) = data["reports"]
        counts = {}
        for entry in report["detections"]:
            counts[entry["code"]] = counts.get(entry["code"], 0) + 1
        assert counts == {f"REPRO10{i}": 1 for i in range(1, 9)}

    def test_text_format_names_every_code(self):
        result = run_cli(DEFECTS)
        assert result.returncode == 2
        for i in range(1, 9):
            assert f"REPRO10{i}" in result.stdout
        assert "2 error(s)" in result.stdout

    def test_fail_on_error_still_fails_here(self):
        result = run_cli(DEFECTS, "--fail-on", "error")
        assert result.returncode == 2

    def test_select_narrows_the_run(self):
        result = run_cli(DEFECTS, "--select", "REPRO103", "--format", "json")
        # notes alone sit below the default warning threshold
        assert result.returncode == 0
        (report,) = json.loads(result.stdout)["reports"]
        assert [e["code"] for e in report["detections"]] == ["REPRO103"]

    def test_baseline_roundtrip_silences_the_findings(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        wrote = run_cli(DEFECTS, "--write-baseline", str(baseline))
        assert wrote.returncode == 0
        assert "8 suppression(s)" in wrote.stdout
        rerun = run_cli(DEFECTS, "--baseline", str(baseline))
        assert rerun.returncode == 0, rerun.stdout


class TestCleanSchemas:
    def test_clean_generated_workload_exits_zero(self):
        # layers=2 is a root star: reducible, indexed, defect-free
        result = run_cli("--mediated-layers", "layers=2,width=4,rng=7")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s), 0 warning(s), 0 note(s)" in result.stdout

    def test_three_layer_workload_warns_about_irreducibility(self):
        result = run_cli("--mediated-layers", "layers=3,width=4,rng=7")
        assert result.returncode == 1
        assert "REPRO101" in result.stdout

    def test_module_attr_target(self):
        result = run_cli("defect_schemas:clean_context", "--format", "json")
        assert result.returncode == 0, result.stderr
        (report,) = json.loads(result.stdout)["reports"]
        assert report["detections"] == []


class TestErgonomics:
    def test_list_detectors(self):
        result = run_cli("--list-detectors")
        assert result.returncode == 0
        for i in range(1, 9):
            assert f"REPRO10{i}" in result.stdout

    def test_no_targets_is_a_usage_error(self):
        result = run_cli()
        assert result.returncode == 2
        assert "no targets" in result.stderr

    def test_missing_file_is_an_analysis_error(self):
        result = run_cli("does_not_exist.py")
        assert result.returncode == 2
        assert "does not exist" in result.stderr

    def test_unknown_select_code_fails_loudly(self):
        result = run_cli(DEFECTS, "--select", "REPRO999")
        assert result.returncode == 2
        assert "REPRO999" in result.stderr
