"""Satellite regression: the runtime sink-rule enforcement and the
REPRO104 detector share one message implementation — an operator sees
the *identical* diagnosis at deploy time and at lint time."""

import pytest

from defect_schemas import _add_clean_pair, _non_sink_router
from repro.analysis import run_analysis
from repro.analysis.framework import AnalysisContext
from repro.engine.sharded import HashPartitioner, ShardRouter
from repro.errors import QueryError, SchemaError
from repro.integration.mediator import Mediator
from repro.integration.partition import (
    no_sink_sets_message,
    non_sink_partition_message,
    partition_mediator,
    source_partition_message,
    unknown_partition_sets_message,
)
from repro.integration.sources import DataSource, RelationshipBinding


def _pair_mediator():
    mediator = Mediator()
    _add_clean_pair(mediator)
    return mediator


class TestRuntimeUsesSharedMessages:
    def test_partition_mediator_non_sink_error_is_the_shared_message(self):
        mediator = _pair_mediator()
        expected = non_sink_partition_message(mediator, ["X"])
        assert expected is not None
        with pytest.raises(SchemaError) as excinfo:
            partition_mediator(mediator, 2, HashPartitioner(2), ["X"])
        assert str(excinfo.value) == expected

    def test_partition_mediator_unknown_set_error_is_the_shared_message(self):
        mediator = _pair_mediator()
        expected = unknown_partition_sets_message(mediator, ["Zed"])
        assert expected is not None
        with pytest.raises(QueryError) as excinfo:
            partition_mediator(mediator, 2, HashPartitioner(2), ["Zed"])
        assert str(excinfo.value) == expected

    def test_router_partition_no_sink_error_is_the_shared_message(self):
        from defect_schemas import _add_cycle

        mediator = Mediator()
        _add_cycle(mediator)  # P <-> Q: no sinks anywhere
        with pytest.raises(SchemaError) as excinfo:
            ShardRouter.partition(mediator, 2)
        assert str(excinfo.value) == no_sink_sets_message()

    def test_check_registrable_error_is_the_shared_message(self):
        mediator = _pair_mediator()
        router = ShardRouter.partition(mediator, 2)  # partitions sink Y
        late = DataSource(
            name="Late",
            database=mediator.sources[0].database,
            entities=(),
            relationships=(
                RelationshipBinding(
                    relationship="y_onward",
                    table="links_xy",
                    source_entity="Y",
                    source_column="src",
                    target_entity="X",
                    target_column="dst",
                ),
            ),
        )
        expected = source_partition_message(late, router.partitioned_sets)
        assert expected is not None
        with pytest.raises(SchemaError) as excinfo:
            router.check_registrable(late)
        assert str(excinfo.value) == expected


class TestDetectorParity:
    def test_repro104_detection_equals_runtime_message(self):
        mediator = _pair_mediator()
        context = AnalysisContext(
            mediator=mediator,
            router=_non_sink_router(mediator, "X"),
            name="parity",
        )
        report = run_analysis(context, select=["REPRO104"])
        (detection,) = report.detections
        runtime_message = non_sink_partition_message(mediator, ["X"])
        assert detection.message == runtime_message
        # and the same text partition_mediator raises with at runtime
        with pytest.raises(SchemaError) as excinfo:
            partition_mediator(mediator, 2, HashPartitioner(2), ["X"])
        assert str(excinfo.value) == detection.message
