"""Linting is a read-only observer: it never mutates mediator epochs,
table versions, confidence versions or engine cache counters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from defect_schemas import all_defects
from repro.analysis import run_analysis
from repro.errors import ReproError
from repro.workloads import mediated_layers


def snapshot(session):
    mediator = session.mediator
    return {
        "epoch": mediator.epoch,
        "confidences": mediator.confidences.version,
        "tables": {
            (source.name, binding.table): source.database.table(
                binding.table
            ).version
            for source in mediator.sources
            for binding in list(source.entities) + list(source.relationships)
        },
        "stats": session.stats_snapshot().as_dict(),
    }


@settings(max_examples=12, deadline=None)
@given(
    layers=st.integers(min_value=2, max_value=4),
    width=st.integers(min_value=3, max_value=8),
    cyclic=st.booleans(),
    dangling=st.sampled_from([0.0, 0.3]),
    rng=st.integers(min_value=0, max_value=999),
)
def test_lint_never_mutates_session_state(layers, width, cyclic, dangling, rng):
    workload = mediated_layers(
        layers=layers,
        width=width,
        fan_out=2,
        rng=rng,
        cyclic=cyclic,
        dangling_rate=dangling,
    )
    with workload.open_session() as session:
        # warm the engine so cache counters have something to corrupt
        # (high dangling rates can leave a query answerless — that is
        # fine, the caches still saw traffic)
        try:
            session.execute(workload.spec(method="in_edge"))
        except ReproError:
            pass
        before = snapshot(session)
        first = session.lint()
        assert snapshot(session) == before
        # a second pass sees the identical (deterministic) report
        second = session.lint()
        assert snapshot(session) == before
        assert [
            (d.code, d.location, d.message) for d in first.detections
        ] == [(d.code, d.location, d.message) for d in second.detections]


def test_lint_is_side_effect_free_on_the_all_defects_schema():
    # the heaviest detectors (sensitivity perturbation, reducibility
    # search, partition checks) all run here — none may write
    context = all_defects()
    mediator = context.mediator
    before = (
        mediator.epoch,
        mediator.confidences.version,
        {
            (s.name, b.table): s.database.table(b.table).version
            for s in mediator.sources
            for b in list(s.entities) + list(s.relationships)
        },
    )
    run_analysis(context)
    after = (
        mediator.epoch,
        mediator.confidences.version,
        {
            (s.name, b.table): s.database.table(b.table).version
            for s in mediator.sources
            for b in list(s.entities) + list(s.relationships)
        },
    )
    assert after == before
