"""Purpose-built bad schemas: one per REPRO code, plus an all-defects
schema where every built-in detector fires **exactly once**.

Each ``schema_reproNNN()`` returns an
:class:`~repro.analysis.AnalysisContext` whose only finding is that
code; ``clean_context()`` is defect-free. ``lint_target()`` makes this
module loadable by ``python -m repro.analysis`` directly (it returns
the all-defects context).
"""

from __future__ import annotations

from repro.analysis import AnalysisContext
from repro.api.config import EngineConfig
from repro.engine.sharded import HashPartitioner, ShardRouter
from repro.integration.mediator import Mediator
from repro.integration.sources import (
    DataSource,
    EntityBinding,
    RelationshipBinding,
    column_weight,
)
from repro.storage.column import Column, ColumnType
from repro.storage.database import Database


def _entity_table(db: Database, name: str, ids) -> None:
    db.create_table(name, [Column("id", ColumnType.TEXT)], primary_key=["id"])
    db.insert_many(name, [{"id": value} for value in ids])


def _link_table(db: Database, name: str, pairs, indexed: bool = True,
                weights=None, nullable: bool = False) -> None:
    columns = [Column("src", ColumnType.TEXT), Column("dst", ColumnType.TEXT)]
    if weights is not None:
        columns.append(Column("w", ColumnType.FLOAT, nullable=nullable))
    db.create_table(name, columns)
    rows = []
    for index, (src, dst) in enumerate(pairs):
        row = {"src": src, "dst": dst}
        if weights is not None:
            row["w"] = weights[index]
        rows.append(row)
    db.insert_many(name, rows)
    if indexed:
        db.table(name).create_index("by_src", ["src"])


def _rel(name: str, table: str, source: str, target: str, qr=None):
    kwargs = {} if qr is None else {"qr": qr}
    return RelationshipBinding(
        relationship=name,
        table=table,
        source_entity=source,
        source_column="src",
        target_entity=target,
        target_column="dst",
        **kwargs,
    )


# ---------------------------------------------------------------------- #
# building blocks (each adds ONE defect, or none, to a mediator)
# ---------------------------------------------------------------------- #


def _add_diamond(mediator: Mediator, index_bd: bool = True) -> None:
    """A -> {B, C} -> D: a Wheatstone bridge into sink D. All links are
    unprovable [m:n], so D's ancestor schema is irreducible (REPRO101).
    ``index_bd=False`` additionally leaves the B->D probe column
    unindexed (REPRO105)."""
    db = Database("diamond_db")
    _entity_table(db, "a_ents", ["a1", "a2"])
    _entity_table(db, "b_ents", ["b1"])
    _entity_table(db, "c_ents", ["c1"])
    _entity_table(db, "d_ents", ["d1", "d2"])
    _link_table(db, "links_ab", [("a1", "b1"), ("a2", "b1")])
    _link_table(db, "links_ac", [("a1", "c1"), ("a2", "c1")])
    _link_table(db, "links_bd", [("b1", "d1"), ("b1", "d2")], indexed=index_bd)
    _link_table(db, "links_cd", [("c1", "d1"), ("c1", "d2")])
    mediator.register(
        DataSource(
            name="Diamond",
            database=db,
            entities=(
                EntityBinding("A", "a_ents", "id"),
                EntityBinding("B", "b_ents", "id"),
                EntityBinding("C", "c_ents", "id"),
                EntityBinding("D", "d_ents", "id"),
            ),
            relationships=(
                _rel("a_to_b", "links_ab", "A", "B"),
                _rel("a_to_c", "links_ac", "A", "C"),
                _rel("b_to_d", "links_bd", "B", "D"),
                _rel("c_to_d", "links_cd", "C", "D"),
            ),
        )
    )


def _add_ghost(mediator: Mediator) -> None:
    """G -> Ghost where no source provides 'Ghost' (REPRO102)."""
    db = Database("ghost_db")
    _entity_table(db, "g_ents", ["g1"])
    _link_table(db, "links_gx", [("g1", "x1")])
    mediator.register(
        DataSource(
            name="Ghosts",
            database=db,
            entities=(EntityBinding("G", "g_ents", "id"),),
            relationships=(_rel("haunts", "links_gx", "G", "Ghost"),),
        )
    )


def _add_cycle(mediator: Mediator) -> None:
    """P -> Q -> P: a binding cycle (REPRO103)."""
    db = Database("cycle_db")
    _entity_table(db, "p_ents", ["p1"])
    _entity_table(db, "q_ents", ["q1"])
    _link_table(db, "links_pq", [("p1", "q1")])
    _link_table(db, "links_qp", [("q1", "p1")])
    mediator.register(
        DataSource(
            name="Cycle",
            database=db,
            entities=(
                EntityBinding("P", "p_ents", "id"),
                EntityBinding("Q", "q_ents", "id"),
            ),
            relationships=(
                _rel("p_to_q", "links_pq", "P", "Q"),
                _rel("q_to_p", "links_qp", "Q", "P"),
            ),
        )
    )


def _add_sensitivity(mediator: Mediator) -> None:
    """R -> {S1, S2} with qs('to_s1') tuned so close to the S1/S2
    ranking boundary that a ±0.05 perturbation flips it (REPRO107):
    effective edge weights 0.9 * 0.8 = 0.72 vs 0.74."""
    db = Database("sense_db")
    _entity_table(db, "r_ents", ["r1"])
    _entity_table(db, "s1_ents", ["s1a", "s1b"])
    _entity_table(db, "s2_ents", ["s2a", "s2b"])
    _link_table(
        db, "links_rs1", [("r1", "s1a"), ("r1", "s1b")], weights=[0.8, 0.8]
    )
    _link_table(
        db, "links_rs2", [("r1", "s2a"), ("r1", "s2b")], weights=[0.74, 0.74]
    )
    mediator.register(
        DataSource(
            name="Sense",
            database=db,
            entities=(
                EntityBinding("R", "r_ents", "id"),
                EntityBinding("S1", "s1_ents", "id"),
                EntityBinding("S2", "s2_ents", "id"),
            ),
            relationships=(
                _rel("to_s1", "links_rs1", "R", "S1", qr=column_weight("w")),
                _rel("to_s2", "links_rs2", "R", "S2", qr=column_weight("w")),
            ),
        )
    )
    mediator.confidences.set_relationship_confidence("to_s1", 0.9)


def _add_vectorized_blocker(mediator: Mediator) -> None:
    """A vectorized-storage entity table whose declared weight column is
    nullable, so the array fast path silently degrades (REPRO106)."""
    db = Database("vec_db", storage="vectorized")
    db.create_table(
        "vents",
        [
            Column("id", ColumnType.TEXT),
            Column("w", ColumnType.FLOAT, nullable=True),
        ],
        primary_key=["id"],
    )
    db.insert_many("vents", [{"id": "v1", "w": 0.5}, {"id": "v2", "w": 0.6}])
    mediator.register(
        DataSource(
            name="Vec",
            database=db,
            entities=(
                EntityBinding("V", "vents", "id", pr=column_weight("w")),
            ),
        )
    )


def _add_clean_pair(mediator: Mediator, indexed: bool = True) -> Database:
    """X -> Y, defect-free when ``indexed`` (Y's ancestor schema is a
    root star, everything is indexed and pk'd)."""
    db = Database("pair_db")
    _entity_table(db, "x_ents", ["x1", "x2"])
    _entity_table(db, "y_ents", ["y1", "y2"])
    _link_table(
        db, "links_xy", [("x1", "y1"), ("x2", "y2")], indexed=indexed
    )
    mediator.register(
        DataSource(
            name="Pair",
            database=db,
            entities=(
                EntityBinding("X", "x_ents", "id"),
                EntityBinding("Y", "y_ents", "id"),
            ),
            relationships=(_rel("x_to_y", "links_xy", "X", "Y"),),
        )
    )
    return db


def _non_sink_router(mediator: Mediator, partitioned: str) -> ShardRouter:
    """A hand-built two-shard router partitioning a NON-sink set — the
    silent layout mistake ShardRouter.partition would refuse to make."""
    return ShardRouter(
        [mediator, mediator], HashPartitioner(2), {partitioned: "id"}
    )


# ---------------------------------------------------------------------- #
# one context per code
# ---------------------------------------------------------------------- #


def clean_context() -> AnalysisContext:
    mediator = Mediator()
    _add_clean_pair(mediator)
    return AnalysisContext(mediator=mediator, name="clean")


def schema_repro101() -> AnalysisContext:
    mediator = Mediator()
    _add_diamond(mediator)
    return AnalysisContext(mediator=mediator, name="repro101")


def schema_repro102() -> AnalysisContext:
    mediator = Mediator()
    _add_ghost(mediator)
    return AnalysisContext(mediator=mediator, name="repro102")


def schema_repro103() -> AnalysisContext:
    mediator = Mediator()
    _add_cycle(mediator)
    return AnalysisContext(mediator=mediator, name="repro103")


def schema_repro104() -> AnalysisContext:
    mediator = Mediator()
    _add_clean_pair(mediator)
    return AnalysisContext(
        mediator=mediator,
        router=_non_sink_router(mediator, "X"),
        name="repro104",
    )


def schema_repro105() -> AnalysisContext:
    mediator = Mediator()
    _add_clean_pair(mediator, indexed=False)
    return AnalysisContext(mediator=mediator, name="repro105")


def schema_repro106() -> AnalysisContext:
    mediator = Mediator()
    _add_vectorized_blocker(mediator)
    return AnalysisContext(mediator=mediator, name="repro106")


def schema_repro107() -> AnalysisContext:
    mediator = Mediator()
    _add_sensitivity(mediator)
    return AnalysisContext(mediator=mediator, name="repro107")


def schema_repro108() -> AnalysisContext:
    mediator = Mediator()
    db = _add_clean_pair(mediator)
    # two rows, a one-entry log: the first batch refresh overflows it
    db.table("x_ents").change_log.limit = 1
    return AnalysisContext(mediator=mediator, name="repro108")


PER_CODE = {
    "REPRO101": schema_repro101,
    "REPRO102": schema_repro102,
    "REPRO103": schema_repro103,
    "REPRO104": schema_repro104,
    "REPRO105": schema_repro105,
    "REPRO106": schema_repro106,
    "REPRO107": schema_repro107,
    "REPRO108": schema_repro108,
}


# ---------------------------------------------------------------------- #
# the all-defects schema: every code exactly once
# ---------------------------------------------------------------------- #


def all_defects() -> AnalysisContext:
    mediator = Mediator()
    _add_diamond(mediator, index_bd=False)  # REPRO101 + REPRO105
    _add_ghost(mediator)  # REPRO102
    _add_cycle(mediator)  # REPRO103
    _add_sensitivity(mediator)  # REPRO107
    _add_vectorized_blocker(mediator)  # REPRO106
    diamond_db = mediator.sources[0].database
    diamond_db.table("a_ents").change_log.limit = 1  # REPRO108
    return AnalysisContext(
        mediator=mediator,
        config=EngineConfig(),
        router=_non_sink_router(mediator, "A"),  # REPRO104
        name="all-defects",
    )


def lint_target() -> AnalysisContext:
    """Entry point for ``python -m repro.analysis tests/analysis/defect_schemas.py``."""
    return all_defects()
