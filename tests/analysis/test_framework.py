"""Framework behavior: registry, crash isolation, suppression,
reporters and baseline files."""

import json

import pytest

from defect_schemas import all_defects, clean_context
from repro.analysis import (
    AnalysisError,
    Detection,
    Severity,
    detector,
    load_baseline,
    registered_detectors,
    render_json,
    render_text,
    run_analysis,
    unregister_detector,
    write_baseline,
)
from repro.analysis.framework import CRASH_CODE


@pytest.fixture
def temp_detector():
    """Register a throwaway detector and guarantee cleanup."""
    registered = []

    def register(code, func, **kwargs):
        kwargs.setdefault("name", f"temp-{code.lower()}")
        detector(code, **kwargs)(func)
        registered.append(code)

    yield register
    for code in registered:
        unregister_detector(code)


class TestRegistry:
    def test_duplicate_code_is_rejected(self, temp_detector):
        temp_detector("REPRO900", lambda context: [])
        with pytest.raises(AnalysisError, match="already registered"):
            detector("REPRO900", name="clash")(lambda context: [])

    def test_unregister_then_reregister(self, temp_detector):
        temp_detector("REPRO901", lambda context: [])
        unregister_detector("REPRO901")
        assert "REPRO901" not in [s.code for s in registered_detectors()]
        temp_detector("REPRO901", lambda context: [])

    def test_description_defaults_to_docstring(self, temp_detector):
        def check(context):
            """First line wins.

            Not this one."""
            return []

        temp_detector("REPRO902", check)
        spec = {s.code: s for s in registered_detectors()}["REPRO902"]
        assert spec.description == "First line wins."

    def test_custom_detector_runs_alongside_builtins(self, temp_detector):
        temp_detector(
            "REPRO903",
            lambda context: [
                Detection(
                    code="REPRO903",
                    message=f"saw {len(context.provided_sets())} sets",
                    severity=Severity.NOTE,
                )
            ],
        )
        report = run_analysis(clean_context())
        assert report.codes() == {"REPRO903": 1}
        assert report.detections[0].detector == "temp-repro903"


class TestIsolation:
    def test_crashing_detector_becomes_repro000(self, temp_detector):
        def boom(context):
            raise ValueError("kaboom")

        temp_detector("REPRO904", boom)
        report = run_analysis(all_defects())
        crash = [d for d in report.detections if d.code == CRASH_CODE]
        assert len(crash) == 1
        assert crash[0].severity == Severity.ERROR
        assert crash[0].location == "detectors.REPRO904"
        assert "ValueError: kaboom" in crash[0].message
        # every other detector still ran and found its defect
        for code in [f"REPRO10{i}" for i in range(1, 9)]:
            assert report.codes()[code] == 1

    def test_unknown_select_code_raises(self):
        with pytest.raises(AnalysisError, match="REPRO999"):
            run_analysis(clean_context(), select=["REPRO999"])


class TestSuppression:
    def test_exact_location_suppression(self):
        report = run_analysis(
            all_defects(),
            suppressions=[
                {"code": "REPRO101", "location": "entity_sets.D"}
            ],
        )
        assert "REPRO101" not in report.codes()
        assert report.suppressed == 1

    def test_wildcard_location_suppression(self):
        report = run_analysis(
            all_defects(), suppressions=[{"code": "REPRO105", "location": "*"}]
        )
        assert "REPRO105" not in report.codes()

    def test_wrong_location_does_not_suppress(self):
        report = run_analysis(
            all_defects(),
            suppressions=[{"code": "REPRO101", "location": "entity_sets.X"}],
        )
        assert report.codes()["REPRO101"] == 1
        assert report.suppressed == 0


class TestReporters:
    def test_render_text_has_one_block_per_detection_and_a_summary(self):
        report = run_analysis(all_defects())
        text = render_text(report)
        for code in report.codes():
            assert code in text
        assert "2 error(s)" in text
        assert "all-defects:" in text

    def test_render_json_round_trips(self):
        report = run_analysis(all_defects())
        data = json.loads(render_json(report))
        assert data["exit_code"] == 2
        assert data["counts"]["error"] == 2
        assert len(data["detections"]) == 8
        codes = {entry["code"] for entry in data["detections"]}
        assert codes == set(report.codes())


class TestBaseline:
    def test_write_then_load_suppresses_everything(self, tmp_path):
        report = run_analysis(all_defects())
        path = tmp_path / "baseline.json"
        written = write_baseline(path, report.detections)
        assert written == 8
        entries = load_baseline(path)
        rerun = run_analysis(all_defects(), suppressions=entries)
        assert rerun.detections == ()
        assert rerun.suppressed == 8
        assert rerun.exit_code == 0

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="does not exist"):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"suppress": [{"location": "x"}]}')
        with pytest.raises(AnalysisError, match="'code'"):
            load_baseline(path)
