"""Golden-output tests: every built-in detector on its purpose-built
bad schema, the clean schema, and the all-defects schema."""

import pytest

from defect_schemas import PER_CODE, all_defects, clean_context
from repro.analysis import Severity, registered_detectors, run_analysis

EXPECTED_SEVERITY = {
    "REPRO101": Severity.WARNING,
    "REPRO102": Severity.ERROR,
    "REPRO103": Severity.NOTE,
    "REPRO104": Severity.ERROR,
    "REPRO105": Severity.WARNING,
    "REPRO106": Severity.WARNING,
    "REPRO107": Severity.WARNING,
    "REPRO108": Severity.WARNING,
}

EXPECTED_LOCATION = {
    "REPRO101": "entity_sets.D",
    "REPRO102": "sources.Ghosts.relationships.haunts",
    "REPRO103": "entity_sets.P+Q",
    "REPRO104": "router.partitioned_sets",
    "REPRO105": "sources.Pair.relationships.x_to_y",
    "REPRO106": "sources.Vec.entities.V",
    "REPRO107": "confidences.qs.to_s1",
    "REPRO108": "sources.Pair.tables.x_ents",
}


def test_builtin_suite_is_complete():
    assert [spec.code for spec in registered_detectors()] == sorted(PER_CODE)


def test_clean_schema_has_no_findings():
    report = run_analysis(clean_context())
    assert report.detections == ()
    assert report.exit_code == 0
    assert report.max_severity is None
    assert len(report.ran) == len(PER_CODE)


@pytest.mark.parametrize("code", sorted(PER_CODE))
def test_each_defect_fires_its_code_exactly_once(code):
    report = run_analysis(PER_CODE[code]())
    assert report.codes() == {code: 1}
    detection = report.detections[0]
    assert detection.severity == EXPECTED_SEVERITY[code]
    assert detection.location == EXPECTED_LOCATION[code]
    assert detection.detector  # the runner stamps the emitting detector
    assert code in str(detection)


def test_all_defects_schema_fires_every_code_exactly_once():
    report = run_analysis(all_defects())
    assert report.codes() == {code: 1 for code in PER_CODE}
    assert report.max_severity == Severity.ERROR
    assert report.exit_code == 2
    # severity-sorted: both errors first, the notes last
    assert [d.code for d in report.detections[:2]] == ["REPRO102", "REPRO104"]
    assert report.detections[-1].code == "REPRO103"


def test_detection_messages_name_the_offending_elements():
    report = run_analysis(all_defects())
    by_code = {d.code: d for d in report.detections}
    assert "'D'" in by_code["REPRO101"].message
    assert "'Ghost'" in by_code["REPRO102"].message
    assert "ancestor-closure guarantee" in by_code["REPRO104"].message
    assert "'src'" in by_code["REPRO105"].message
    assert "nullable" in by_code["REPRO106"].message
    assert "'to_s1'" in by_code["REPRO107"].message
    assert "change log" in by_code["REPRO108"].message


def test_select_runs_only_the_named_detectors():
    report = run_analysis(all_defects(), select=["REPRO102", "REPRO108"])
    assert report.ran == ("REPRO102", "REPRO108")
    assert set(report.codes()) == {"REPRO102", "REPRO108"}


def test_unindexed_entity_key_column_also_fires_repro105():
    # the entity-table flavor: a key column resolved by full scans
    from repro.analysis import AnalysisContext
    from repro.integration.mediator import Mediator
    from repro.integration.sources import DataSource, EntityBinding
    from repro.storage.column import Column, ColumnType
    from repro.storage.database import Database

    db = Database("nopk")
    db.create_table("ents", [Column("id", ColumnType.TEXT)])
    db.insert("ents", {"id": "e1"})
    mediator = Mediator()
    mediator.register(
        DataSource(
            name="NoPk",
            database=db,
            entities=(EntityBinding("E", "ents", "id"),),
        )
    )
    report = run_analysis(AnalysisContext(mediator=mediator, name="nopk"))
    assert report.codes() == {"REPRO105": 1}
    assert report.detections[0].location == "sources.NoPk.entities.E"


def test_sharded_config_without_sinks_fires_repro104():
    from dataclasses import replace

    from repro.analysis import AnalysisContext
    from repro.api.config import EngineConfig
    from repro.integration.mediator import Mediator

    from defect_schemas import _add_cycle

    mediator = Mediator()
    _add_cycle(mediator)  # P <-> Q: every set has outgoing bindings
    context = AnalysisContext(
        mediator=mediator,
        config=replace(EngineConfig(), shards=2),
        name="no-sinks",
    )
    report = run_analysis(context, select=["REPRO104"])
    assert report.codes() == {"REPRO104": 1}
    assert report.detections[0].location == "config.shards"
