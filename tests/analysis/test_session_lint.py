"""Session integration: ``Session.lint()`` and the ``open_session``
lint gate."""

import warnings

import pytest

from defect_schemas import all_defects, clean_context
from repro.analysis import AnalysisError, Severity
from repro.api import open_session
from repro.errors import QueryError
from repro.workloads import mediated_layers


class TestSessionLint:
    def test_lint_on_clean_session(self):
        context = clean_context()
        with open_session(mediator=context.mediator) as session:
            report = session.lint()
        assert report.detections == ()
        assert report.exit_code == 0

    def test_lint_sees_session_config_and_router(self):
        workload = mediated_layers(layers=3, width=4, rng=7, shards=2)
        with workload.open_session() as session:
            assert session.sharded
            report = session.lint()
        # the workload's router partitions real sinks: no REPRO104,
        # only the truthful irreducibility warning
        assert set(report.codes()) == {"REPRO101"}

    def test_lint_select_and_suppressions_pass_through(self):
        context = all_defects()
        with open_session(
            mediator=context.mediator, router=context.router
        ) as session:
            report = session.lint(
                select=["REPRO104"],
                suppressions=[{"code": "REPRO104", "location": "*"}],
            )
        assert report.detections == ()
        assert report.suppressed == 1

    def test_lint_on_closed_session_raises(self):
        session = open_session(mediator=clean_context().mediator)
        session.close()
        with pytest.raises(Exception, match="closed"):
            session.lint()


class TestOpenSessionGate:
    def test_default_is_off(self):
        context = all_defects()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail this
            session = open_session(
                mediator=context.mediator, router=context.router
            )
        session.close()

    def test_warn_mode_emits_a_warning_per_finding_but_opens(self):
        context = all_defects()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = open_session(
                mediator=context.mediator, router=context.router, lint="warn"
            )
        assert not session.closed
        session.close()
        messages = [str(w.message) for w in caught]
        assert len(messages) == 8
        assert any("REPRO104" in m for m in messages)

    def test_error_mode_refuses_defective_schema_with_codes(self):
        context = all_defects()
        with pytest.raises(AnalysisError) as excinfo:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                open_session(
                    mediator=context.mediator,
                    router=context.router,
                    lint="error",
                )
        message = str(excinfo.value)
        assert "REPRO102" in message and "REPRO104" in message
        assert all(
            d.severity == Severity.ERROR for d in excinfo.value.detections
        )

    def test_error_mode_admits_warning_only_schema(self):
        # layers=3 only warns (REPRO101): error mode lets it through
        workload = mediated_layers(layers=3, width=4, rng=7)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = workload.open_session(lint="error")
        assert not session.closed
        session.close()
        assert any("REPRO101" in str(w.message) for w in caught)

    def test_error_mode_admits_clean_schema(self):
        with open_session(
            mediator=clean_context().mediator, lint="error"
        ) as session:
            assert not session.closed

    def test_invalid_lint_value_is_rejected(self):
        with pytest.raises(QueryError, match="lint"):
            open_session(lint="loud")
