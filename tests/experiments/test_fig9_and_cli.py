"""Tests for the Fig 9 evidence-shape artefact and the experiments CLI."""

import pytest

from repro.experiments.__main__ import ARTEFACTS, main as cli_main
from repro.experiments.fig9_evidence_shape import compute as fig9_compute


class TestFig9:
    def test_scenario2_inversion(self):
        """The core of Fig 9: less-known relevant answers have *fewer*
        paths than decoys but a far stronger best path."""
        shapes = fig9_compute(2)
        relevant, other = shapes["relevant"], shapes["other"]
        assert relevant.mean_paths < other.mean_paths
        assert relevant.mean_best_path > other.mean_best_path + 0.3

    def test_scenario1_redundancy(self):
        shapes = fig9_compute(1, limit=4)
        relevant, other = shapes["relevant"], shapes["other"]
        assert relevant.mean_paths > other.mean_paths

    def test_counts_partition_answers(self):
        shapes = fig9_compute(3, limit=3)
        total = shapes["relevant"].n_answers + shapes["other"].n_answers
        expected = 47 + 18 + 5  # Table 3 sizes of the first three cases
        assert total == expected
        assert shapes["relevant"].n_answers == 3


class TestCli:
    def test_list_flag(self, capsys):
        assert cli_main(["--list"]) == 0
        output = capsys.readouterr().out
        for artefact in ("fig4", "fig5", "table2", "star", "fig9"):
            assert artefact in output

    def test_unknown_artefact_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["figZZ"])

    def test_single_artefact_runs(self, capsys):
        assert cli_main(["fig4"]) == 0
        output = capsys.readouterr().out
        assert "wheatstone" in output

    def test_registry_covers_paper_artefacts(self):
        for artefact in (
            "fig1", "fig2", "fig4", "table1", "fig5", "table2", "table3",
            "fig6", "fig7", "fig8a", "fig8b", "thm31",
        ):
            assert artefact in ARTEFACTS
