"""Calibration regression guard.

The scenario generator was calibrated so the Fig 5 results reproduce
the paper's shape; this module pins the seed-0 closed-form numbers so a
drive-by change to the evidence profiles, the confidences, or the
generator cannot silently break the reproduction. All scoring here is
deterministic (closed-form reliability, converged propagation/diffusion,
counting), so the tolerances only absorb arithmetic reordering, not
sampling noise.
"""

import pytest

from repro.biology.scenarios import build_scenario
from repro.experiments.runner import evaluate_scenario_ap

#: pinned seed-0 means (see EXPERIMENTS.md); tolerance absorbs float
#: reordering only
PINNED = {
    1: {
        "reliability": 0.84, "propagation": 0.84, "diffusion": 0.73,
        "in_edge": 0.85, "path_count": 0.84, "random": 0.42,
    },
    2: {
        "reliability": 0.66, "propagation": 0.52, "diffusion": 0.94,
        "in_edge": 0.03, "path_count": 0.03, "random": 0.09,
    },
    3: {
        "reliability": 0.62, "propagation": 0.58, "diffusion": 0.39,
        "in_edge": 0.48, "path_count": 0.34, "random": 0.29,
    },
}


@pytest.fixture(scope="module")
def all_scores():
    result = {}
    for scenario in (1, 2, 3):
        cases = build_scenario(scenario, seed=0)
        result[scenario] = {
            s.method: s.mean_ap for s in evaluate_scenario_ap(cases)
        }
    return result


class TestPinnedValues:
    @pytest.mark.parametrize("scenario", [1, 2, 3])
    def test_seed0_values(self, all_scores, scenario):
        for method, pinned in PINNED[scenario].items():
            assert all_scores[scenario][method] == pytest.approx(
                pinned, abs=0.015
            ), f"scenario {scenario} / {method} drifted from calibration"


class TestPaperShapeClaims:
    """The qualitative orderings the calibration exists to reproduce.

    These are looser than the pins and should survive recalibration —
    if one of these fails, the reproduction itself is broken.
    """

    def test_scenario1_deterministic_at_least_probabilistic(self, all_scores):
        s = all_scores[1]
        assert s["in_edge"] >= s["reliability"] - 0.05
        assert s["path_count"] >= s["reliability"] - 0.05
        assert s["diffusion"] < s["reliability"] - 0.05
        assert s["random"] < s["diffusion"] - 0.2

    def test_scenario2_probabilistic_dominates(self, all_scores):
        s = all_scores[2]
        assert s["diffusion"] > s["reliability"] > s["propagation"]
        assert s["reliability"] > s["in_edge"] + 0.3
        assert abs(s["in_edge"] - s["random"]) < 0.15

    def test_scenario3_reliability_and_propagation_lead(self, all_scores):
        s = all_scores[3]
        assert s["reliability"] >= s["propagation"]
        assert s["reliability"] > s["random"] + 0.25
        assert s["propagation"] > s["diffusion"]

    def test_fig10_matrix(self, all_scores):
        """The paper's Fig 10: the probabilistic advantage grows as
        information gets less known (scenario 1 -> 2)."""
        advantage_s1 = all_scores[1]["reliability"] - all_scores[1]["in_edge"]
        advantage_s2 = all_scores[2]["reliability"] - all_scores[2]["in_edge"]
        assert advantage_s2 > advantage_s1 + 0.3
