"""Tests for the §5 divergent star-schema extension."""

import pytest

from repro.experiments.star_schema import build_star_cases


@pytest.fixture(scope="module")
def star_cases():
    return build_star_cases(seed=0, limit=4)


class TestStarStructure:
    def test_every_answer_has_exactly_one_in_edge(self, star_cases):
        for case in star_cases:
            graph = case.query_graph.graph
            for target in case.query_graph.targets:
                assert graph.in_degree(target) == 1

    def test_every_answer_has_exactly_one_path(self, star_cases):
        from repro.core.deterministic import path_count_scores

        for case in star_cases:
            counts = path_count_scores(case.query_graph)
            assert set(counts.values()) == {1.0}

    def test_no_blast_pool(self, star_cases):
        graph = star_cases[0].query_graph.graph
        blast_nodes = [
            node
            for node in graph.nodes()
            if graph.data(node).entity_set == "BlastHit"
        ]
        assert blast_nodes == []


class TestStarShape:
    def test_deterministic_methods_equal_random(self, star_cases):
        from repro.experiments.runner import evaluate_scenario_ap

        scores = {s.method: s.mean_ap for s in evaluate_scenario_ap(star_cases)}
        assert scores["in_edge"] == pytest.approx(scores["random"], abs=1e-9)
        assert scores["path_count"] == pytest.approx(scores["random"], abs=1e-9)

    def test_probabilistic_methods_beat_random(self, star_cases):
        from repro.experiments.runner import evaluate_scenario_ap

        scores = {s.method: s.mean_ap for s in evaluate_scenario_ap(star_cases)}
        for method in ("reliability", "propagation", "diffusion"):
            assert scores[method] > scores["random"] + 0.3
