"""Integration tests: the experiment regenerators reproduce the paper's
qualitative results (the 'shape' claims)."""

import pytest

from repro.experiments import fig4_topologies, table1_scenario1
from repro.experiments.fig2_reducibility import compute as fig2_compute
from repro.experiments.runner import evaluate_scenario_ap, format_table
from repro.experiments.thm31_bounds import empirical_error
from repro.core.bounds import required_trials


class TestFig4:
    def test_reference_values(self):
        data = fig4_topologies.compute()
        sp = data["serial_parallel"]
        assert sp["reliability"] == pytest.approx(0.5)
        assert sp["propagation"] == pytest.approx(0.75)
        assert sp["diffusion"] == pytest.approx(1 / 9, abs=1e-6)
        assert sp["in_edge"] == 2.0
        assert sp["path_count"] == 2.0
        wb = data["wheatstone"]
        assert wb["reliability"] == pytest.approx(0.46875)
        assert wb["propagation"] == pytest.approx(0.484375)
        assert wb["in_edge"] == 2.0
        assert wb["path_count"] == 3.0


class TestFig2:
    def test_all_verdicts_match_expectations(self):
        for label, observed, expected, _ in fig2_compute():
            assert observed == expected, label


class TestTable1:
    def test_counts_are_generation_invariants(self):
        rows = table1_scenario1.compute(limit=3)
        assert [(r.protein, r.n_gold, r.n_answers) for r in rows] == [
            ("ABCC8", 13, 97),
            ("ABCD1", 15, 79),
            ("AGPAT2", 10, 16),
        ]

    def test_graph_sizes_in_paper_ballpark(self):
        rows = table1_scenario1.compute(limit=3)
        for row in rows:
            assert 150 < row.nodes < 900
            assert 200 < row.edges < 1300


class TestFig5Shapes:
    """The paper's three headline claims, on scenario subsets (fast)."""

    def test_scenario2_probabilistic_beats_deterministic(self, scenario2_cases):
        scores = {
            s.method: s.mean_ap for s in evaluate_scenario_ap(scenario2_cases)
        }
        assert scores["diffusion"] > scores["in_edge"] + 0.2
        assert scores["reliability"] > scores["in_edge"] + 0.15
        assert scores["reliability"] >= scores["propagation"]
        assert scores["in_edge"] == pytest.approx(scores["random"], abs=0.15)

    def test_scenario3_reliability_leads(self, scenario3_small):
        scores = {
            s.method: s.mean_ap for s in evaluate_scenario_ap(scenario3_small)
        }
        assert scores["reliability"] > scores["random"] + 0.2
        assert scores["reliability"] >= scores["in_edge"] - 0.05

    def test_scenario1_everything_beats_random(self, scenario1_small):
        scores = {
            s.method: s.mean_ap for s in evaluate_scenario_ap(scenario1_small)
        }
        for method in ("reliability", "propagation", "in_edge", "path_count"):
            assert scores[method] > scores["random"] + 0.25

    def test_legacy_rng_rank_options_stay_reproducible(self, scenario3_small):
        """The pre-facade spelling — a raw mapping carrying 'rng' — must
        keep working (and stay deterministic) on the session path."""
        options = {
            "reliability": {"strategy": "mc", "trials": 200, "rng": 7}
        }
        def run():
            return [
                s.mean_ap
                for s in evaluate_scenario_ap(
                    scenario3_small, methods=("reliability",),
                    rank_options=options, include_random=False,
                )
            ]

        assert run() == run()

    def test_unknown_rank_option_is_actionable(self, scenario3_small):
        from repro.errors import RankingError

        with pytest.raises(RankingError, match="unknown RankingOptions field"):
            evaluate_scenario_ap(
                scenario3_small,
                methods=("reliability",),
                rank_options={"reliability": {"strateegy": "mc"}},
                include_random=False,
            )


class TestThm31:
    def test_empirical_error_within_bound(self):
        epsilon, delta = 0.05, 0.1
        trials = required_trials(epsilon, delta)
        observed = empirical_error(epsilon, trials, repetitions=300, rng=0)
        assert observed <= delta


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(("a", "bb"), [(1, 22), (333, 4)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a")
        assert len(lines) == 5
