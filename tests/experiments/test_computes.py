"""Fast coverage of every experiment module's compute() entry point."""


from repro.experiments import (
    fig1_schema,
    fig5_scenarios,
    fig6_sensitivity,
    fig7_convergence,
    fig8a_reliability_methods,
    fig8b_ranking_methods,
    sensitivity_oneway,
    table2_scenario2,
    table3_scenario3,
    thm31_bounds,
)


class TestFig1:
    def test_schema_and_catalog(self):
        schema, catalog = fig1_schema.compute()
        assert len(schema.relationships) == 9
        assert len(catalog) == 11
        assert sum(entry.n_entities for entry in catalog) == 21
        assert sum(entry.n_relationships for entry in catalog) == 31


class TestFig5:
    def test_scenario_scores_structure(self):
        scores = fig5_scenarios.compute(3, limit=2)
        assert [s.method for s in scores] == [
            "reliability",
            "propagation",
            "diffusion",
            "in_edge",
            "path_count",
            "random",
        ]
        assert all(0.0 <= s.mean_ap <= 1.0 for s in scores)
        assert all(len(s.per_case) == 2 for s in scores)


class TestFig6:
    def test_one_cell(self):
        points = fig6_sensitivity.compute(
            3, "propagation", repetitions=2, limit=2
        )
        # default + 4 sigmas + random
        assert len(points) == 6
        assert points[0].condition == "default"


class TestFig7:
    def test_ladder(self):
        points, closed_ap, random_ap = fig7_convergence.compute(
            trial_ladder=(1, 10, 100), repetitions=2, limit=2
        )
        assert [p.trials for p in points] == [1, 10, 100]
        assert 0.0 <= random_ap <= closed_ap <= 1.0
        # convergence: AP at 100 trials closer to closed form than at 1
        assert abs(points[-1].mean_ap - closed_ap) <= abs(
            points[0].mean_ap - closed_ap
        )


class TestFig8:
    def test_fig8a_timings(self):
        data = fig8a_reliability_methods.compute(limit=1)
        timings = data["timings"]
        assert set(timings) == {"M1", "M2", "C", "R&M1", "R&M2", "R&C"}
        assert all(t.mean_ms > 0 for t in timings.values())
        assert 0.0 < data["combined_reduction"] < 1.0
        # MC at 10k trials must cost more than at 1k on the same graph
        assert timings["M1"].mean_ms > timings["M2"].mean_ms

    def test_fig8b_timings(self):
        timings = fig8b_ranking_methods.compute(limit=1)
        by_method = {t.method: t.mean_ms for t in timings}
        assert by_method["in_edge"] < by_method["reliability"]


class TestTables:
    def test_table2_rows(self):
        rows = table2_scenario2.compute()
        assert len(rows) == 7
        for row in rows:
            assert row.ranks["random"][0] == 1
            for method in ("reliability", "diffusion"):
                lo, hi = row.ranks[method]
                assert 1 <= lo <= hi

    def test_table3_rows(self):
        rows = table3_scenario3.compute()
        assert len(rows) == 11
        assert rows[0].protein == "DP0843"
        assert rows[0].ranks["random"] == (1, 47)


class TestThm31:
    def test_grid(self):
        rows = thm31_bounds.compute(
            grid=((0.05, 0.1),), repetitions=100, seed=0
        )
        (row,) = rows
        assert row.trials > 0
        assert row.empirical_error <= 0.1


class TestOneway:
    def test_components_present(self):
        results = sensitivity_oneway.compute(
            scenario=3, sigma=1.0, repetitions=2, limit=2
        )
        assert set(results) == {"nodes", "edges", "all"}
