"""Failure injection: how the integration layer behaves on bad inputs.

Real wrappers misbehave — transformation functions return garbage, link
tables reference records that do not exist, cross-references form
cycles. The builder must fail loudly on semantic garbage (probabilities
outside [0, 1]) and degrade gracefully on structural noise (dangling
links, cycles)."""

import pytest

from repro.core.ranker import rank
from repro.errors import ValidationError
from repro.integration import (
    DataSource,
    EntityBinding,
    ExploratoryQuery,
    Mediator,
    RelationshipBinding,
)
from repro.storage import Column, ColumnType, Database


def _make_source(pr=None, qr=None, rows=None):
    db = Database("inject")
    db.create_table(
        "things",
        columns=[
            Column("tid", ColumnType.TEXT),
            Column("score", ColumnType.FLOAT),
        ],
        primary_key=["tid"],
    )
    db.create_table(
        "links",
        columns=[
            Column("src", ColumnType.TEXT),
            Column("dst", ColumnType.TEXT),
            Column("weight", ColumnType.FLOAT),
        ],
    )
    db.table("links").create_index("by_src", ["src"])
    db.insert("things", {"tid": "A", "score": 0.9})
    db.insert("things", {"tid": "B", "score": 0.8})
    for row in rows or [{"src": "A", "dst": "B", "weight": 0.5}]:
        db.insert("links", row)
    return DataSource(
        name="Inject",
        database=db,
        entities=(
            EntityBinding(
                "Thing", "things", "tid", pr=pr or (lambda row: row["score"])
            ),
        ),
        relationships=(
            RelationshipBinding(
                relationship="link",
                table="links",
                source_entity="Thing",
                source_column="src",
                target_entity="Thing",
                target_column="dst",
                qr=qr or (lambda row: row["weight"]),
            ),
        ),
    )


def _query(mediator):
    return ExploratoryQuery("Thing", "tid", "A", outputs=("Thing",)).execute(
        mediator
    )


class TestSemanticGarbage:
    def test_pr_outside_unit_interval_raises(self):
        mediator = Mediator()
        mediator.register(_make_source(pr=lambda row: 1.5))
        with pytest.raises(ValidationError):
            _query(mediator)

    def test_qr_outside_unit_interval_raises(self):
        mediator = Mediator()
        mediator.register(_make_source(qr=lambda row: -0.1))
        with pytest.raises(ValidationError):
            _query(mediator)

    def test_pr_raising_propagates_with_context(self):
        def broken(row):
            raise KeyError("missing attribute")

        mediator = Mediator()
        mediator.register(_make_source(pr=broken))
        with pytest.raises(KeyError):
            _query(mediator)


class TestStructuralNoise:
    def test_dangling_links_are_counted_not_fatal(self):
        mediator = Mediator()
        mediator.register(
            _make_source(
                rows=[
                    {"src": "A", "dst": "B", "weight": 0.5},
                    {"src": "A", "dst": "GHOST", "weight": 0.9},
                ]
            )
        )
        qg, stats = _query(mediator)
        assert stats.dangling_links == 1
        assert len(qg.targets) == 2  # A (seed, also a Thing) and B

    def test_cyclic_cross_references_terminate(self):
        mediator = Mediator()
        mediator.register(
            _make_source(
                rows=[
                    {"src": "A", "dst": "B", "weight": 0.5},
                    {"src": "B", "dst": "A", "weight": 0.5},
                ]
            )
        )
        qg, _ = _query(mediator)
        # the graph has a cycle; connectivity-based rankers still work
        scores = rank(qg, "reliability", strategy="mc", trials=2000, rng=0).scores
        assert set(scores) == set(qg.targets)
        propagation = rank(qg, "propagation").scores
        assert all(0.0 <= v <= 1.0 for v in propagation.values())

    def test_self_referencing_link_is_harmless(self):
        mediator = Mediator()
        mediator.register(
            _make_source(
                rows=[
                    {"src": "A", "dst": "A", "weight": 0.9},
                    {"src": "A", "dst": "B", "weight": 0.5},
                ]
            )
        )
        qg, _ = _query(mediator)
        scores = rank(qg, "reliability", strategy="exact").scores
        node_b = [t for t in qg.targets if t[1] == "B"][0]
        # self-loop contributes nothing to reaching B
        assert scores[node_b] == pytest.approx(0.9 * 0.5 * 0.8)
