"""Tests for source binding validation."""

import pytest

from repro.errors import SchemaError
from repro.integration.sources import DataSource, EntityBinding, RelationshipBinding
from repro.storage import Column, ColumnType, Database


@pytest.fixture
def db() -> Database:
    database = Database("d")
    database.create_table(
        "things",
        columns=[Column("tid", ColumnType.TEXT), Column("note", ColumnType.TEXT, nullable=True)],
        primary_key=["tid"],
    )
    database.create_table(
        "links",
        columns=[Column("src", ColumnType.TEXT), Column("dst", ColumnType.TEXT)],
    )
    return database


class TestBindings:
    def test_valid_source(self, db):
        source = DataSource(
            name="S",
            database=db,
            entities=(EntityBinding("Thing", "things", "tid"),),
            relationships=(
                RelationshipBinding("link", "links", "Thing", "src", "Thing", "dst"),
            ),
        )
        assert source.name == "S"

    def test_entity_binding_unknown_key_column(self, db):
        with pytest.raises(SchemaError):
            DataSource(
                name="S",
                database=db,
                entities=(EntityBinding("Thing", "things", "nope"),),
            )

    def test_entity_binding_unknown_table(self, db):
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            DataSource(
                name="S",
                database=db,
                entities=(EntityBinding("Thing", "ghost_table", "tid"),),
            )

    def test_relationship_binding_unknown_column(self, db):
        with pytest.raises(SchemaError):
            DataSource(
                name="S",
                database=db,
                relationships=(
                    RelationshipBinding("link", "links", "Thing", "src", "Thing", "missing"),
                ),
            )

    def test_default_pr_is_one(self, db):
        binding = EntityBinding("Thing", "things", "tid")
        assert binding.pr({"tid": "x"}) == 1.0

    def test_default_qr_is_one(self, db):
        binding = RelationshipBinding("link", "links", "Thing", "src", "Thing", "dst")
        assert binding.qr({"src": "a", "dst": "b"}) == 1.0
