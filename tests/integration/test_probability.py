"""Tests for the uncertainty-to-probability transformations."""

import pytest

from repro.errors import ValidationError
from repro.integration.probability import (
    AMIGO_EVIDENCE_PR,
    ENTREZ_GENE_STATUS_PR,
    ConfidenceRegistry,
    amigo_evidence_pr,
    entrez_gene_status_pr,
    evalue_to_probability,
    probability_to_evalue,
)


class TestStatusCodes:
    def test_paper_table_values(self):
        assert entrez_gene_status_pr("Reviewed") == 1.0
        assert entrez_gene_status_pr("Validated") == 0.8
        assert entrez_gene_status_pr("Provisional") == 0.7
        assert entrez_gene_status_pr("Predicted") == 0.4
        assert entrez_gene_status_pr("Model") == 0.3
        assert entrez_gene_status_pr("Inferred") == 0.2

    def test_unknown_code_raises(self):
        with pytest.raises(ValidationError):
            entrez_gene_status_pr("Guessed")

    def test_table_is_read_only(self):
        with pytest.raises(TypeError):
            ENTREZ_GENE_STATUS_PR["Reviewed"] = 0.5


class TestEvidenceCodes:
    @pytest.mark.parametrize(
        "code,expected",
        [
            ("IDA", 1.0), ("TAS", 1.0), ("IGI", 0.9), ("IMP", 0.9),
            ("IPI", 0.9), ("IEP", 0.7), ("ISS", 0.7), ("RCA", 0.7),
            ("IC", 0.6), ("NAS", 0.5), ("IEA", 0.3), ("ND", 0.2), ("NR", 0.2),
        ],
    )
    def test_paper_table_values(self, code, expected):
        assert amigo_evidence_pr(code) == expected

    def test_unknown_code_raises(self):
        with pytest.raises(ValidationError):
            amigo_evidence_pr("XYZ")

    def test_table_is_read_only(self):
        with pytest.raises(TypeError):
            AMIGO_EVIDENCE_PR["IEA"] = 0.9


class TestEvalueTransform:
    def test_formula(self):
        # qr = -log10(e) / 300
        assert evalue_to_probability(1e-30) == pytest.approx(0.1)
        assert evalue_to_probability(1e-150) == pytest.approx(0.5)

    def test_clamping(self):
        assert evalue_to_probability(1.0) == 0.0
        assert evalue_to_probability(10.0) == 0.0
        assert evalue_to_probability(1e-400) == 1.0

    def test_blast_zero_means_perfect(self):
        assert evalue_to_probability(0.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            evalue_to_probability(-1.0)

    @pytest.mark.parametrize("strength", [0.1, 0.37, 0.5, 0.93, 1.0])
    def test_round_trip(self, strength):
        assert evalue_to_probability(
            probability_to_evalue(strength)
        ) == pytest.approx(strength)

    def test_monotone_decreasing_in_evalue(self):
        evalues = [1e-300, 1e-200, 1e-100, 1e-10, 1e-1]
        values = [evalue_to_probability(e) for e in evalues]
        assert values == sorted(values, reverse=True)


class TestConfidenceRegistry:
    def test_defaults_to_full_confidence(self):
        registry = ConfidenceRegistry()
        assert registry.ps("anything") == 1.0
        assert registry.qs("anything") == 1.0

    def test_set_and_get(self):
        registry = ConfidenceRegistry()
        registry.set_entity_confidence("Pfam", 0.9)
        registry.set_relationship_confidence("blast", 0.8)
        assert registry.ps("Pfam") == 0.9
        assert registry.qs("blast") == 0.8

    def test_validation(self):
        registry = ConfidenceRegistry()
        with pytest.raises(ValidationError):
            registry.set_entity_confidence("X", 1.5)

    def test_copy_is_independent(self):
        registry = ConfidenceRegistry()
        registry.set_entity_confidence("X", 0.5)
        clone = registry.copy()
        clone.set_entity_confidence("X", 0.9)
        assert registry.ps("X") == 0.5
