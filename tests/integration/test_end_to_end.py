"""End-to-end integration: generate -> export -> reload -> re-rank.

The full pipeline crosses every subsystem: the generator writes source
databases, the CSV layer round-trips them through disk, fresh databases
are rebuilt from the files, a new mediator is assembled over them, the
exploratory query re-runs, and the rankings must come out identical to
the original in-memory run. This is the test that the storage engine,
the bindings, the probability transforms and the ranking core all agree
about what the data means.
"""

import pytest

from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.biology.confidences import biorank_confidences
from repro.biology.sources import (
    amigo,
    entrez_gene,
    entrez_protein,
    ncbi_blast,
    pfam,
    tigrfam,
)
from repro.core.ranker import rank
from repro.integration.mediator import Mediator
from repro.integration.query import ExploratoryQuery
from repro.storage.csv_io import dump_database, load_table_rows


@pytest.fixture(scope="module")
def original_case():
    generator = ProteinCaseGenerator(rng=11)
    return generator.generate(
        CaseSpec(protein="E2E", n_gold=5, n_total=20, homolog_pool=30)
    )


SOURCE_FACTORIES = {
    "EntrezProtein": entrez_protein,
    "EntrezGene": entrez_gene,
    "AmiGO": amigo,
    "NCBIBlast": ncbi_blast,
    "Pfam": pfam,
    "TIGRFAM": tigrfam,
}


def rebuild_mediator_from_disk(original_case, root):
    """Dump every source database and reload it into fresh schemas."""
    mediator = Mediator(confidences=biorank_confidences())
    for source in original_case.mediator.sources:
        dump_database(source.database, root / source.name)
        module = SOURCE_FACTORIES[source.name]
        fresh_db = module.create_database()
        for table in fresh_db.tables():
            load_table_rows(table, root / source.name / f"{table.name}.csv")
        mediator.register(module.make_source(fresh_db))
    return mediator


class TestRoundTripPipeline:
    def test_reloaded_sources_rank_identically(self, original_case, tmp_path):
        mediator = rebuild_mediator_from_disk(original_case, tmp_path)
        query = ExploratoryQuery(
            "EntrezProtein", "name", "E2E", outputs=("GOTerm",)
        )
        qg, stats = query.execute(mediator)

        original_qg = original_case.query_graph
        assert set(qg.targets) == set(original_qg.targets)
        assert stats.dangling_links == original_case.build_stats.dangling_links

        fresh = rank(qg, "reliability", strategy="closed").scores
        original = rank(original_qg, "reliability", strategy="closed").scores
        for target in original_qg.targets:
            assert fresh[target] == pytest.approx(original[target], abs=1e-12)

    def test_graph_probabilities_survive_round_trip(self, original_case, tmp_path):
        mediator = rebuild_mediator_from_disk(original_case, tmp_path)
        query = ExploratoryQuery(
            "EntrezProtein", "name", "E2E", outputs=("GOTerm",)
        )
        qg, _ = query.execute(mediator)
        original_qg = original_case.query_graph
        for node in original_qg.graph.nodes():
            assert qg.graph.p(node) == pytest.approx(
                original_qg.graph.p(node), abs=1e-12
            )

    def test_deterministic_rankings_survive_round_trip(
        self, original_case, tmp_path
    ):
        mediator = rebuild_mediator_from_disk(original_case, tmp_path)
        query = ExploratoryQuery(
            "EntrezProtein", "name", "E2E", outputs=("GOTerm",)
        )
        qg, _ = query.execute(mediator)
        for method in ("in_edge", "path_count", "propagation", "diffusion"):
            fresh = rank(qg, method).scores
            original = rank(original_case.query_graph, method).scores
            for target, value in original.items():
                assert fresh[target] == pytest.approx(value, abs=1e-9)
