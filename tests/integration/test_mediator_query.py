"""Tests for the mediator, the graph builder and exploratory queries,
on a small hand-built two-source setup."""

import pytest

from repro.core.exact import exact_reliability
from repro.errors import QueryError, SchemaError
from repro.integration import (
    ConfidenceRegistry,
    DataSource,
    EntityBinding,
    ExploratoryQuery,
    Mediator,
    RelationshipBinding,
)
from repro.integration.builder import QUERY_ENTITY_SET, entity_node_id
from repro.storage import Column, ColumnType, Database


def make_left_source() -> DataSource:
    """Items and their links to parts; one link dangles."""
    db = Database("left")
    db.create_table(
        "items",
        columns=[
            Column("item_id", ColumnType.TEXT),
            Column("grade", ColumnType.FLOAT),
        ],
        primary_key=["item_id"],
    )
    db.create_table(
        "item_part",
        columns=[
            Column("item_id", ColumnType.TEXT),
            Column("part_id", ColumnType.TEXT),
            Column("weight", ColumnType.FLOAT),
        ],
    )
    db.table("item_part").create_index("by_item", ["item_id"])
    db.insert("items", {"item_id": "I1", "grade": 0.8})
    db.insert("items", {"item_id": "I2", "grade": 0.6})
    db.insert("item_part", {"item_id": "I1", "part_id": "P1", "weight": 0.9})
    db.insert("item_part", {"item_id": "I1", "part_id": "P2", "weight": 0.5})
    db.insert("item_part", {"item_id": "I1", "part_id": "GHOST", "weight": 0.5})
    return DataSource(
        name="Left",
        database=db,
        entities=(
            EntityBinding(
                "Item", "items", "item_id", pr=lambda row: row["grade"]
            ),
        ),
        relationships=(
            RelationshipBinding(
                relationship="has_part",
                table="item_part",
                source_entity="Item",
                source_column="item_id",
                target_entity="Part",
                target_column="part_id",
                qr=lambda row: row["weight"],
            ),
        ),
    )


def make_right_source() -> DataSource:
    db = Database("right")
    db.create_table(
        "parts",
        columns=[Column("part_id", ColumnType.TEXT)],
        primary_key=["part_id"],
    )
    db.insert("parts", {"part_id": "P1"})
    db.insert("parts", {"part_id": "P2"})
    return DataSource(
        name="Right",
        database=db,
        entities=(EntityBinding("Part", "parts", "part_id"),),
    )


@pytest.fixture
def mediator() -> Mediator:
    confidences = ConfidenceRegistry()
    confidences.set_entity_confidence("Item", 0.95)
    confidences.set_relationship_confidence("has_part", 0.9)
    m = Mediator(confidences=confidences)
    m.register(make_left_source())
    m.register(make_right_source())
    return m


class TestMediator:
    def test_duplicate_source_rejected(self, mediator):
        with pytest.raises(SchemaError):
            mediator.register(make_left_source())

    def test_duplicate_entity_provider_rejected(self, mediator):
        other = DataSource(
            name="Other",
            database=make_right_source().database,
            entities=(EntityBinding("Part", "parts", "part_id"),),
        )
        with pytest.raises(SchemaError):
            mediator.register(other)

    def test_entity_record_lookup(self, mediator):
        record = mediator.entity_record("Item", "I1")
        assert record["grade"] == 0.8
        assert mediator.entity_record("Item", "IX") is None

    def test_unprovided_entity_set_raises(self, mediator):
        with pytest.raises(QueryError):
            mediator.entity_binding("Mystery")

    def test_find_records_by_attribute(self, mediator):
        rows = mediator.find_records("Item", "grade", 0.6)
        assert [row["item_id"] for row in rows] == ["I2"]

    def test_find_records_unknown_attribute(self, mediator):
        with pytest.raises(QueryError):
            mediator.find_records("Item", "colour", "red")


class TestExploratoryQuery:
    def test_graph_probabilities_are_products(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, stats = query.execute(mediator)
        item_node = entity_node_id("Item", "I1")
        # p = ps * pr = 0.95 * 0.8
        assert qg.graph.p(item_node) == pytest.approx(0.95 * 0.8)
        # q = qs * qr = 0.9 * 0.9 on the strong link
        part_node = entity_node_id("Part", "P1")
        (edge,) = [
            e for e in qg.graph.in_edges(part_node) if e.source == item_node
        ]
        assert qg.graph.q(edge.key) == pytest.approx(0.9 * 0.9)

    def test_query_node_is_source(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, _ = query.execute(mediator)
        assert qg.source == entity_node_id(QUERY_ENTITY_SET, "I1")
        assert qg.graph.p(qg.source) == 1.0

    def test_answer_set_is_output_entities(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, _ = query.execute(mediator)
        assert set(qg.targets) == {
            entity_node_id("Part", "P1"),
            entity_node_id("Part", "P2"),
        }

    def test_dangling_links_counted_and_skipped(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, stats = query.execute(mediator)
        assert stats.dangling_links == 1
        assert not qg.graph.has_node(entity_node_id("Part", "GHOST"))

    def test_no_match_raises(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "IX", outputs=("Part",))
        with pytest.raises(QueryError):
            query.execute(mediator)

    def test_no_reachable_output_raises(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "I2", outputs=("Part",))
        with pytest.raises(QueryError):
            query.execute(mediator)

    def test_empty_outputs_rejected(self):
        with pytest.raises(QueryError):
            ExploratoryQuery("Item", "item_id", "I1", outputs=())

    def test_resulting_graph_is_rankable(self, mediator):
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, _ = query.execute(mediator)
        scores = exact_reliability(qg)
        p1 = entity_node_id("Part", "P1")
        # query -> item (q=1, p=.76) -> part (q=.81, p=1)
        assert scores[p1] == pytest.approx(0.95 * 0.8 * 0.9 * 0.9)
