"""Set-at-a-time execution: batched builder equivalence, binding plans,
the vectorized frontier-expansion fast path, the CSR compile hint, and
the mediator epoch the engine's query cache keys on."""

import numpy as np
import pytest

from repro.core.compile import compile_graph
from repro.errors import QueryError, ValidationError
from repro.integration import ExploratoryQuery, Mediator
from repro.integration.builder import BatchedEntityGraphBuilder, EntityGraphBuilder
from repro.workloads import mediated_layers

from tests.integration.test_mediator_query import make_left_source, make_right_source


def assert_identical_execution(mediator, query):
    """Both builders must produce byte-identical graphs and stats."""
    qg_b, stats_b = query.execute(mediator, builder="batched")
    qg_s, stats_s = query.execute(mediator, builder="scalar")
    gb, gs = qg_b.graph, qg_s.graph
    assert list(gb.nodes()) == list(gs.nodes())
    for node in gb.nodes():
        assert gb.p(node) == gs.p(node)
        assert gb.data(node) == gs.data(node)
    batched_edges = [(e.key, e.source, e.target, gb.q(e.key)) for e in gb.edges()]
    scalar_edges = [(e.key, e.source, e.target, gs.q(e.key)) for e in gs.edges()]
    assert batched_edges == scalar_edges
    assert stats_b == stats_s
    assert qg_b.source == qg_s.source
    assert qg_b.targets == qg_s.targets
    return qg_b, stats_b


class TestBuilderEquivalence:
    def test_two_source_fixture_with_dangling_link(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        mediator.register(make_right_source())
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        _, stats = assert_identical_execution(mediator, query)
        assert stats.dangling_links == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"dangling_rate": 0.25},
            {"cyclic": True},
            {"index_links": False},
            {"cyclic": True, "dangling_rate": 0.3, "index_links": False},
            {"seeds": 5, "fan_out": 4},
        ],
    )
    @pytest.mark.parametrize("storage", ["memory", "vectorized"])
    def test_mediated_workloads(self, kwargs, storage):
        workload = mediated_layers(
            layers=4, width=25, rng=11, storage=storage, **kwargs
        )
        assert_identical_execution(workload.mediator, workload.query)

    def test_biology_scenario_case(self, scenario3_small):
        case = scenario3_small[0].case
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        qg, stats = assert_identical_execution(case.mediator, query)
        # and both agree with the graph the scenario was generated with
        assert list(qg.graph.nodes()) == list(case.query_graph.graph.nodes())
        assert stats == case.build_stats

    def test_unknown_builder_rejected(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        mediator.register(make_right_source())
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        with pytest.raises(QueryError):
            query.execute(mediator, builder="quantum")

    def test_builder_classes_directly(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        mediator.register(make_right_source())
        for builder_cls in (EntityGraphBuilder, BatchedEntityGraphBuilder):
            builder = builder_cls(mediator)
            seed = builder.add_entity_node("Item", "I1")
            assert seed == ("Item", "I1")
            builder.expand_from([seed])
            assert builder.graph.has_node(("Part", "P1"))
            assert builder.stats.dangling_links == 1

    def test_batched_dangling_seed_returns_none(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        builder = BatchedEntityGraphBuilder(mediator)
        assert builder.add_entity_node("Item", "IX") is None
        assert builder.stats.dangling_links == 1

    def test_batched_unprovided_target_entity_raises(self):
        mediator = Mediator()
        mediator.register(make_left_source())  # Part provider missing
        builder = BatchedEntityGraphBuilder(mediator)
        seed = builder.add_entity_node("Item", "I1")
        with pytest.raises(QueryError):
            builder.expand_from([seed])


class TestVectorizedExpansion:
    """The selection-vector fast path: when it engages, and that its
    fallback reproduces the scalar builder's failures exactly."""

    def test_plans_vectorize_only_on_columnar_storage(self):
        fast = mediated_layers(layers=2, width=6, fan_out=2, rng=3,
                               storage="vectorized")
        plan = fast.mediator.entity_plan("E0")
        assert plan.vectorized
        assert plan.pr_column == "w"
        assert all(rel.vectorized for rel in plan.out)
        assert plan.out[0].qr_column == "w"

        slow = mediated_layers(layers=2, width=6, fan_out=2, rng=3)
        plan = slow.mediator.entity_plan("E0")
        assert not plan.vectorized
        assert not any(rel.vectorized for rel in plan.out)
        # the weight column is still *declared* — storage is the gate
        assert plan.out[0].qr_column == "w"

    def test_out_of_range_weight_fails_like_the_scalar_builder(self):
        """An out-of-range stored weight must fall off the array path and
        raise the scalar builder's exact ValidationError, not a numpy
        error and not a silently clamped probability."""
        errors = {}
        for builder in ("scalar", "batched"):
            workload = mediated_layers(
                layers=2, width=4, fan_out=2, rng=3, storage="vectorized"
            )
            links = workload.mediator.entity_plan("E0").out[0].table
            links.insert({"src": "E0:0", "dst": "E1:0", "w": -0.25})
            with pytest.raises(ValidationError) as excinfo:
                workload.query.execute(workload.mediator, builder=builder)
            errors[builder] = str(excinfo.value)
        assert errors["batched"] == errors["scalar"]
        assert "must be in [0, 1]" in errors["batched"]


class TestCompileHint:
    """The batched builder's edge log becomes a CSR compile hint; it must
    be bit-identical to the dict walk and die on any graph mutation."""

    @staticmethod
    def _built_graph(**kwargs):
        workload = mediated_layers(layers=3, width=10, fan_out=3, rng=5, **kwargs)
        qg, _ = workload.query.execute(workload.mediator, builder="batched")
        return qg

    def test_batched_builder_attaches_hint_scalar_does_not(self):
        workload = mediated_layers(layers=3, width=10, fan_out=3, rng=5)
        qg_b, _ = workload.query.execute(workload.mediator, builder="batched")
        src, dst, q = qg_b.graph._csr_hint
        assert src.size == qg_b.graph.num_edges
        assert q.dtype == np.float64
        qg_s, _ = workload.query.execute(workload.mediator, builder="scalar")
        assert qg_s.graph._csr_hint is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"cyclic": True},  # parallel edges exercise the merge loop
            {"dangling_rate": 0.3, "index_links": False},
            {"storage": "vectorized", "cyclic": True},
        ],
    )
    def test_hint_compile_is_bit_identical_to_dict_walk(self, kwargs):
        qg = self._built_graph(**kwargs)
        assert qg.graph._csr_hint is not None
        fast = compile_graph(qg)
        qg.graph._csr_hint = None
        slow = compile_graph(qg)
        assert fast.node_ids == slow.node_ids
        for name in ("p", "out_offsets", "out_targets", "out_q",
                     "out_mult", "targets"):
            fast_arr, slow_arr = getattr(fast, name), getattr(slow, name)
            assert fast_arr.dtype == slow_arr.dtype
            assert fast_arr.tobytes() == slow_arr.tobytes()
        assert fast.fingerprint == slow.fingerprint

    def test_mutations_invalidate_the_hint(self):
        graph = self._built_graph().graph
        assert graph._csr_hint is not None
        some_node = next(iter(graph.nodes()))
        some_edge = next(iter(graph.edges())).key

        # set_p keeps it: compile reads p from the graph, not the log
        graph.set_p(some_node, 0.5)
        assert graph._csr_hint is not None
        # a copy starts without one (shares no log with the original)
        assert graph.copy()._csr_hint is None
        assert graph._csr_hint is not None

        graph.set_q(some_edge, 0.5)
        assert graph._csr_hint is None

        graph = self._built_graph().graph
        graph.add_node("fresh", p=1.0)
        assert graph._csr_hint is None

        graph = self._built_graph().graph
        graph.remove_edge(some_edge)
        assert graph._csr_hint is None


class TestBindingPlans:
    @pytest.fixture
    def mediator(self):
        m = Mediator()
        m.confidences.set_entity_confidence("Item", 0.95)
        m.confidences.set_relationship_confidence("has_part", 0.9)
        m.register(make_left_source())
        m.register(make_right_source())
        return m

    def test_plan_resolves_table_and_confidences(self, mediator):
        plan = mediator.entity_plan("Item")
        assert plan.table.name == "items"
        assert plan.key_column == "item_id"
        assert plan.ps == pytest.approx(0.95)
        (rel,) = plan.out
        assert rel.relationship == "has_part"
        assert rel.qs == pytest.approx(0.9)
        assert rel.table.name == "item_part"

    def test_unknown_entity_set_raises(self, mediator):
        with pytest.raises(QueryError):
            mediator.entity_plan("Mystery")

    def test_outgoing_plans_empty_for_unknown_set(self, mediator):
        assert mediator.outgoing_plans("__query__") == ()

    def test_plans_rebuilt_after_confidence_tuning(self, mediator):
        mediator.confidences.set_entity_confidence("Item", 0.5)
        assert mediator.entity_plan("Item").ps == pytest.approx(0.5)
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, _ = query.execute(mediator, builder="batched")
        assert qg.graph.p(("Item", "I1")) == pytest.approx(0.5 * 0.8)

    def test_default_transformations_marked_constant(self, mediator):
        assert mediator.entity_plan("Part").pr_is_one
        assert not mediator.entity_plan("Item").pr_is_one
        (rel,) = mediator.entity_plan("Item").out
        assert not rel.qr_is_one


class TestMediatorEpoch:
    def test_epoch_bumps_on_register(self):
        mediator = Mediator()
        e0 = mediator.epoch
        mediator.register(make_left_source())
        assert mediator.epoch > e0

    def test_epoch_bumps_on_confidence_tuning(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        e0 = mediator.epoch
        mediator.confidences.set_entity_confidence("Item", 0.5)
        assert mediator.epoch > e0

    def test_epoch_bumps_on_bound_table_mutation(self):
        left = make_left_source()
        mediator = Mediator()
        mediator.register(left)
        e0 = mediator.epoch
        left.database.insert("items", {"item_id": "I9", "grade": 0.5})
        assert mediator.epoch > e0
        e1 = mediator.epoch
        left.database.insert(
            "item_part", {"item_id": "I9", "part_id": "P9", "weight": 0.1}
        )
        assert mediator.epoch > e1

    def test_epoch_stable_without_changes(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        assert mediator.epoch == mediator.epoch
