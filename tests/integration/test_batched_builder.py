"""Set-at-a-time execution: batched builder equivalence, binding plans,
and the mediator epoch the engine's query cache keys on."""

import pytest

from repro.errors import QueryError
from repro.integration import ExploratoryQuery, Mediator
from repro.integration.builder import BatchedEntityGraphBuilder, EntityGraphBuilder
from repro.workloads import mediated_layers

from tests.integration.test_mediator_query import make_left_source, make_right_source


def assert_identical_execution(mediator, query):
    """Both builders must produce byte-identical graphs and stats."""
    qg_b, stats_b = query.execute(mediator, builder="batched")
    qg_s, stats_s = query.execute(mediator, builder="scalar")
    gb, gs = qg_b.graph, qg_s.graph
    assert list(gb.nodes()) == list(gs.nodes())
    for node in gb.nodes():
        assert gb.p(node) == gs.p(node)
        assert gb.data(node) == gs.data(node)
    batched_edges = [(e.key, e.source, e.target, gb.q(e.key)) for e in gb.edges()]
    scalar_edges = [(e.key, e.source, e.target, gs.q(e.key)) for e in gs.edges()]
    assert batched_edges == scalar_edges
    assert stats_b == stats_s
    assert qg_b.source == qg_s.source
    assert qg_b.targets == qg_s.targets
    return qg_b, stats_b


class TestBuilderEquivalence:
    def test_two_source_fixture_with_dangling_link(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        mediator.register(make_right_source())
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        _, stats = assert_identical_execution(mediator, query)
        assert stats.dangling_links == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"dangling_rate": 0.25},
            {"cyclic": True},
            {"index_links": False},
            {"cyclic": True, "dangling_rate": 0.3, "index_links": False},
            {"seeds": 5, "fan_out": 4},
        ],
    )
    def test_mediated_workloads(self, kwargs):
        workload = mediated_layers(layers=4, width=25, rng=11, **kwargs)
        assert_identical_execution(workload.mediator, workload.query)

    def test_biology_scenario_case(self, scenario3_small):
        case = scenario3_small[0].case
        query = ExploratoryQuery(
            "EntrezProtein", "name", case.spec.protein, outputs=("GOTerm",)
        )
        qg, stats = assert_identical_execution(case.mediator, query)
        # and both agree with the graph the scenario was generated with
        assert list(qg.graph.nodes()) == list(case.query_graph.graph.nodes())
        assert stats == case.build_stats

    def test_unknown_builder_rejected(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        mediator.register(make_right_source())
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        with pytest.raises(QueryError):
            query.execute(mediator, builder="quantum")

    def test_builder_classes_directly(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        mediator.register(make_right_source())
        for builder_cls in (EntityGraphBuilder, BatchedEntityGraphBuilder):
            builder = builder_cls(mediator)
            seed = builder.add_entity_node("Item", "I1")
            assert seed == ("Item", "I1")
            builder.expand_from([seed])
            assert builder.graph.has_node(("Part", "P1"))
            assert builder.stats.dangling_links == 1

    def test_batched_dangling_seed_returns_none(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        builder = BatchedEntityGraphBuilder(mediator)
        assert builder.add_entity_node("Item", "IX") is None
        assert builder.stats.dangling_links == 1

    def test_batched_unprovided_target_entity_raises(self):
        mediator = Mediator()
        mediator.register(make_left_source())  # Part provider missing
        builder = BatchedEntityGraphBuilder(mediator)
        seed = builder.add_entity_node("Item", "I1")
        with pytest.raises(QueryError):
            builder.expand_from([seed])


class TestBindingPlans:
    @pytest.fixture
    def mediator(self):
        m = Mediator()
        m.confidences.set_entity_confidence("Item", 0.95)
        m.confidences.set_relationship_confidence("has_part", 0.9)
        m.register(make_left_source())
        m.register(make_right_source())
        return m

    def test_plan_resolves_table_and_confidences(self, mediator):
        plan = mediator.entity_plan("Item")
        assert plan.table.name == "items"
        assert plan.key_column == "item_id"
        assert plan.ps == pytest.approx(0.95)
        (rel,) = plan.out
        assert rel.relationship == "has_part"
        assert rel.qs == pytest.approx(0.9)
        assert rel.table.name == "item_part"

    def test_unknown_entity_set_raises(self, mediator):
        with pytest.raises(QueryError):
            mediator.entity_plan("Mystery")

    def test_outgoing_plans_empty_for_unknown_set(self, mediator):
        assert mediator.outgoing_plans("__query__") == ()

    def test_plans_rebuilt_after_confidence_tuning(self, mediator):
        mediator.confidences.set_entity_confidence("Item", 0.5)
        assert mediator.entity_plan("Item").ps == pytest.approx(0.5)
        query = ExploratoryQuery("Item", "item_id", "I1", outputs=("Part",))
        qg, _ = query.execute(mediator, builder="batched")
        assert qg.graph.p(("Item", "I1")) == pytest.approx(0.5 * 0.8)

    def test_default_transformations_marked_constant(self, mediator):
        assert mediator.entity_plan("Part").pr_is_one
        assert not mediator.entity_plan("Item").pr_is_one
        (rel,) = mediator.entity_plan("Item").out
        assert not rel.qr_is_one


class TestMediatorEpoch:
    def test_epoch_bumps_on_register(self):
        mediator = Mediator()
        e0 = mediator.epoch
        mediator.register(make_left_source())
        assert mediator.epoch > e0

    def test_epoch_bumps_on_confidence_tuning(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        e0 = mediator.epoch
        mediator.confidences.set_entity_confidence("Item", 0.5)
        assert mediator.epoch > e0

    def test_epoch_bumps_on_bound_table_mutation(self):
        left = make_left_source()
        mediator = Mediator()
        mediator.register(left)
        e0 = mediator.epoch
        left.database.insert("items", {"item_id": "I9", "grade": 0.5})
        assert mediator.epoch > e0
        e1 = mediator.epoch
        left.database.insert(
            "item_part", {"item_id": "I9", "part_id": "P9", "weight": 0.1}
        )
        assert mediator.epoch > e1

    def test_epoch_stable_without_changes(self):
        mediator = Mediator()
        mediator.register(make_left_source())
        assert mediator.epoch == mediator.epoch
