"""Shared serving fixtures, including the worker-leak tripwire.

Every test in this package runs under ``no_leaked_workers``: any shard
worker process still alive when a test finishes is killed *and fails
the test*. Leaked OS processes are the serving layer's equivalent of a
forgotten file handle — this fixture is the regression test that
``Session.close()`` / ``ProcessShardedEngine.close()`` reap everything,
applied uniformly to every serving test for free.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, RankingOptions
from repro.serving.engine import live_worker_processes
from repro.workloads import mediated_layers


@pytest.fixture(autouse=True)
def no_leaked_workers():
    yield
    leaked = live_worker_processes()
    if leaked:
        pids = [proc.pid for proc in leaked]
        for proc in leaked:
            proc.kill()
        pytest.fail(
            f"test leaked shard worker process(es) {pids}; every "
            f"session/engine must reap its workers on close"
        )


@pytest.fixture
def workload():
    """A small sharded mediated workload (memory storage, fixed seed)."""
    generated = mediated_layers(layers=3, width=16, fan_out=3, rng=11, shards=2)
    yield generated
    generated.close()


@pytest.fixture
def process_config():
    """Process-mode config with a short RPC timeout so hang tests run
    in seconds, not the 30s production default."""
    return EngineConfig(
        shards=2, shard_mode="process", rpc_timeout=3.0, worker_restarts=2
    )


@pytest.fixture
def specs(workload):
    """A method mix covering the deterministic rankers plus closed-form
    and seeded-MC reliability."""
    return [
        workload.spec(method="in_edge"),
        workload.spec(method="path_count"),
        workload.spec(method="propagation"),
        workload.spec(
            method="reliability", options=RankingOptions(strategy="closed")
        ),
        workload.spec(
            method="reliability",
            options=RankingOptions(strategy="mc", trials=50),
            seed=123,
        ),
    ]
