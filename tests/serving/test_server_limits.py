"""The HTTP front door's protective limits: 413, 503, socket timeout.

The overload test drives the session's real admission gate — the test
occupies the only execution slot directly, so the shed is a
deterministic state, not a race against a slow request.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.api import EngineConfig
from repro.serving.server import _MAX_BODY, serve


def _post(url, path, body):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post_error(url, path, body):
    try:
        _post(url, path, body)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


def _raw_exchange(host, port, request_bytes, timeout=10.0):
    """Send raw bytes, read until the server closes the connection."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        if request_bytes:
            sock.sendall(request_bytes)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


class TestOverload:
    def test_full_queue_sheds_503_with_retry_after(self, workload):
        config = EngineConfig(
            max_concurrency=1, max_queue_depth=0, retry_after=2.5
        )
        session = workload.open_session(config=config, sharded=False)
        spec = workload.spec(method="in_edge").to_dict()
        with serve(session) as running:
            gate = session.admission
            assert gate is not None
            gate.acquire()  # occupy the only slot: the server is "busy"
            try:
                status, headers, body = _post_error(
                    running.url, "/execute", spec
                )
                assert status == 503
                assert body["error"]["type"] == "OverloadedError"
                assert "retry after 2.5s" in body["error"]["message"]
                # Retry-After is integer seconds, rounded up
                assert headers["Retry-After"] == "3"
            finally:
                gate.release()
            # load gone: the same request is admitted and served
            status, body = _post(running.url, "/execute", spec)
            assert status == 200
            assert body["total"] > 0
            assert session.stats_snapshot().shed_queries == 1

    def test_unbounded_config_exposes_no_gate(self, workload):
        session = workload.open_session(config=EngineConfig(), sharded=False)
        with serve(session) as running:
            assert session.admission is None  # max_queue_depth=None
            status, _ = _post(
                running.url, "/execute", workload.spec(method="in_edge").to_dict()
            )
            assert status == 200


class TestBodyCap:
    def test_oversized_content_length_is_refused_413(self, workload):
        session = workload.open_session(config=EngineConfig(), sharded=False)
        with serve(session) as running:
            oversized = _MAX_BODY + 1
            request = (
                f"POST /execute HTTP/1.1\r\n"
                f"Host: {running.host}:{running.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {oversized}\r\n\r\n"
            ).encode("ascii")
            # the server must answer from the headers alone — the body
            # is never sent, so reading it would hang forever
            response = _raw_exchange(running.host, running.port, request)
            head, _, body = response.partition(b"\r\n\r\n")
            assert b"413" in head.splitlines()[0]
            payload = json.loads(body)
            assert "exceeds" in payload["error"]["message"]
            # refused oversized uploads close the connection: recv
            # already drained to EOF above, proving the close

    def test_missing_content_length_is_400(self, workload):
        session = workload.open_session(config=EngineConfig(), sharded=False)
        with serve(session) as running:
            request = urllib.request.Request(
                running.url + "/execute",
                data=b"",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 400


class TestRequestTimeout:
    def test_stalled_client_is_dropped(self, workload):
        session = workload.open_session(config=EngineConfig(), sharded=False)
        with serve(session, request_timeout=0.5) as running:
            started = time.monotonic()
            # connect and go silent: never send a request line
            response = _raw_exchange(
                running.host, running.port, b"", timeout=10.0
            )
            elapsed = time.monotonic() - started
            assert response == b""  # dropped, not answered
            assert elapsed < 8.0  # the 0.5s timeout fired, not the client's

    def test_live_clients_are_unaffected(self, workload):
        session = workload.open_session(config=EngineConfig(), sharded=False)
        with serve(session, request_timeout=5.0) as running:
            status, body = _post(
                running.url, "/execute", workload.spec(method="in_edge").to_dict()
            )
            assert status == 200
            assert body["total"] > 0
