"""Fault injection: crash-safety of the process-sharded gather.

The acceptance bar (docs/serving.md): a SIGKILLed worker never corrupts
a response — every query either completes after a bounded
restart-with-retry (bit-identical to the pre-fault scores, because the
restarted worker re-attaches its shard files / regenerates from the
recipe) or fails with a *classified* shard error. Application errors
never trigger restarts.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.api import EngineConfig
from repro.errors import QueryError
from repro.serving import rpc
from repro.workloads import mediated_layers


def _arm(engine, shard, mode, **params):
    """Arm a test-only fault on the next score_fragment of one worker."""
    engine._call_supervised(
        engine.workers[shard], "inject_fault", {"mode": mode, **params}
    )


class TestCrash:
    def test_worker_killed_mid_gather_restarts_and_answers(
        self, workload, process_config, specs
    ):
        """The crash fault dies via os._exit(137) *while handling* the
        scatter request — the mid-gather SIGKILL case. The gather must
        restart the worker and return bit-identical scores."""
        with workload.open_session(config=process_config) as session:
            engine = session.process_engine
            baselines = [dict(session.execute(spec).scores) for spec in specs]
            for index, spec in enumerate(specs):
                _arm(engine, index % 2, "crash")
                assert dict(session.execute(spec).scores) == baselines[index]
            restarts = [w["restarts"] for w in engine.describe_workers()]
            assert sum(restarts) == len(specs)

    def test_external_sigkill_mid_gather(self, workload, process_config):
        """A real SIGKILL from outside, landing while the gather is
        in flight (the worker is hung inside score_fragment when the
        signal arrives)."""
        spec = workload.spec(method="path_count")
        with workload.open_session(config=process_config) as session:
            engine = session.process_engine
            baseline = dict(session.execute(spec).scores)
            victim = engine.describe_workers()[0]["pid"]
            _arm(engine, 0, "hang", seconds=60)

            outcome = {}

            def run():
                outcome["scores"] = dict(session.execute(spec).scores)

            query = threading.Thread(target=run)
            query.start()
            time.sleep(0.3)  # let the gather reach the hung worker
            os.kill(victim, signal.SIGKILL)
            query.join(timeout=30)
            assert not query.is_alive(), "gather never completed"
            assert outcome["scores"] == baseline
            assert engine.describe_workers()[0]["restarts"] >= 1

    def test_restarted_worker_reattaches_shard_files(
        self, tmp_path, process_config
    ):
        """With persisted sqlite shards, a restarted worker re-attaches
        the same layer<i>.shard<s>.sqlite files and serves bit-identical
        scores (nothing is regenerated, nothing drifts)."""
        generated = mediated_layers(
            layers=3, width=16, fan_out=3, rng=11, shards=2,
            storage="sqlite", storage_path=tmp_path,
        )
        assert (tmp_path / "layer2.shard0.sqlite").exists()
        assert (tmp_path / "layer2.shard1.sqlite").exists()
        spec = generated.spec(method="in_edge")
        try:
            with generated.open_session(config=process_config) as session:
                engine = session.process_engine
                baseline = dict(session.execute(spec).scores)
                for shard in (0, 1):
                    _arm(engine, shard, "crash")
                assert dict(session.execute(spec).scores) == baseline
                assert [w["restarts"] for w in engine.describe_workers()] == [1, 1]
        finally:
            generated.close()


class TestHang:
    def test_hang_past_rpc_timeout_restarts(self, workload, process_config):
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=process_config) as session:
            engine = session.process_engine
            baseline = dict(session.execute(spec).scores)
            _arm(engine, 1, "hang", seconds=60)
            started = time.perf_counter()
            assert dict(session.execute(spec).scores) == baseline
            elapsed = time.perf_counter() - started
            # one rpc_timeout expiry plus a restart — not the 60s sleep
            assert elapsed < 30
            assert engine.describe_workers()[1]["restarts"] == 1


class TestGarbage:
    def test_malformed_json_line_restarts(self, workload, process_config):
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=process_config) as session:
            engine = session.process_engine
            baseline = dict(session.execute(spec).scores)
            _arm(engine, 0, "garbage")
            assert dict(session.execute(spec).scores) == baseline
            assert engine.describe_workers()[0]["restarts"] == 1


class TestClassification:
    def test_exhausted_restart_budget_is_classified(self, workload):
        """With a zero restart budget, a crash surfaces as the thread-
        mode-shaped classified shard error — never a hung gather, never
        a partial result."""
        config = EngineConfig(
            shards=2, shard_mode="process", rpc_timeout=3.0, worker_restarts=0
        )
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=config) as session:
            engine = session.process_engine
            baseline = dict(session.execute(spec).scores)
            _arm(engine, 0, "crash")
            with pytest.raises(QueryError, match=r"shard 0 failed during scatter/gather"):
                session.execute(spec)
            # the failure is transient infrastructure, not session
            # poison: the next query restarts the worker and recovers
            assert dict(session.execute(spec).scores) == baseline

    def test_application_errors_never_restart(self, workload, process_config):
        """A deterministic query error (unknown ranking method at the
        worker) is re-raised without burning a restart."""
        with workload.open_session(config=process_config) as session:
            engine = session.process_engine
            with pytest.raises(Exception, match="no-such-method"):
                engine._call_supervised(
                    engine.workers[0], "score_fragment",
                    {"spec": {**workload.spec().to_dict(), "method": "no-such-method"}},
                )
            assert engine.describe_workers()[0]["restarts"] == 0

    def test_unknown_rpc_method_is_remote_error(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            engine = session.process_engine
            with pytest.raises(rpc.RpcRemoteError, match="unknown RPC method"):
                engine.workers[0].call("no_such_rpc", {}, timeout=5)
            assert engine.describe_workers()[0]["restarts"] == 0


class TestBootstrap:
    def test_bootstrap_failure_surfaces_worker_error(self, workload):
        """A worker whose source recipe cannot resolve reports the
        failure through the fatal notification instead of hanging the
        parent until the boot timeout."""
        from repro.serving.engine import ProcessShardedEngine
        from repro.serving.source import WorkerSource

        source = WorkerSource(
            factory="repro.workloads.mediated:no_such_factory",
            shards=2,
        )
        with pytest.raises(rpc.RpcTransportError, match="no attribute"):
            ProcessShardedEngine(workload.router, source, boot_timeout=30.0)
