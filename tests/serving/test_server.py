"""The HTTP front door: endpoints, error mapping, lifecycle."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.api import EngineConfig
from repro.serving.server import serve


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, path, body):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post_error(url, path, body):
    try:
        _post(url, path, body if isinstance(body, bytes) else body)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


@pytest.fixture(params=["thread", "process"])
def server(request, workload):
    config = EngineConfig(
        shards=2, shard_mode=request.param, rpc_timeout=5.0, worker_restarts=2
    )
    session = workload.open_session(config=config)
    with serve(session) as running:
        yield running


class TestEndpoints:
    def test_health(self, server):
        status, body = _get(server.url, "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["sharded"] is True
        if body["shard_mode"] == "process":
            assert body["workers_alive"] == 2

    def test_execute(self, server, workload):
        spec = workload.spec(method="in_edge")
        status, body = _post(server.url, "/execute", spec.to_dict())
        assert status == 200
        assert body["total"] == body["returned"] == len(body["entities"])
        first = body["entities"][0]
        assert first["rank"] == 1
        assert set(first) == {
            "rank", "rank_interval", "entity_set", "key", "label", "score"
        }

    def test_execute_with_limit(self, server, workload):
        spec = workload.spec(method="in_edge")
        status, body = _post(
            server.url, "/execute", {**spec.to_dict(), "limit": 2}
        )
        assert status == 200
        assert body["returned"] == len(body["entities"]) == 2
        assert body["total"] >= 2

    def test_execute_many_mixes_results_and_errors(self, server, workload):
        good = workload.spec(method="in_edge").to_dict()
        empty = {**good, "value": "no-such-root"}
        status, body = _post(
            server.url, "/execute_many", {"specs": [good, empty, good]}
        )
        assert status == 200
        assert body["count"] == 3
        ok, bad, ok2 = body["results"]
        assert ok["total"] > 0 and ok == ok2
        assert bad["error"]["type"] == "EmptyAnswerError"

    def test_explain(self, server, workload):
        spec = workload.spec(method="in_edge")
        status, body = _post(server.url, "/explain", spec.to_dict())
        assert status == 200
        assert body["answers"] > 0
        assert body["spec"]["method"] == "in_edge"

    def test_stats_and_shard_stats(self, server, workload):
        _post(server.url, "/execute", workload.spec().to_dict())
        status, stats = _get(server.url, "/stats")
        assert status == 200
        assert stats["engine"]["queries_executed"] >= 1
        status, shard_stats = _get(server.url, "/shard_stats")
        assert status == 200
        assert len(shard_stats["shards"]) == 2
        if "workers" in shard_stats:  # process mode only
            assert [w["shard"] for w in shard_stats["workers"]] == [0, 1]
            assert all(w["alive"] for w in shard_stats["workers"])


class TestErrorMapping:
    def test_empty_answer_is_400_with_kind(self, server, workload):
        spec = {**workload.spec().to_dict(), "value": "no-such-root"}
        status, body = _post_error(server.url, "/execute", spec)
        assert status == 400
        assert body["error"]["type"] == "EmptyAnswerError"
        assert body["error"]["kind"] in ("no-seeds", "dangling-seeds", "no-answers")

    def test_invalid_spec_is_400(self, server):
        status, body = _post_error(server.url, "/execute", {"nonsense": True})
        assert status == 400
        assert body["error"]["type"] in ("QueryError", "ValidationError")

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/execute", data=b"%% not json %%",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_route_is_404(self, server):
        status, body = _post_error(server.url, "/no_such_route", {})
        assert status == 404
        try:
            _get(server.url, "/no_such_route")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404


class TestLifecycle:
    def test_close_shuts_session_and_is_idempotent(self, workload):
        config = EngineConfig(shards=2, shard_mode="process", rpc_timeout=5.0)
        session = workload.open_session(config=config)
        running = serve(session)
        url = running.url
        assert _get(url, "/health")[0] == 200
        running.close()
        running.close()  # idempotent
        assert session.closed
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/health", timeout=2)

    def test_health_reports_closed_session(self, workload):
        session = workload.open_session(config=EngineConfig(shards=2))
        with serve(session, own_session=False) as running:
            session.close()
            status, body = _get(running.url, "/health")
            assert status == 200
            assert body["status"] == "closed"
