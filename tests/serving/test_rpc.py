"""Unit tests for the newline-delimited JSON-RPC codec."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.engine.ranking import EngineStats
from repro.errors import (
    EmptyAnswerError,
    GraphError,
    QueryError,
    RankingError,
    ValidationError,
)
from repro.integration.builder import BuildStats
from repro.serving import rpc


class TestFraming:
    def test_round_trip(self):
        message = rpc.request(7, "score_fragment", {"spec": {"a": 1}})
        assert rpc.decode_message(rpc.encode_message(message).rstrip(b"\n")) == message

    def test_non_json_is_transport_error(self):
        with pytest.raises(rpc.RpcTransportError, match="malformed JSON-RPC"):
            rpc.decode_message(b"%% not json %%")

    def test_wrong_version_is_transport_error(self):
        with pytest.raises(rpc.RpcTransportError, match="not a JSON-RPC 2.0"):
            rpc.decode_message(b'{"jsonrpc": "1.0", "id": 1}')

    def test_non_object_is_transport_error(self):
        with pytest.raises(rpc.RpcTransportError):
            rpc.decode_message(b"[1, 2, 3]")


class TestNodeCodec:
    @pytest.mark.parametrize("node", [
        ("E2", "E2:14"),
        ("__query__", ("E0", "root", True)),
        ("set", ("nested", ("deep", 3))),
        "plain-string",
        42,
    ])
    def test_round_trip(self, node):
        assert rpc.decode_node(rpc.encode_node(node)) == node

    def test_tuples_become_lists_on_the_wire(self):
        assert rpc.encode_node(("a", ("b", 1))) == ["a", ["b", 1]]


class TestFragmentCodec:
    def test_scores_round_trip_bit_identically(self):
        owned = [
            (("E2", "E2:0"), 0.1 + 0.2, "E2:0"),  # the classic non-exact float
            (("E2", "E2:1"), 1.7976931348623157e308, "E2:1"),
            (("E2", "E2:2"), 5e-324, "E2:2"),
        ]
        import json

        wire = json.loads(json.dumps(rpc.encode_fragment_scores(owned)))
        assert rpc.decode_fragment_scores(wire) == owned


class TestStatsCodec:
    def test_build_stats(self):
        stats = BuildStats(nodes=5, edges=9, dangling_links=2,
                           visited_entities={"E0": 1, "E1": 4})
        assert rpc.decode_build_stats(rpc.encode_build_stats(stats)) == stats

    def test_engine_stats(self):
        stats = EngineStats(compile_hits=1, compile_misses=2, score_hits=3,
                            score_misses=4, graph_hits=5, graph_misses=6,
                            graph_repairs=7, queries_executed=8)
        decoded = rpc.decode_engine_stats(rpc.encode_engine_stats(stats))
        assert decoded.as_dict() == stats.as_dict()


class TestExceptionCodec:
    @pytest.mark.parametrize("exc", [
        QueryError("no answers"),
        RankingError("bad method"),
        GraphError("missing node"),
        ValidationError("bad spec"),
    ])
    def test_known_types_reconstruct(self, exc):
        decoded = rpc.decode_exception(rpc.encode_exception(exc))
        assert type(decoded) is type(exc)
        assert str(decoded) == str(exc)

    def test_empty_answer_kind_survives(self):
        for kind in ("no-seeds", "dangling-seeds", "no-answers"):
            exc = EmptyAnswerError(f"empty ({kind})", kind=kind)
            decoded = rpc.decode_exception(rpc.encode_exception(exc))
            assert isinstance(decoded, EmptyAnswerError)
            assert decoded.kind == kind
            assert str(decoded) == str(exc)

    def test_unknown_type_decays_to_query_error(self):
        decoded = rpc.decode_exception({"type": "SomethingWeird", "message": "boom"})
        assert isinstance(decoded, QueryError)
        assert "SomethingWeird" in str(decoded)
        assert "boom" in str(decoded)


def _socket_pair():
    server, client = socket.socketpair()
    return rpc.RpcConnection(server), rpc.RpcConnection(client)


class TestConnection:
    def test_call_response(self):
        parent, child = _socket_pair()

        def answer():
            message = child.receive(timeout=5)
            child.send(rpc.response(message["id"], {"pong": True}))

        thread = threading.Thread(target=answer)
        thread.start()
        assert parent.call("ping", {}, timeout=5) == {"pong": True}
        thread.join()
        parent.close()
        child.close()

    def test_error_object_raises_remote_error(self):
        parent, child = _socket_pair()

        def answer():
            message = child.receive(timeout=5)
            child.send(rpc.error_response(
                message["id"], rpc.RPC_APPLICATION_ERROR, "no answers",
                data=rpc.encode_exception(EmptyAnswerError("no answers", kind="no-answers")),
            ))

        thread = threading.Thread(target=answer)
        thread.start()
        with pytest.raises(rpc.RpcRemoteError) as excinfo:
            parent.call("score_fragment", {}, timeout=5)
        thread.join()
        assert isinstance(excinfo.value.remote, EmptyAnswerError)
        assert excinfo.value.remote.kind == "no-answers"
        parent.close()
        child.close()

    def test_eof_is_transport_error(self):
        parent, child = _socket_pair()
        child.close()
        with pytest.raises(rpc.RpcTransportError, match="closed by peer"):
            parent.receive(timeout=5)
        parent.close()

    def test_timeout_is_transport_error(self):
        parent, child = _socket_pair()
        with pytest.raises(rpc.RpcTransportError, match="no response within"):
            parent.receive(timeout=0.05)
        parent.close()
        child.close()

    def test_garbage_line_is_transport_error(self):
        parent, child = _socket_pair()
        child.send_raw(b"%% this is not JSON-RPC %%\n")
        with pytest.raises(rpc.RpcTransportError, match="malformed"):
            parent.receive(timeout=5)
        parent.close()
        child.close()

    def test_remote_errors_do_not_poison_the_stream(self):
        """An application error leaves the connection usable — the
        supervisor must not restart a worker over one."""
        parent, child = _socket_pair()

        def answer():
            first = child.receive(timeout=5)
            child.send(rpc.error_response(first["id"], rpc.RPC_APPLICATION_ERROR, "bad"))
            second = child.receive(timeout=5)
            child.send(rpc.response(second["id"], "fine"))

        thread = threading.Thread(target=answer)
        thread.start()
        with pytest.raises(rpc.RpcRemoteError):
            parent.call("one", {}, timeout=5)
        assert parent.call("two", {}, timeout=5) == "fine"
        thread.join()
        parent.close()
        child.close()
