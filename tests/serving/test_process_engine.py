"""Process-mode scatter/gather: equivalence, supervision, lifecycle."""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, Session
from repro.engine.sharded import ShardRouter
from repro.errors import EmptyAnswerError, GraphError, QueryError, RankingError
from repro.serving.engine import live_worker_processes
from repro.serving.source import WorkerSource
from repro.workloads import mediated_layers


def _observe(results):
    """Everything a client can see, as plain data (mirrors the
    cross-shard property harness)."""
    page = results.page(2, size=3)
    return {
        "entities": [
            (e.node, e.entity_set, e.key, e.label, e.score, e.rank, e.rank_interval)
            for e in results
        ],
        "tie_groups": [[e.node for e in group] for group in results.tie_groups()],
        "page2": [e.node for e in page],
        "page_totals": (page.total_results, page.total_pages),
        "json": results.to_json(),
        "provenance": [results.explain(e) for e in results.top(3)],
    }


class TestEquivalence:
    def test_process_equals_thread_equals_single(self, workload, process_config, specs):
        with workload.open_session(sharded=False) as session:
            single = [_observe(session.execute(spec)) for spec in specs]
        with workload.open_session(config=EngineConfig(shards=2)) as session:
            thread = [_observe(session.execute(spec)) for spec in specs]
        with workload.open_session(config=process_config) as session:
            process = [_observe(session.execute(spec)) for spec in specs]
        # Process mode must match thread mode bit-for-bit on every method,
        # including seeded Monte Carlo.
        assert process == thread
        # Sharded-vs-single identity holds for deterministic rankers only:
        # each shard samples its own compiled graph, so MC streams differ
        # (same carve-out as the PR 5 cross-shard harness).
        deterministic = [
            i for i, spec in enumerate(specs)
            if spec.options is None or spec.options.strategy != "mc"
        ]
        assert deterministic, "spec mix must include deterministic methods"
        assert [thread[i] for i in deterministic] == [single[i] for i in deterministic]

    def test_execute_many_matches_execute(self, workload, process_config):
        batch = workload.serving_batch(methods=("in_edge", "path_count"))
        with workload.open_session(config=process_config) as session:
            one_by_one = [_observe(session.execute(spec)) for spec in batch]
            batched = [_observe(r) for r in session.execute_many(batch)]
        assert batched == one_by_one

    def test_explain_matches_thread_mode(self, workload, process_config):
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=EngineConfig(shards=2)) as session:
            thread = session.explain(spec).as_dict()
        with workload.open_session(config=process_config) as session:
            process = session.explain(spec).as_dict()
        for record in (thread, process):
            for volatile in ("build_seconds", "rank_seconds", "engine_stats"):
                record.pop(volatile)
        assert process == thread

    def test_empty_answer_error_matches(self, workload, process_config):
        spec = workload.spec(method="in_edge")
        bogus = type(spec).from_dict({
            **spec.to_dict(), "value": "no-such-root"
        })
        with workload.open_session(sharded=False) as session:
            with pytest.raises(EmptyAnswerError) as single_exc:
                session.execute(bogus)
        with workload.open_session(config=process_config) as session:
            with pytest.raises(EmptyAnswerError) as process_exc:
                session.execute(bogus)
        assert str(process_exc.value) == str(single_exc.value)
        assert process_exc.value.kind == single_exc.value.kind


class TestLifecycle:
    def test_close_reaps_workers_and_is_idempotent(self, workload, process_config):
        session = workload.open_session(config=process_config)
        engine = session.process_engine
        pids = [w["pid"] for w in engine.describe_workers()]
        assert len(pids) == 2 and all(isinstance(p, int) for p in pids)
        assert len(live_worker_processes()) == 2
        session.close()
        assert live_worker_processes() == []
        session.close()  # double close is a no-op
        assert session.closed
        with pytest.raises(RankingError, match="closed"):
            session.execute(workload.spec())

    def test_context_manager_reaps_workers(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            session.execute(workload.spec())
            assert len(live_worker_processes()) == 2
        assert live_worker_processes() == []

    def test_closed_engine_refuses_gather(self, workload, process_config):
        session = workload.open_session(config=process_config)
        engine = session.process_engine
        session.close()
        with pytest.raises(RankingError, match="closed"):
            engine.gather(workload.query)

    def test_register_is_rejected_in_process_mode(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            with pytest.raises(QueryError, match="process-sharded"):
                session.register(object())

    def test_repair_reload_reattaches(self, workload, process_config):
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=process_config) as session:
            before = dict(session.execute(spec).scores)
            session.process_engine.repair(reload=True)
            after = dict(session.execute(spec).scores)
        assert after == before

    def test_stats_aggregate_over_workers(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            session.execute(workload.spec())
            per_shard = session.shard_stats()
            assert len(per_shard) == 2
            total = session.stats_snapshot()
            assert total.queries_executed == sum(
                s.queries_executed for s in per_shard
            )
            session.reset_stats()
            assert session.stats_snapshot().queries_executed == 0


class TestResultSurface:
    def test_graph_property_raises_with_guidance(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            results = session.execute(workload.spec())
            with pytest.raises(GraphError, match="worker processes"):
                results.graph

    def test_unknown_node_provenance_raises(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            results = session.execute(workload.spec())
            with pytest.raises(GraphError, match="not in this result set"):
                results.explain(("E2", "E2:nope"))

    def test_owner_shards_cover_every_answer(self, workload, process_config):
        with workload.open_session(config=process_config) as session:
            results = session.execute(workload.spec())
            owners = results.owner_shards
            assert set(owners) == set(results.scores)
            assert set(owners.values()) <= {0, 1}


class TestConfigValidation:
    def test_bad_shard_mode_rejected(self):
        with pytest.raises(RankingError, match="shard_mode"):
            EngineConfig(shard_mode="fork")

    def test_bad_rpc_timeout_rejected(self):
        with pytest.raises(RankingError, match="rpc_timeout"):
            EngineConfig(rpc_timeout=0)

    def test_bad_worker_restarts_rejected(self):
        with pytest.raises(RankingError, match="worker_restarts"):
            EngineConfig(worker_restarts=-1)

    def test_config_round_trips_new_fields(self):
        config = EngineConfig(shard_mode="process", rpc_timeout=5.0,
                              worker_restarts=1)
        assert EngineConfig.from_dict(config.as_dict()) == config

    def test_process_mode_requires_worker_source(self, workload):
        with pytest.raises(QueryError, match="worker_source"):
            Session(
                mediator=workload.mediator,
                config=EngineConfig(shards=2, shard_mode="process"),
                router=workload.router,
            )

    def test_worker_source_requires_sharded_session(self, workload):
        source = workload.worker_source()
        with pytest.raises(QueryError, match="sharded"):
            Session(mediator=workload.mediator, worker_source=source)

    def test_thread_mode_rejects_worker_source(self, workload):
        source = workload.worker_source()
        with pytest.raises(QueryError, match='shard_mode="process"'):
            Session(
                mediator=workload.mediator,
                config=EngineConfig(shards=2),
                router=workload.router,
                worker_source=source,
            )


class TestWorkerSource:
    def test_round_trip(self, workload):
        source = workload.worker_source()
        assert WorkerSource.from_dict(source.to_dict()) == source

    def test_unknown_field_rejected(self):
        with pytest.raises(QueryError, match="unknown WorkerSource field"):
            WorkerSource.from_dict({
                "factory": "a:b", "bogus": 1,
            })

    def test_bad_factory_reference_rejected(self):
        with pytest.raises(QueryError, match="module:attr"):
            WorkerSource(factory="no-colon-here")

    def test_unsharded_workload_needs_explicit_seed(self):
        generated = mediated_layers(layers=2, width=4, shards=2)  # rng=None
        try:
            with pytest.raises(Exception, match="integer rng seed"):
                generated.worker_source()
        finally:
            generated.close()

    def test_shard_count_mismatch_rejected_at_resolve(self):
        source = WorkerSource(
            factory="repro.workloads.mediated:mediated_layers",
            kwargs={"layers": 2, "width": 4, "rng": 3, "shards": 2},
            shards=3,
        )
        with pytest.raises(QueryError, match="expects 3"):
            source.resolve()

    def test_engine_rejects_router_mismatch(self, workload):
        source = WorkerSource(
            factory="repro.workloads.mediated:mediated_layers",
            kwargs=dict(workload.generation),
            shards=3,
        )
        router = ShardRouter.partition(workload.mediator, 2)
        from repro.serving.engine import ProcessShardedEngine

        with pytest.raises(QueryError, match="router has 2"):
            ProcessShardedEngine(router, source)
