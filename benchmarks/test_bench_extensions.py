"""Benchmarks for the extension features.

Adaptive top-k (how much cheaper than a fixed 10k-trial run), evidence
path enumeration, schema reducibility checking, and the correlation
diagnostics — the per-query tools layered on top of the ranking core.
"""

import pytest

from repro.core.adaptive import topk_reliability
from repro.core.diagnostics import correlation_report
from repro.core.paths import enumerate_paths
from repro.schema.biorank_schema import biorank_query_schema
from repro.schema.reducibility import check_reducibility


@pytest.mark.benchmark(group="ext-adaptive-topk")
class TestAdaptiveTopK:
    def test_topk_wide_boundary(self, benchmark, scenario3_cases):
        qg = scenario3_cases[0].query_graph
        benchmark.pedantic(
            lambda: topk_reliability(qg, k=3, epsilon=0.05, rng=1),
            rounds=3,
            iterations=1,
        )


@pytest.mark.benchmark(group="ext-paths")
class TestPathEnumeration:
    def test_enumerate_strongest_paths(self, benchmark, abcc8):
        qg = abcc8.query_graph
        target = qg.targets[0]
        benchmark(lambda: enumerate_paths(qg, target, max_paths=50))


@pytest.mark.benchmark(group="ext-diagnostics")
class TestDiagnostics:
    def test_correlation_report(self, benchmark, scenario3_cases):
        qg = scenario3_cases[0].query_graph
        benchmark.pedantic(lambda: correlation_report(qg), rounds=3, iterations=1)


@pytest.mark.benchmark(group="ext-schema")
class TestSchemaChecking:
    def test_reducibility_full_schema(self, benchmark):
        schema = biorank_query_schema()
        benchmark(lambda: check_reducibility(schema))
