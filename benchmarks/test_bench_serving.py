"""Process-mode vs thread-mode scatter/gather overhead.

Two questions on the sharded mediated serving workload (2 shards):

* **cold** — what does promoting shards to worker *processes* add to a
  cold ``Session.execute``? Process mode pays interpreter spawn +
  workload re-resolution per worker on top of the cold build, so this
  is the deployment-time price, paid once per session.
* **warm** — what is the steady-state per-request overhead of the
  JSON-RPC hop when every worker serves from its query/score caches?
  This is the recurring price of crash isolation under serving
  traffic: N locked socket round trips + fragment decode + merge,
  versus thread mode's N in-process cache probes.

The snapshot committed as ``BENCH_9.json`` (via
``tools/bench_report.py --write --report BENCH_9.json``) records the
measured shape; correctness (process == thread bit-identity) is
asserted inline on every run, including ``--benchmark-disable`` smoke
runs.
"""

import pytest

from repro.api import EngineConfig
from repro.workloads import mediated_layers

#: serving-sized workload: the answer layer dominates the graph
_SHAPE = dict(layers=3, width=400, fan_out=3, seeds=2, rng=13)
_SHARDS = 2


@pytest.fixture(scope="module")
def workload():
    generated = mediated_layers(shards=_SHARDS, **_SHAPE)
    yield generated
    generated.close()


def _thread_config():
    return EngineConfig(shards=_SHARDS)


def _process_config():
    return EngineConfig(shards=_SHARDS, shard_mode="process")


@pytest.mark.benchmark(group="serving-cold-execute")
class TestColdExecute:
    """Fresh session per round: thread mode materialises N shard
    graphs in-process; process mode additionally spawns, handshakes
    and cold-builds N workers."""

    def test_cold_thread(self, benchmark, workload):
        spec = workload.spec(method="in_edge")

        def cold():
            with workload.open_session(config=_thread_config()) as session:
                return session.execute(spec)

        result = benchmark.pedantic(cold, rounds=3, iterations=1)
        assert len(result) > 0

    def test_cold_process(self, benchmark, workload):
        spec = workload.spec(method="in_edge")

        def cold():
            with workload.open_session(config=_process_config()) as session:
                return session.execute(spec)

        result = benchmark.pedantic(cold, rounds=3, iterations=1)
        assert len(result) > 0


@pytest.mark.benchmark(group="serving-warm-execute")
class TestWarmExecute:
    """Steady state: every shard answers from its caches, so the
    measured gap is pure scatter transport (RPC round trip vs
    in-process call)."""

    def test_warm_thread(self, benchmark, workload):
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=_thread_config()) as session:
            reference = session.execute(spec)  # warm every shard
            result = benchmark.pedantic(
                lambda: session.execute(spec), rounds=3, iterations=10
            )
            assert result.scores == reference.scores
            assert session.stats_snapshot().graph_hits > 0

    def test_warm_process(self, benchmark, workload):
        spec = workload.spec(method="in_edge")
        with workload.open_session(config=_thread_config()) as session:
            thread_scores = dict(session.execute(spec).scores)
        with workload.open_session(config=_process_config()) as session:
            reference = session.execute(spec)  # warm every worker
            # the acceptance bar, asserted on every run: process-mode
            # scores are bit-identical to thread mode's
            assert dict(reference.scores) == thread_scores
            result = benchmark.pedantic(
                lambda: session.execute(spec), rounds=3, iterations=10
            )
            assert result.scores == reference.scores
            assert session.stats_snapshot().graph_hits > 0
