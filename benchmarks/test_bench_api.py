"""Facade benchmarks: batched ``execute_many`` vs sequential ``execute``.

The serving-style batch asks one mediated traversal for several output
layers under several methods (with duplicates, as hot queries repeat
under traffic). Sequential execution materialises one graph per distinct
output set; ``execute_many`` deduplicates identical specs and shares a
single union materialisation across the whole traversal group, so the
batch pays one BFS instead of one per output set (~1.5-2x wall-clock on
this scan-backed workload; larger with more output sets)."""

import pytest

from repro.workloads.mediated import mediated_layers

#: output layers x methods x repeats = 16 specs, 8 unique, 1 traversal
BATCH_METHODS = ("in_edge", "path_count")
BATCH_REPEATS = 2


@pytest.fixture(scope="module")
def workload():
    # scan-backed links (no secondary index): the regime where graph
    # materialisation dominates and sharing it matters most
    return mediated_layers(
        layers=5, width=200, fan_out=3, seeds=4, rng=7, index_links=False
    )


@pytest.fixture(scope="module")
def batch(workload):
    specs = workload.serving_batch(methods=BATCH_METHODS, repeats=BATCH_REPEATS)
    # sanity: the batched path must score exactly like sequential
    sequential = [workload.open_session().execute(s).scores for s in specs]
    batched = workload.open_session().execute_many(specs)
    assert [r.scores for r in batched] == sequential
    return specs


@pytest.mark.benchmark(group="api-execute-many")
class TestExecuteManyVsSequential:
    def test_sequential_execute(self, benchmark, workload, batch):
        def run():
            session = workload.open_session()
            return [session.execute(spec) for spec in batch]

        results = benchmark.pedantic(run, rounds=5, iterations=1)
        assert len(results) == len(batch)

    def test_execute_many(self, benchmark, workload, batch):
        def run():
            session = workload.open_session()
            return session.execute_many(batch)

        results = benchmark.pedantic(run, rounds=5, iterations=1)
        assert len(results) == len(batch)

    def test_execute_many_warm_cache(self, benchmark, workload, batch):
        session = workload.open_session()
        session.execute_many(batch)  # warm the query/score caches

        results = benchmark.pedantic(
            lambda: session.execute_many(batch), rounds=5, iterations=2
        )
        assert len(results) == len(batch)
