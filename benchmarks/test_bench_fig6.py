"""Fig 6: cost of one sensitivity-sweep cell.

One repetition = perturb every probability of every case graph, re-rank,
re-evaluate AP. The full figure is 3 scenarios x 3 methods x 4 sigmas x
m repetitions of this unit.
"""

import pytest

from repro.sensitivity.analysis import sensitivity_sweep


@pytest.mark.benchmark(group="fig6-sensitivity")
class TestSensitivityUnit:
    @pytest.mark.parametrize("method", ["propagation", "diffusion"])
    def test_one_sigma_cell(self, benchmark, scenario3_cases, method):
        pairs = [(case.query_graph, case.relevant) for case in scenario3_cases]
        benchmark.pedantic(
            lambda: sensitivity_sweep(
                pairs,
                method=method,
                sigmas=(1.0,),
                repetitions=3,
                include_random=False,
                rng=0,
            ),
            rounds=1,
            iterations=1,
        )
