"""Table 1: cost of dataset reconstruction and query execution.

Benchmarks the two halves of producing one Table 1 row: generating the
synthetic sources for a protein case, and executing the exploratory
query through the mediator (the integration step the paper's system
performs per query).
"""

import pytest

from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.integration.query import ExploratoryQuery


@pytest.mark.benchmark(group="table1-generation")
class TestCaseGeneration:
    def test_generate_abcc8_case(self, benchmark):
        def build():
            generator = ProteinCaseGenerator(rng=0)
            return generator.generate(
                CaseSpec(protein="ABCC8", n_gold=13, n_total=97)
            )

        benchmark.pedantic(build, rounds=3, iterations=1)

    def test_generate_small_case(self, benchmark):
        def build():
            generator = ProteinCaseGenerator(rng=0)
            return generator.generate(
                CaseSpec(protein="GALT", n_gold=8, n_total=15)
            )

        benchmark.pedantic(build, rounds=3, iterations=1)


@pytest.mark.benchmark(group="table1-query-execution")
class TestQueryExecution:
    def test_exploratory_query(self, benchmark, abcc8):
        mediator = abcc8.case.mediator
        query = ExploratoryQuery(
            "EntrezProtein", "name", "ABCC8", outputs=("GOTerm",)
        )
        benchmark(lambda: query.execute(mediator))
