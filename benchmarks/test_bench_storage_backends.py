"""Storage-backend benchmarks: memory vs SQLite vs columnar vs vectorized.

Four questions, per backend:

* **cold lookup** — what does one frontier-sized ``lookup_many`` batch
  cost against an unindexed link table (the thin-wrapper regime where
  every probe is a scan — columnar's home turf, SQLite's worst case)?
* **end-to-end latency** — cold ``Session.execute`` (graph
  materialisation through the backend) and warm ``Session.execute``
  (served from the engine's epoch-guarded query cache, which must be
  backend-independent: a warm hit never touches storage).
* **scale** — a ≥100k-record layered workload persisted into SQLite and
  served end to end through ``Session.execute``; the warm path must
  collapse to a cache probe even when the cold path reads from disk.
* **vectorized payoff** — the numpy scan path must beat the
  row-at-a-time columnar scan by an asserted margin on a scan-bound
  cold execute, and re-attaching persisted ``.npy`` layers must stay
  O(1) in row count (memory-mapped, no column load).
"""

import time

import numpy as np
import pytest

from repro.api import EngineConfig
from repro.storage import STORAGE_BACKENDS, Column, ColumnType, Database
from repro.workloads import mediated_layers

#: shape of the per-backend comparison workload (unindexed links)
_SHAPE = dict(layers=3, width=2000, fan_out=3, seeds=4, rng=5, index_links=False)


def _workload(storage, tmp_dir=None, **overrides):
    shape = dict(_SHAPE, **overrides)
    return mediated_layers(
        storage=storage,
        storage_path=tmp_dir if storage == "sqlite" else None,
        **shape,
    )


@pytest.fixture(scope="session", params=STORAGE_BACKENDS)
def backend_workload(request, tmp_path_factory):
    """The same mediated workload materialised on each storage backend."""
    tmp_dir = tmp_path_factory.mktemp(f"bench-{request.param}")
    return request.param, _workload(request.param, tmp_dir)


@pytest.fixture(scope="session")
def sqlite_100k(tmp_path_factory):
    """A ≥100k-record layered workload persisted into SQLite files."""
    workload = mediated_layers(
        layers=3,
        width=34000,
        fan_out=1,
        seeds=250,
        rng=11,
        storage="sqlite",
        storage_path=tmp_path_factory.mktemp("bench-sqlite-100k"),
    )
    assert workload.total_records >= 100_000
    return workload


@pytest.mark.benchmark(group="storage-cold-lookup")
class TestColdLookup:
    def test_lookup_many_frontier(self, benchmark, backend_workload):
        storage, workload = backend_workload
        links = workload.mediator.entity_plan("E0").out[0].table
        # a selective frontier (1 in 20 keys): the regime where the
        # columnar layout's probe-column-only scan pays off
        frontier = [f"E0:{j}" for j in range(0, _SHAPE["width"], 20)]

        result = benchmark.pedantic(
            lambda: links.lookup_many(("src",), frontier),
            rounds=3,
            iterations=3,
        )
        assert len(result) == _SHAPE["width"] // 20


@pytest.mark.benchmark(group="storage-e2e-query")
class TestEndToEndQuery:
    def test_cold_execute(self, benchmark, backend_workload):
        storage, workload = backend_workload
        spec = workload.spec(method="in_edge")

        def cold():
            with workload.open_session(EngineConfig(cache_graphs=False)) as s:
                return s.execute(spec)

        result = benchmark.pedantic(cold, rounds=3, iterations=2)
        assert len(result) > 0

    def test_warm_execute(self, benchmark, backend_workload):
        storage, workload = backend_workload
        spec = workload.spec(method="in_edge")
        session = workload.open_session()
        session.execute(spec)  # populate graph + score caches

        result = benchmark.pedantic(
            lambda: session.execute(spec), rounds=3, iterations=50
        )
        assert len(result) > 0
        stats = session.stats_snapshot()
        assert stats.graph_hits > 0
        assert stats.queries_executed == 1  # warm hits never touch storage


def _loadable_db(storage):
    db = Database("bulk-bench", storage=storage)
    db.create_table(
        "records",
        columns=[
            Column("id", ColumnType.TEXT),
            Column("w", ColumnType.FLOAT),
        ],
        primary_key=["id"],
    )
    return db


def _bulk_rows(n, offset=0):
    return [{"id": f"R{offset + i}", "w": float(i % 97)} for i in range(n)]


@pytest.mark.benchmark(group="storage-bulk-load")
class TestBulkLoad:
    """ROADMAP "backend-aware bulk loading": ``Database.insert_many``
    must beat the row-at-a-time loop it replaced — under SQLite the
    batch is a single ``executemany`` transaction instead of one
    implicit transaction per row."""

    ROWS = 10_000

    @pytest.mark.parametrize("storage", STORAGE_BACKENDS)
    def test_insert_many(self, benchmark, storage):
        rows = _bulk_rows(self.ROWS)
        state = {}

        def setup():
            state["db"] = _loadable_db(storage)
            return (), {}

        def load():
            state["db"].insert_many("records", rows)

        benchmark.pedantic(load, setup=setup, rounds=3, iterations=1)
        assert len(state["db"].table("records")) == self.ROWS
        state["db"].close()

    def test_sqlite_bulk_beats_row_at_a_time(self, request):
        """The before/after check: the ``executemany`` fast path must
        not be slower than looping ``Database.insert`` (it is typically
        several-fold faster; the assertion allows scheduler noise)."""
        if request.config.getoption("benchmark_disable", False):
            # the CI smoke step runs with --benchmark-disable precisely
            # to avoid timing-dependent outcomes; a wall-clock
            # comparison there would flake on loaded runners
            pytest.skip("timing comparison skipped under --benchmark-disable")
        rows = _bulk_rows(self.ROWS)

        def timed(load):
            best = float("inf")
            for _ in range(3):
                db = _loadable_db("sqlite")
                started = time.perf_counter()
                load(db)
                best = min(best, time.perf_counter() - started)
                db.close()
            return best

        loop_seconds = timed(
            lambda db: [db.insert("records", row) for row in rows]
        )
        bulk_seconds = timed(lambda db: db.insert_many("records", rows))
        assert bulk_seconds < loop_seconds, (
            f"bulk insert ({bulk_seconds * 1e3:.1f} ms) must beat the "
            f"row-at-a-time loop ({loop_seconds * 1e3:.1f} ms)"
        )


@pytest.mark.benchmark(group="storage-sqlite-100k")
class TestSQLiteScale:
    """The acceptance-scale run: 100k+ records on disk, one Session."""

    def test_cold_execute_100k(self, benchmark, sqlite_100k):
        spec = sqlite_100k.spec(method="in_edge")

        def cold():
            with sqlite_100k.open_session(
                EngineConfig(cache_graphs=False)
            ) as session:
                return session.execute(spec)

        result = benchmark.pedantic(cold, rounds=3, iterations=1)
        assert len(result) >= 200  # one answer per surviving seed chain

    def test_warm_execute_100k(self, benchmark, sqlite_100k):
        spec = sqlite_100k.spec(method="in_edge")
        session = sqlite_100k.open_session()
        cold = session.execute(spec)

        result = benchmark.pedantic(
            lambda: session.execute(spec), rounds=3, iterations=20
        )
        assert result.scores == cold.scores
        assert session.stats_snapshot().queries_executed == 1


#: scan-bound shape for the vectorized speedup assertion: wide unindexed
#: link tables, few seeds — graph materialisation is all probe scans
_SCAN_SHAPE = dict(
    layers=3, width=50_000, fan_out=2, seeds=20, rng=5, index_links=False
)


@pytest.mark.benchmark(group="storage-vectorized-speedup")
class TestVectorizedSpeedup:
    """The headline perf claim: on scan-bound graph materialisation the
    vectorized backend's array probes must beat the row-at-a-time
    columnar scan ≥3x cold (measured ~12x here; the floor leaves room
    for slow CI runners)."""

    @staticmethod
    def _cold_seconds(workload, rounds=3):
        spec = workload.spec(method="in_edge")
        best = float("inf")
        for _ in range(rounds):
            with workload.open_session(
                EngineConfig(cache_graphs=False)
            ) as session:
                started = time.perf_counter()
                result = session.execute(spec)
                best = min(best, time.perf_counter() - started)
        assert len(result) > 0
        return best

    def test_cold_execute_beats_columnar_3x(self, request):
        if request.config.getoption("benchmark_disable", False):
            pytest.skip("timing comparison skipped under --benchmark-disable")
        columnar = self._cold_seconds(
            mediated_layers(storage="columnar", **_SCAN_SHAPE)
        )
        vectorized = self._cold_seconds(
            mediated_layers(storage="vectorized", **_SCAN_SHAPE)
        )
        assert vectorized * 3 < columnar, (
            f"vectorized cold execute ({vectorized * 1e3:.1f} ms) must be "
            f"≥3x faster than columnar ({columnar * 1e3:.1f} ms)"
        )

    def test_cold_execute_vectorized(self, benchmark):
        workload = mediated_layers(storage="vectorized", **_SCAN_SHAPE)
        spec = workload.spec(method="in_edge")

        def cold():
            with workload.open_session(
                EngineConfig(cache_graphs=False)
            ) as session:
                return session.execute(spec)

        result = benchmark.pedantic(cold, rounds=3, iterations=2)
        assert len(result) > 0


@pytest.fixture(scope="session")
def vectorized_100k_dir(tmp_path_factory):
    """A ≥100k-row table persisted as memory-mappable ``.npy`` columns."""
    path = tmp_path_factory.mktemp("bench-vec-100k") / "big"
    db = Database("big", storage="vectorized", storage_path=path)
    db.create_table(
        "t",
        columns=[Column("k", ColumnType.INT), Column("w", ColumnType.FLOAT)],
    )
    n = 150_000
    db.insert_many(
        "t", [{"k": i, "w": (i % 97) / 97.0} for i in range(n)]
    )
    db.close()
    return path, n


@pytest.mark.benchmark(group="storage-vectorized-attach")
class TestVectorizedAttach:
    """Cold attach of persisted layers reads only the manifest: columns
    stay memory-mapped, so attach latency is O(1) in row count and a
    point probe pages in just the blocks it touches."""

    def test_cold_attach_150k_rows(self, benchmark, vectorized_100k_dir):
        path, n = vectorized_100k_dir
        columns = [Column("k", ColumnType.INT), Column("w", ColumnType.FLOAT)]

        def attach_and_probe():
            db = Database("big", storage="vectorized", storage_path=path)
            table = db.create_table("t", columns)
            backend = table._backend
            assert len(table) == n
            # still mapped, not loaded — the O(1)-attach invariant
            assert isinstance(backend._cols["k"]._arr, np.memmap)
            assert isinstance(backend._cols["w"]._arr, np.memmap)
            row = table.lookup(("k",), (n - 1,))[0]
            db.close()  # untouched: close must not rewrite the files
            return row["w"]

        result = benchmark.pedantic(attach_and_probe, rounds=3, iterations=3)
        assert result == ((n - 1) % 97) / 97.0
