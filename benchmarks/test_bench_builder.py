"""Builder benchmarks: set-at-a-time vs scalar graph materialisation.

Measures, at the scale of the fig4/fig5 experiment graphs (the ABCC8
running example is 484 nodes / 749 edges):

* batched vs scalar build throughput on a mediated multi-source
  workload whose link tables are *unindexed* (thin wrappers without
  predicate push-down — every scalar probe is a table scan, while the
  batched builder issues one scan per BFS level). This is the regime
  the set-at-a-time refactor targets; expect an order of magnitude.
* the same comparison with indexed link tables (push-down sources),
  where batching wins constant factors only;
* batched vs scalar on the real ABCC8 biology case; and
* cold vs warm :meth:`~repro.engine.RankingEngine.execute` — the warm
  path must be served entirely from the engine's query cache without
  touching storage.
"""

import pytest

from repro.engine import RankingEngine
from repro.integration.query import ExploratoryQuery
from repro.workloads import mediated_layers


@pytest.fixture(scope="session")
def scan_workload():
    """Fig4/fig5-scale mediated workload, unindexed link tables."""
    return mediated_layers(
        layers=4, width=160, fan_out=3, seeds=4, rng=0, index_links=False
    )


@pytest.fixture(scope="session")
def indexed_workload():
    """Same shape, link tables with push-down (hash-indexed probes)."""
    return mediated_layers(
        layers=4, width=160, fan_out=3, seeds=4, rng=0, index_links=True
    )


@pytest.fixture(scope="session")
def abcc8_query(abcc8):
    return (
        abcc8.case.mediator,
        ExploratoryQuery(
            "EntrezProtein", "name", abcc8.case.spec.protein, outputs=("GOTerm",)
        ),
    )


@pytest.mark.benchmark(group="builder-scan-sources")
class TestScanSourceBuild:
    """Unindexed (wrapper-style) sources: the batched builder's home turf."""

    def test_scalar_build(self, benchmark, scan_workload):
        benchmark.pedantic(
            lambda: scan_workload.query.execute(
                scan_workload.mediator, builder="scalar"
            ),
            rounds=3,
            iterations=2,
        )

    def test_batched_build(self, benchmark, scan_workload):
        benchmark.pedantic(
            lambda: scan_workload.query.execute(
                scan_workload.mediator, builder="batched"
            ),
            rounds=3,
            iterations=2,
        )


@pytest.mark.benchmark(group="builder-indexed-sources")
class TestIndexedSourceBuild:
    def test_scalar_build(self, benchmark, indexed_workload):
        benchmark.pedantic(
            lambda: indexed_workload.query.execute(
                indexed_workload.mediator, builder="scalar"
            ),
            rounds=3,
            iterations=5,
        )

    def test_batched_build(self, benchmark, indexed_workload):
        benchmark.pedantic(
            lambda: indexed_workload.query.execute(
                indexed_workload.mediator, builder="batched"
            ),
            rounds=3,
            iterations=5,
        )


@pytest.mark.benchmark(group="builder-biology-case")
class TestBiologyCaseBuild:
    def test_scalar_build(self, benchmark, abcc8_query):
        mediator, query = abcc8_query
        benchmark.pedantic(
            lambda: query.execute(mediator, builder="scalar"),
            rounds=3,
            iterations=3,
        )

    def test_batched_build(self, benchmark, abcc8_query):
        mediator, query = abcc8_query
        benchmark.pedantic(
            lambda: query.execute(mediator, builder="batched"),
            rounds=3,
            iterations=3,
        )


@pytest.mark.benchmark(group="builder-query-cache")
class TestQueryCache:
    def test_cold_execute(self, benchmark, abcc8_query):
        mediator, query = abcc8_query

        def cold():
            return RankingEngine(mediator=mediator).execute(query)

        benchmark.pedantic(cold, rounds=3, iterations=3)

    def test_warm_execute(self, benchmark, abcc8_query):
        mediator, query = abcc8_query
        engine = RankingEngine(mediator=mediator)
        engine.execute(query)  # populate the query cache

        def warm():
            return engine.execute(query)

        result = benchmark.pedantic(warm, rounds=3, iterations=100)
        assert result is not None
        assert engine.stats.graph_hits > 0
        assert engine.stats.queries_executed == 1  # storage touched once
