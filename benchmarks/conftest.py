"""Shared benchmark fixtures (built once per session)."""

from __future__ import annotations

import pytest

from repro.biology.scenarios import build_scenario
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph


@pytest.fixture(scope="session")
def scenario1_cases():
    """The first five scenario-1 query graphs (ABCC8 ... ATP7A)."""
    return build_scenario(1, seed=0, limit=5)


@pytest.fixture(scope="session")
def abcc8(scenario1_cases):
    """The paper's running example graph (97 answers)."""
    return scenario1_cases[0]


@pytest.fixture(scope="session")
def scenario3_cases():
    return build_scenario(3, seed=0, limit=4)


@pytest.fixture(scope="session")
def wheatstone_graph() -> QueryGraph:
    graph = ProbabilisticEntityGraph()
    for node in ("s", "a", "b", "u"):
        graph.add_node(node)
    graph.add_edge("s", "a", q=0.5)
    graph.add_edge("s", "b", q=0.5)
    graph.add_edge("a", "b", q=0.5)
    graph.add_edge("a", "u", q=0.5)
    graph.add_edge("b", "u", q=0.5)
    return QueryGraph(graph, "s", ["u"])
