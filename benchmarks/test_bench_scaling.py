"""Scaling ablation: ranking cost vs graph size on synthetic workloads.

Not a paper figure — an ablation of the complexity claims: propagation
and the deterministic methods scale linearly in edges; reduced Monte
Carlo reliability scales with the trial count times the reduced size.
"""

import pytest

from repro.core.ranker import rank
from repro.workloads import WorkloadSpec, layered_dag

SIZES = {
    "small": WorkloadSpec(layers=3, width=10),
    "medium": WorkloadSpec(layers=4, width=40),
    "large": WorkloadSpec(layers=5, width=100),
}


@pytest.mark.benchmark(group="scaling-propagation")
class TestPropagationScaling:
    @pytest.mark.parametrize("size", list(SIZES))
    def test_propagation(self, benchmark, size):
        qg = layered_dag(SIZES[size], rng=0)
        benchmark.pedantic(lambda: rank(qg, "propagation"), rounds=3, iterations=1)


@pytest.mark.benchmark(group="scaling-reliability")
class TestReliabilityScaling:
    @pytest.mark.parametrize("size", ["small", "medium"])
    def test_reliability_mc(self, benchmark, size):
        qg = layered_dag(SIZES[size], rng=0)
        benchmark.pedantic(
            lambda: rank(qg, "reliability", strategy="mc", trials=500, rng=1),
            rounds=3,
            iterations=1,
        )


@pytest.mark.benchmark(group="scaling-deterministic")
class TestDeterministicScaling:
    @pytest.mark.parametrize("size", list(SIZES))
    def test_path_count(self, benchmark, size):
        qg = layered_dag(SIZES[size], rng=0)
        benchmark(lambda: rank(qg, "path_count"))
