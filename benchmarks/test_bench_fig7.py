"""Fig 7: Monte Carlo cost as a function of the trial count.

The per-trial cost is linear, so the ladder of benchmarks doubles as the
timing backdrop of the convergence experiment (the AP side of Fig 7 is
computed by ``python -m repro.experiments fig7``).
"""

import pytest

from repro.core.montecarlo import naive_reliability, traversal_reliability
from repro.core.reduction import reduce_graph


@pytest.mark.benchmark(group="fig7-mc-trials")
class TestTrialLadder:
    @pytest.mark.parametrize("trials", [10, 100, 1000])
    def test_traversal_mc(self, benchmark, abcc8, trials):
        reduced, _ = reduce_graph(abcc8.query_graph)
        benchmark.pedantic(
            lambda: traversal_reliability(reduced, trials=trials, rng=1),
            rounds=3,
            iterations=1,
        )


@pytest.mark.benchmark(group="fig7-traversal-speedup")
class TestTraversalSpeedup:
    """§3.1's claim: the traversal estimator beats the naive one
    (paper: 3.4x on the raw graphs)."""

    def test_naive_1k(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: naive_reliability(qg, trials=1000, rng=1),
            rounds=2,
            iterations=1,
        )

    def test_traversal_1k(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: traversal_reliability(qg, trials=1000, rng=1),
            rounds=2,
            iterations=1,
        )
