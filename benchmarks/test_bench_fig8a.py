"""Fig 8a: cost of the six reliability evaluation strategies.

Benchmarks M1/M2/C/R&M1/R&M2/R&C on the ABCC8 query graph. The paper's
shape to verify in the output: the reduced variants crush the raw ones,
R&M2 and R&C are the cheapest, M1 is the most expensive.
"""

import pytest

from repro.core.closed_form import closed_form_reliability
from repro.core.montecarlo import traversal_reliability
from repro.core.reduction import reduce_graph


@pytest.mark.benchmark(group="fig8a-reliability-strategies")
class TestFig8a:
    def test_m1_monte_carlo_10k(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: traversal_reliability(qg, trials=10_000, rng=1),
            rounds=1,
            iterations=1,
        )

    def test_m2_monte_carlo_1k(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: traversal_reliability(qg, trials=1_000, rng=1),
            rounds=3,
            iterations=1,
        )

    def test_c_closed_solution(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(lambda: closed_form_reliability(qg), rounds=3, iterations=1)

    def test_r_m1_reduce_then_10k(self, benchmark, abcc8):
        qg = abcc8.query_graph

        def run():
            working, _ = reduce_graph(qg)
            return traversal_reliability(working, trials=10_000, rng=1)

        benchmark.pedantic(run, rounds=1, iterations=1)

    def test_r_m2_reduce_then_1k(self, benchmark, abcc8):
        qg = abcc8.query_graph

        def run():
            working, _ = reduce_graph(qg)
            return traversal_reliability(working, trials=1_000, rng=1)

        benchmark.pedantic(run, rounds=3, iterations=1)

    def test_r_c_reduce_then_closed(self, benchmark, abcc8):
        qg = abcc8.query_graph

        def run():
            working, _ = reduce_graph(qg)
            return closed_form_reliability(working)

        benchmark.pedantic(run, rounds=3, iterations=1)
