"""Fig 8a: cost of the six reliability evaluation strategies.

Benchmarks M1/M2/C/R&M1/R&M2/R&C on the ABCC8 query graph, routed
through a caching-disabled :class:`~repro.engine.RankingEngine` (the
same path the experiment driver takes). The paper's shape to verify in
the output: the reduced variants crush the raw ones, R&M2 and R&C are
the cheapest, M1 is the most expensive. The compiled M2 row shows the
block-sampled CSR kernel against the scalar traversal sampler.
"""

import pytest

from repro.core.reduction import reduce_graph
from repro.engine import RankingEngine


@pytest.fixture(scope="module")
def engine():
    """Caching off: these rows time the scoring work, not a cache probe."""
    return RankingEngine(cache_scores=False)


@pytest.mark.benchmark(group="fig8a-reliability-strategies")
class TestFig8a:
    def test_m1_monte_carlo_10k(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: engine.rank(
                qg, "reliability", backend="reference",
                strategy="mc", reduce=False, trials=10_000, rng=1,
            ),
            rounds=1,
            iterations=1,
        )

    def test_m2_monte_carlo_1k(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: engine.rank(
                qg, "reliability", backend="reference",
                strategy="mc", reduce=False, trials=1_000, rng=1,
            ),
            rounds=3,
            iterations=1,
        )

    def test_m2_compiled_block_1k(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: engine.rank(
                qg, "reliability", backend="compiled",
                strategy="mc", reduce=False, trials=1_000, rng=1,
            ),
            rounds=3,
            iterations=1,
        )

    def test_c_closed_solution(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: engine.rank(qg, "reliability", strategy="closed"),
            rounds=3,
            iterations=1,
        )

    def test_r_m1_reduce_then_10k(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: engine.rank(
                qg, "reliability", backend="reference",
                strategy="mc", reduce=True, trials=10_000, rng=1,
            ),
            rounds=1,
            iterations=1,
        )

    def test_r_m2_reduce_then_1k(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: engine.rank(
                qg, "reliability", backend="reference",
                strategy="mc", reduce=True, trials=1_000, rng=1,
            ),
            rounds=3,
            iterations=1,
        )

    def test_r_c_reduce_then_closed(self, benchmark, abcc8, engine):
        qg = abcc8.query_graph

        def run():
            working, _ = reduce_graph(qg)
            return engine.rank(working, "reliability", strategy="closed")

        benchmark.pedantic(run, rounds=3, iterations=1)
