"""Fig 8b: cost of the five ranking methods on the ABCC8 graph.

The paper's shape: InEdge and PathCount are 1-2 orders of magnitude
cheaper than the probabilistic methods, with reliability (reduction +
1,000 Monte Carlo trials) the most expensive, yet everything stays
interactive.
"""

import pytest

from repro.core.ranker import rank


@pytest.mark.benchmark(group="fig8b-ranking-methods")
class TestFig8b:
    def test_reliability_r_m2(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark(
            lambda: rank(qg, "reliability", strategy="mc", trials=1000, rng=1)
        )

    def test_propagation(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark(lambda: rank(qg, "propagation"))

    def test_diffusion(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark(lambda: rank(qg, "diffusion"))

    def test_in_edge(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark(lambda: rank(qg, "in_edge"))

    def test_path_count(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark(lambda: rank(qg, "path_count"))
