"""Engine benchmarks: compiled vs reference backends, cold vs warm cache.

Measures, on the Fig 8a-style ABCC8 query graph (484 nodes / 749 edges):

* the compiled block-sampled Monte Carlo kernel against the reference
  traversal sampler (the paper's compute bottleneck);
* the vectorized propagation/diffusion sweeps against the dict sweeps;
* a cold :class:`~repro.engine.RankingEngine` (compile + score) against
  a warm one (fingerprint-keyed cache probe) on a `rank_many` batch.
"""

import pytest

from repro.core.kernels import (
    compile_graph,
    diffusion_scores_compiled,
    propagation_scores_compiled,
    traversal_reliability_compiled,
)
from repro.core.diffusion import diffusion_scores
from repro.core.montecarlo import traversal_reliability
from repro.core.propagation import propagation_scores
from repro.engine import RankingEngine

ENGINE_METHODS = ("propagation", "diffusion", "in_edge")


@pytest.mark.benchmark(group="engine-montecarlo-backends")
class TestMonteCarloBackends:
    def test_reference_traversal_1k(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(
            lambda: traversal_reliability(qg, trials=1_000, rng=1),
            rounds=3,
            iterations=1,
        )

    def test_compiled_block_1k(self, benchmark, abcc8):
        qg = abcc8.query_graph
        compiled = compile_graph(qg)
        benchmark.pedantic(
            lambda: traversal_reliability_compiled(
                compiled=compiled, trials=1_000, rng=1
            ),
            rounds=3,
            iterations=1,
        )


@pytest.mark.benchmark(group="engine-sweep-backends")
class TestSweepBackends:
    def test_reference_propagation(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(lambda: propagation_scores(qg), rounds=3, iterations=2)

    def test_compiled_propagation(self, benchmark, abcc8):
        compiled = compile_graph(abcc8.query_graph)
        benchmark.pedantic(
            lambda: propagation_scores_compiled(compiled=compiled),
            rounds=3,
            iterations=2,
        )

    def test_reference_diffusion(self, benchmark, abcc8):
        qg = abcc8.query_graph
        benchmark.pedantic(lambda: diffusion_scores(qg), rounds=3, iterations=2)

    def test_compiled_diffusion(self, benchmark, abcc8):
        compiled = compile_graph(abcc8.query_graph)
        benchmark.pedantic(
            lambda: diffusion_scores_compiled(compiled=compiled),
            rounds=3,
            iterations=2,
        )


@pytest.mark.benchmark(group="engine-cache")
class TestEngineCache:
    def test_cold_engine_batch(self, benchmark, scenario1_cases):
        graphs = [case.query_graph for case in scenario1_cases]

        def cold():
            engine = RankingEngine()
            return engine.rank_many(graphs, methods=ENGINE_METHODS)

        benchmark.pedantic(cold, rounds=3, iterations=1)

    def test_warm_engine_batch(self, benchmark, scenario1_cases):
        graphs = [case.query_graph for case in scenario1_cases]
        engine = RankingEngine()
        engine.rank_many(graphs, methods=ENGINE_METHODS)  # warm the caches

        def warm():
            return engine.rank_many(graphs, methods=ENGINE_METHODS)

        result = benchmark.pedantic(warm, rounds=3, iterations=1)
        assert len(result) == len(graphs)
        assert engine.stats.score_hits > 0
