"""Fig 4: the five relevance semantics on the toy topologies.

Micro-benchmarks of each scoring function on the Wheatstone bridge —
the smallest graph on which all five semantics genuinely differ.
"""

import pytest

from repro.core.deterministic import in_edge_scores, path_count_scores
from repro.core.diffusion import diffusion_scores
from repro.core.exact import exact_reliability
from repro.core.propagation import propagation_scores


@pytest.mark.benchmark(group="fig4-toy-topologies")
class TestFig4:
    def test_reliability_exact(self, benchmark, wheatstone_graph):
        result = benchmark(lambda: exact_reliability(wheatstone_graph))
        assert result["u"] == pytest.approx(0.46875)

    def test_propagation(self, benchmark, wheatstone_graph):
        result = benchmark(lambda: propagation_scores(wheatstone_graph))
        assert result["u"] == pytest.approx(0.484375)

    def test_diffusion(self, benchmark, wheatstone_graph):
        result = benchmark(lambda: diffusion_scores(wheatstone_graph))
        assert result["u"] == pytest.approx(1 / 6, abs=1e-9)

    def test_in_edge(self, benchmark, wheatstone_graph):
        result = benchmark(lambda: in_edge_scores(wheatstone_graph))
        assert result["u"] == 2.0

    def test_path_count(self, benchmark, wheatstone_graph):
        result = benchmark(lambda: path_count_scores(wheatstone_graph))
        assert result["u"] == 3.0
