"""Fig 5: the scenario AP evaluations as benchmarks.

Each benchmark runs a full ranking + tie-aware AP evaluation of one
method over a scenario subset — the unit of work behind each bar of
Fig 5a/5c.
"""

import pytest

from repro.experiments.runner import evaluate_scenario_ap


@pytest.mark.benchmark(group="fig5-scenario-evaluation")
class TestScenarioEvaluation:
    @pytest.mark.parametrize(
        "method", ["reliability", "propagation", "diffusion", "in_edge", "path_count"]
    )
    def test_scenario1_method(self, benchmark, scenario1_cases, method):
        benchmark.pedantic(
            lambda: evaluate_scenario_ap(
                scenario1_cases, methods=(method,), include_random=False
            ),
            rounds=1,
            iterations=1,
        )

    def test_scenario3_all_methods(self, benchmark, scenario3_cases):
        benchmark.pedantic(
            lambda: evaluate_scenario_ap(scenario3_cases),
            rounds=1,
            iterations=1,
        )
