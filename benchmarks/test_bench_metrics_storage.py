"""Substrate benchmarks: tie-aware AP and the storage engine.

Not a paper figure, but the cost floors under every experiment: the
tie-aware expected AP over a large partially-tied answer list, and the
storage engine's insert/lookup throughput (what the mediator pays during
link-following).
"""

import pytest

from repro.metrics.average_precision import expected_average_precision
from repro.storage import Column, ColumnType, Database


@pytest.mark.benchmark(group="metrics")
class TestMetrics:
    def test_expected_ap_large_tied_list(self, benchmark):
        # 1000 items in 10 tie groups, 50 relevant — a worst-case InEdge
        # result list
        scores = {f"i{k}": float(k % 10) for k in range(1000)}
        relevant = {f"i{k}" for k in range(0, 1000, 20)}
        value = benchmark(lambda: expected_average_precision(scores, relevant))
        assert 0.0 <= value <= 1.0

    def test_expected_ap_fully_ordered(self, benchmark):
        scores = {f"i{k}": float(k) for k in range(1000)}
        relevant = {f"i{k}" for k in range(900, 1000)}
        benchmark(lambda: expected_average_precision(scores, relevant))


@pytest.mark.benchmark(group="storage")
class TestStorage:
    def test_bulk_insert_with_fk_checks(self, benchmark):
        def build():
            db = Database("bench")
            db.create_table(
                "genes",
                columns=[Column("gid", ColumnType.TEXT)],
                primary_key=["gid"],
            )
            db.create_table(
                "annotations",
                columns=[
                    Column("gid", ColumnType.TEXT),
                    Column("term", ColumnType.TEXT),
                ],
            )
            db.table("annotations").create_index("by_gid", ["gid"])
            for i in range(200):
                db.insert("genes", {"gid": f"G{i}"})
            for i in range(1000):
                db.insert(
                    "annotations", {"gid": f"G{i % 200}", "term": f"GO:{i}"}
                )
            return db

        benchmark.pedantic(build, rounds=3, iterations=1)

    def test_indexed_lookup(self, benchmark):
        db = Database("bench")
        db.create_table(
            "annotations",
            columns=[
                Column("gid", ColumnType.TEXT),
                Column("term", ColumnType.TEXT),
            ],
        )
        db.table("annotations").create_index("by_gid", ["gid"])
        for i in range(5000):
            db.table("annotations").insert(
                {"gid": f"G{i % 500}", "term": f"GO:{i}"}
            )
        table = db.table("annotations")
        result = benchmark(lambda: table.lookup(("gid",), ("G250",)))
        assert len(result) == 10
