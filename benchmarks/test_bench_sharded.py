"""Sharded scatter/gather vs single-engine execution.

Two questions on the mediated serving workload:

* **cold** — what does scatter/gather add to a cold ``Session.execute``
  (N graph materialisations over partition-pruned answer layers,
  thread-pooled, plus the merge) at 2 and 4 shards, against the single
  engine's one full materialisation?
* **warm** — what is the steady-state scatter/gather overhead when
  every shard serves from its query/score caches (N cache probes + one
  merge vs one cache probe)? This is the per-request price of sharding
  under serving traffic, which the cold-path memory headroom buys.
"""

import pytest

from repro.workloads import mediated_layers

#: serving-sized workload: the answer layer dominates the graph
_SHAPE = dict(layers=3, width=900, fan_out=3, seeds=4, rng=13)

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="session", params=SHARD_COUNTS)
def sharded_workload(request):
    shards = request.param
    workload = mediated_layers(shards=shards, **_SHAPE)
    yield shards, workload
    workload.close()


def _fresh_session(shards, workload):
    return workload.open_session(sharded=shards > 1)


@pytest.mark.benchmark(group="sharded-cold-execute")
class TestColdExecute:
    def test_cold(self, benchmark, sharded_workload):
        shards, workload = sharded_workload
        spec = workload.spec(method="in_edge")

        def cold():
            with _fresh_session(shards, workload) as session:
                return session.execute(spec)

        result = benchmark.pedantic(cold, rounds=3, iterations=1)
        assert len(result) > 0


@pytest.mark.benchmark(group="sharded-warm-execute")
class TestWarmExecute:
    def test_warm(self, benchmark, sharded_workload):
        shards, workload = sharded_workload
        spec = workload.spec(method="in_edge")
        session = _fresh_session(shards, workload)
        reference = session.execute(spec)  # warm every shard's caches

        result = benchmark.pedantic(
            lambda: session.execute(spec), rounds=3, iterations=20
        )
        assert result.scores == reference.scores
        stats = session.stats_snapshot()
        assert stats.graph_hits > 0
        # warm hits never re-materialise: one cold execution per shard
        assert stats.queries_executed == max(1, shards)
        session.close()
