"""Incremental invalidation benchmarks: streaming refresh vs cold rebuild.

The streaming scenario the ISSUE's tentpole targets: a warm serving
engine over ~108k source rows (3 layers x 12k entities + 2 x 36k
unindexed links) whose answer layer receives periodic batched weight
refreshes. A refresh dirties ~10 entity records, so the delta replay
re-probes a handful of primary-key rows and patches the compiled CSR —
while a cold rebuild must re-scan the unindexed link tables end to end.

Measured here:

* the per-refresh serving latency of the incremental engine (repair
  path) and of an ``incremental=False`` engine (cold re-materialise);
* the headline ratio — incremental refresh must be >= 3x faster than
  the cold rebuild (typically far more; the floor absorbs CI noise);
* cache-hit-flatness for *untouched* queries: mutations to a bound
  table the cached build never read must leave the entry warm (zero
  extra ``graph_misses``), so unrelated ingest cannot degrade serving.

Wall-clock comparisons are skipped under ``--benchmark-disable`` (the
CI smoke step), matching the other benchmark suites.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import RankingEngine
from repro.integration.sources import DataSource, EntityBinding
from repro.storage import Column, ColumnType, Database
from repro.workloads import mediated_layers

#: scan-bound streaming shape: wide unindexed link tables, one seed —
#: a cold build is dominated by full-table link scans, a repair is not
_STREAM_SHAPE = dict(
    layers=3, width=12_000, fan_out=3, seeds=1, rng=7, index_links=False
)

#: rows refreshed per simulated source update
_REFRESH = 10


def _warm_workload(incremental=True):
    workload = mediated_layers(**_STREAM_SHAPE)
    engine = RankingEngine(mediator=workload.mediator, incremental=incremental)
    qg = engine.execute(workload.query)  # cold baseline, cached
    engine.compile(qg)  # so refreshes exercise the CSR patch too
    return workload, engine


@pytest.mark.benchmark(group="engine-incremental-refresh")
class TestStreamingRefresh:
    def test_incremental_refresh(self, benchmark):
        workload, engine = _warm_workload(incremental=True)
        state = {"tick": 0}

        def refresh():
            state["tick"] += 1
            workload.refresh_entity_weights(count=_REFRESH, rng=state["tick"])
            return (), {}

        benchmark.pedantic(
            lambda: engine.execute(workload.query),
            setup=refresh,
            rounds=5,
            iterations=1,
        )
        stats = engine.stats_snapshot()
        assert stats.graph_repairs == state["tick"]  # every round repaired
        assert stats.graph_misses == 1  # only the baseline was cold
        workload.close()

    def test_cold_refresh(self, benchmark):
        workload, engine = _warm_workload(incremental=False)
        state = {"tick": 0}

        def refresh():
            state["tick"] += 1
            workload.refresh_entity_weights(count=_REFRESH, rng=state["tick"])
            return (), {}

        benchmark.pedantic(
            lambda: engine.execute(workload.query),
            setup=refresh,
            rounds=3,
            iterations=1,
        )
        stats = engine.stats_snapshot()
        assert stats.graph_repairs == 0
        assert stats.graph_misses == state["tick"] + 1
        workload.close()

    def test_incremental_beats_cold_3x(self, request):
        """The tentpole's headline claim, asserted."""
        if request.config.getoption("benchmark_disable", False):
            pytest.skip("timing comparison skipped under --benchmark-disable")

        def refresh_seconds(incremental, rounds=3):
            workload, engine = _warm_workload(incremental=incremental)
            best = float("inf")
            for tick in range(1, rounds + 1):
                workload.refresh_entity_weights(count=_REFRESH, rng=100 + tick)
                started = time.perf_counter()
                engine.execute(workload.query)
                best = min(best, time.perf_counter() - started)
            stats = engine.stats_snapshot()
            if incremental:
                assert stats.graph_repairs == rounds
            else:
                assert stats.graph_misses == rounds + 1
            workload.close()
            return best

        cold = refresh_seconds(incremental=False)
        incremental = refresh_seconds(incremental=True)
        assert incremental * 3 < cold, (
            f"incremental refresh ({incremental * 1e3:.1f} ms) must be "
            f">=3x faster than a cold rebuild ({cold * 1e3:.1f} ms)"
        )


@pytest.mark.benchmark(group="engine-incremental-untouched")
class TestUntouchedQueryFlatness:
    """Ingest into tables a cached query never read must not disturb
    its serving latency: the entry stays a plain dictionary probe."""

    @staticmethod
    def _attach_side_source(workload):
        db = Database("side_db")
        db.create_table(
            "extras",
            [Column("id", ColumnType.TEXT), Column("w", ColumnType.FLOAT)],
            primary_key=["id"],
        )
        db.insert("extras", {"id": "X0", "w": 0.5})
        workload.mediator.register(
            DataSource(
                name="side",
                database=db,
                entities=(EntityBinding("Extra", table="extras", key_column="id"),),
            )
        )
        return db

    def test_untouched_query_stays_cache_hit_flat(self, benchmark):
        workload, engine = _warm_workload()
        side = self._attach_side_source(workload)
        engine.execute(workload.query)  # re-record after the structural miss
        baseline = engine.stats_snapshot()
        state = {"tick": 0}

        def ingest():
            state["tick"] += 1
            side.insert("extras", {"id": f"X{state['tick']}", "w": 0.25})
            return (), {}

        benchmark.pedantic(
            lambda: engine.execute(workload.query),
            setup=ingest,
            rounds=5,
            iterations=1,
        )
        stats = engine.stats_snapshot()
        assert stats.graph_misses == baseline.graph_misses  # zero new misses
        assert stats.graph_repairs == baseline.graph_repairs
        assert stats.graph_hits == baseline.graph_hits + state["tick"]
        workload.close()
