"""§3.1 graph reductions: cost and effectiveness.

Benchmarks the reduction pass on real scenario graphs; the tests also
assert the paper's effectiveness headline (the reductions remove most of
the workflow graph — paper: 78 % of nodes+edges).
"""

import pytest

from repro.core.reduction import reduce_graph


@pytest.mark.benchmark(group="reductions")
class TestReductions:
    def test_reduce_abcc8(self, benchmark, abcc8):
        qg = abcc8.query_graph
        _, stats = reduce_graph(qg)
        assert stats.combined_reduction > 0.5
        benchmark(lambda: reduce_graph(qg))

    def test_reduce_small_scenario3(self, benchmark, scenario3_cases):
        qg = scenario3_cases[0].query_graph
        benchmark(lambda: reduce_graph(qg))

    def test_per_target_subgraph_extraction(self, benchmark, abcc8):
        qg = abcc8.query_graph
        target = qg.targets[0]
        benchmark(lambda: qg.between_subgraph(target))
