"""Sustained concurrent-client throughput: async core vs thread-pooled
``execute_many``.

The serving question: 128 concurrent clients each stream requests over
a small spec pool (heavy duplication — the serving shape), against a
cold cache each round. The pre-async baseline is the only concurrency
primitive the sync surface offers: one thread per client, each calling
``Session.execute_many`` on its own batch — so every wave pays 128 OS
threads spawned, GIL-thrashed and joined. The async core runs the same
streams as client *tasks* over one :class:`~repro.async_.AsyncSession`
— tasks are near-free, cache-resident requests are answered inline on
the event loop, duplicates coalesce onto in-flight executions, and
cold builds are bounded by ``max_concurrency`` executor threads.

Three claims, asserted on every benchmark-enabled run:

* coalescing hit-rate — each cold round performs exactly one traversal
  per distinct spec; every other request is a coalesced wait or a
  cache hit (``graph_misses + graph_hits + coalesced == requests``);
* bit-identity — async results equal the sync path's, spec by spec;
* throughput — the async clients sustain at least the thread-pooled
  ``execute_many`` baseline's request rate (skipped under
  ``--benchmark-disable``, matching the other suites).

The snapshot committed as ``BENCH_10.json`` (via
``tools/bench_report.py --write --report BENCH_10.json``) records the
measured shape.
"""

from __future__ import annotations

import statistics
import threading
import time

import pytest

from repro.api import EngineConfig
from repro.api.spec import QuerySpec
from repro.workloads import client_streams, mediated_layers, run_async_clients

#: serving-sized workload on sqlite storage: builds do real DB reads,
#: so storage I/O genuinely overlaps scoring across executor threads
_SHAPE = dict(layers=3, width=1000, fan_out=3, seeds=2, rng=13, storage="sqlite")
#: 128 clients over 8 distinct traversals: every wave carries duplicates
_CLIENTS = 128
_REQUESTS = 4
_POOL = 8


@pytest.fixture(scope="module")
def workload():
    generated = mediated_layers(**_SHAPE)
    yield generated
    generated.close()


@pytest.fixture(scope="module")
def specs():
    # distinct roots -> distinct traversal signatures; shared outputs
    return [
        QuerySpec(
            entity_set="E0",
            attribute="id",
            value=f"E0:{i}",
            outputs=("E1", "E2"),
            method="in_edge",
        )
        for i in range(_POOL)
    ]


@pytest.fixture(scope="module")
def streams(specs):
    return client_streams(specs, clients=_CLIENTS, requests_per_client=_REQUESTS)


def _run_threaded_execute_many(session, streams):
    """The baseline: one thread per client, each thread serving its
    stream through one ``execute_many`` batch (released together, so
    the first wave is maximally concurrent)."""
    barrier = threading.Barrier(len(streams))
    outcomes = [None] * len(streams)

    def client(index, stream):
        barrier.wait()
        outcomes[index] = session.execute_many(list(stream))

    threads = [
        threading.Thread(target=client, args=(i, stream), daemon=True)
        for i, stream in enumerate(streams)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    return outcomes, seconds


@pytest.mark.benchmark(group="async-concurrent-clients")
class TestConcurrentClients:
    """Cold cache per round; 512 requests over 8 distinct traversals."""

    def test_async_clients(self, benchmark, workload, specs, streams):
        session = workload.open_session(config=EngineConfig())
        reports = []

        def round_():
            session.engine.invalidate()
            report = run_async_clients(session, streams)
            reports.append(report)
            return report

        try:
            report = benchmark.pedantic(
                round_, rounds=5, iterations=1, warmup_rounds=1
            )
            assert report.errors == 0
            assert report.requests == _CLIENTS * _REQUESTS

            # coalescing hit-rate: one traversal per distinct spec, and
            # every request accounted for as miss, hit, or coalesced
            delta = report.stats_delta
            assert delta.graph_misses == _POOL
            assert delta.coalesced_queries > 0
            assert (
                delta.graph_misses + delta.graph_hits + delta.coalesced_queries
                == report.requests
            )

            # bit-identity with the sync path, spec by spec
            flat = [spec for stream in streams for spec in stream]
            for spec, result in zip(flat, report.results):
                reference = session.execute(spec)
                assert dict(result.scores) == dict(reference.scores)
        finally:
            session.close()

    def test_threaded_execute_many(self, benchmark, workload, streams):
        session = workload.open_session(config=EngineConfig())

        def round_():
            session.engine.invalidate()
            outcomes, _ = _run_threaded_execute_many(session, streams)
            return outcomes

        try:
            outcomes = benchmark.pedantic(
                round_, rounds=5, iterations=1, warmup_rounds=1
            )
            assert all(len(batch) == _REQUESTS for batch in outcomes)
        finally:
            session.close()


class TestAsyncAtLeastMatchesBaseline:
    """The acceptance bar, timed directly (assertion-only: emits no
    benchmark record, so it is not listed in the snapshot)."""

    def test_async_throughput_at_least_execute_many(
        self, request, workload, streams
    ):
        if request.config.getoption("benchmark_disable", False):
            pytest.skip("timing comparison skipped under --benchmark-disable")
        session = workload.open_session(config=EngineConfig())
        try:
            def async_round():
                session.engine.invalidate()
                return run_async_clients(session, streams).throughput

            def baseline_round():
                session.engine.invalidate()
                _, seconds = _run_threaded_execute_many(session, streams)
                return (_CLIENTS * _REQUESTS) / seconds

            async_round()  # warm the executor and loop machinery once
            baseline_round()
            async_median = statistics.median(async_round() for _ in range(5))
            baseline_median = statistics.median(
                baseline_round() for _ in range(5)
            )
            assert async_median >= baseline_median, (
                f"async clients sustained {async_median:.0f} req/s, below "
                f"the thread-pooled execute_many baseline's "
                f"{baseline_median:.0f} req/s"
            )
        finally:
            session.close()
