"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
