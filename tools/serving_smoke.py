#!/usr/bin/env python3
"""End-to-end smoke of the serving stack, as CI runs it.

Boots ``python -m repro.serving`` as a real subprocess (process shard
mode over a generated ``mediated_layers`` workload), then drives it the
way an operator and a client would:

1. waits for the address announcement on stdout and polls ``/health``;
2. executes a query over HTTP and compares every score bit-for-bit
   against an in-process single-engine session on the same workload;
3. exercises ``/execute_many``, ``/explain``, ``/stats`` and
   ``/shard_stats``;
4. SIGKILLs one shard worker (pid taken from ``/shard_stats``) and
   re-runs the query — the supervised restart must produce the same
   bit-identical answer, and ``/shard_stats`` must show the restart;
5. shuts the server down with SIGTERM and verifies a clean exit with
   no surviving worker processes.

Exit status: 0 on success; non-zero with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
WORKLOAD = {"layers": 3, "width": 40, "fan_out": 3, "seeds": 1, "rng": 7}
SHARDS = 2
BOOT_TIMEOUT = 120.0


def _env() -> dict:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _request(url: str, payload: dict = None, timeout: float = 60.0) -> dict:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _scores(result: dict) -> dict:
    return {entity["key"]: entity["score"] for entity in result["entities"]}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def _fail(message: str) -> None:
    print(f"FAIL: {message}")
    raise SystemExit(1)


def main() -> int:
    # the in-process reference: same generation recipe, single engine
    sys.path.insert(0, str(ROOT / "src"))
    from repro.workloads import mediated_layers

    workload = mediated_layers(shards=SHARDS, **WORKLOAD)
    spec = workload.spec(method="in_edge")
    spec_dict = spec.to_dict()
    with workload.open_session(sharded=False) as session:
        reference = {
            str(e.key): e.score for e in session.execute(spec)
        }
    workload.close()
    print(f"reference: {len(reference)} answers from the single engine")

    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serving",
            "--layers", str(WORKLOAD["layers"]),
            "--width", str(WORKLOAD["width"]),
            "--fan-out", str(WORKLOAD["fan_out"]),
            "--seeds", str(WORKLOAD["seeds"]),
            "--rng", str(WORKLOAD["rng"]),
            "--shards", str(SHARDS),
            "--shard-mode", "process",
            "--port", "0",
        ],
        cwd=ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        announcement = server.stdout.readline()
        if not announcement:
            _fail("server exited before announcing its address")
        address = json.loads(announcement)
        url = address["url"]
        print(f"server up at {url} (pid {address['pid']})")

        deadline = time.monotonic() + BOOT_TIMEOUT
        while True:
            try:
                health = _request(f"{url}/health")
                break
            except (urllib.error.URLError, ConnectionError):
                if time.monotonic() > deadline:
                    _fail("server did not become healthy in time")
                time.sleep(0.2)
        if health.get("status") != "ok" or health.get("shard_mode") != "process":
            _fail(f"unexpected /health: {health}")
        if health.get("workers_alive") != SHARDS:
            _fail(f"expected {SHARDS} live workers, got {health}")
        print(f"health: {health}")

        served = _scores(_request(f"{url}/execute", spec_dict))
        if served != reference:
            _fail("served scores differ from the single-engine reference")
        print(f"execute: {len(served)} answers, bit-identical to reference")

        many = _request(f"{url}/execute_many", {"specs": [spec_dict, spec_dict]})
        if many["count"] != 2 or any(
            _scores(result) != reference for result in many["results"]
        ):
            _fail("execute_many results diverged")
        explanation = _request(f"{url}/explain", spec_dict)
        if explanation.get("answers") != len(reference):
            _fail(f"unexpected /explain: {explanation}")
        stats = _request(f"{url}/stats")
        if stats["engine"]["queries_executed"] < SHARDS:
            _fail(f"unexpected /stats: {stats}")
        print("execute_many / explain / stats: ok")

        shard_stats = _request(f"{url}/shard_stats")
        workers = shard_stats.get("workers") or []
        if len(workers) != SHARDS:
            _fail(f"expected {SHARDS} workers in /shard_stats: {shard_stats}")
        victim = workers[0]
        print(f"killing shard {victim['shard']} worker (pid {victim['pid']})")
        os.kill(victim["pid"], signal.SIGKILL)
        # no wait: the killed worker stays a zombie until the
        # supervisor reaps it on the next request, which is the point

        # the supervised restart must reproduce the identical answer
        recovered = _scores(_request(f"{url}/execute", spec_dict))
        if recovered != reference:
            _fail("post-kill scores differ from the reference")
        after = _request(f"{url}/shard_stats")
        restarted = next(
            w for w in after["workers"] if w["shard"] == victim["shard"]
        )
        if not restarted["alive"] or restarted["restarts"] < 1:
            _fail(f"worker was not restarted: {after}")
        if restarted["pid"] == victim["pid"]:
            _fail("restarted worker reports the killed pid")
        print(
            f"shard {victim['shard']} restarted as pid {restarted['pid']}, "
            f"answers bit-identical"
        )

        worker_pids = [w["pid"] for w in after["workers"]]
    finally:
        if server.poll() is None:
            server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
            _fail("server did not exit on SIGTERM")
        if server.stdout is not None:
            server.stdout.close()

    if code != 0:
        _fail(f"server exited with status {code}")
    deadline = time.monotonic() + 10
    while any(_pid_alive(pid) for pid in worker_pids):
        if time.monotonic() > deadline:
            _fail(f"worker processes survived shutdown: {worker_pids}")
        time.sleep(0.1)
    print("clean shutdown, all workers reaped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
