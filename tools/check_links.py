#!/usr/bin/env python3
"""Check that relative markdown links in the docs resolve.

Scans README.md and docs/*.md for inline markdown links
(``[text](target)``), resolves every relative target against the file
that contains it, and fails when the target file (or directory) does
not exist. External links (http/https/mailto) and pure in-page anchors
(``#...``) are skipped; a ``file#anchor`` target is checked for the
file part only.

Usage: python tools/check_links.py [repo_root]
Exit status: 0 when every link resolves, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links; images share the syntax apart from a leading !
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(root: Path):
    readme = root / "README.md"
    if readme.exists():
        yield readme
    yield from sorted((root / "docs").glob("*.md"))


def check_file(path: Path) -> list:
    broken = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                broken.append((path, number, target))
    return broken


def main(argv) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parents[1]
    broken = []
    checked = 0
    for markdown in iter_markdown(root):
        checked += 1
        broken.extend(check_file(markdown))
    if broken:
        for path, number, target in broken:
            print(f"{path.relative_to(root)}:{number}: broken link -> {target}")
        print(f"\n{len(broken)} broken link(s) across {checked} file(s)")
        return 1
    print(f"all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
