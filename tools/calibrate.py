"""Calibration harness: print the Fig 5 table for all three scenarios."""
import sys, time
from repro.biology.scenarios import build_scenario
from repro.core.ranker import rank
from repro.metrics import expected_average_precision, random_average_precision

PAPER = {
    1: dict(reliability=0.84, propagation=0.85, diffusion=0.73, in_edge=0.85, path_count=0.87, random=0.42),
    2: dict(reliability=0.46, propagation=0.33, diffusion=0.62, in_edge=0.15, path_count=0.16, random=0.12),
    3: dict(reliability=0.68, propagation=0.62, diffusion=0.48, in_edge=0.50, path_count=0.50, random=0.29),
}

def eval_scenario(n, seed=0, limit=None):
    cases = build_scenario(n, seed=seed, limit=limit)
    out = {}
    for m in ["reliability", "propagation", "diffusion", "in_edge", "path_count"]:
        aps = []
        for c in cases:
            opts = {"strategy": "closed"} if m == "reliability" else {}
            r = rank(c.query_graph, m, **opts)
            aps.append(expected_average_precision(r.scores, c.relevant))
        out[m] = sum(aps)/len(aps)
    out["random"] = sum(random_average_precision(c.n_relevant, c.n_total) for c in cases)/len(cases)
    return out

if __name__ == "__main__":
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    for n in (1, 2, 3):
        t0 = time.time()
        res = eval_scenario(n, seed=seed)
        print(f"scenario {n} ({time.time()-t0:.1f}s)")
        for k, v in res.items():
            print(f"  {k:12s} ours {v:.3f}   paper {PAPER[n][k]:.2f}")
