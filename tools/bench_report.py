#!/usr/bin/env python3
"""Produce / validate the committed benchmark snapshots.

Each registered snapshot pairs one benchmark suite with the committed
JSON report that documents its measured shape: one record per
benchmark with its group, median latency (seconds) and throughput
(ops/s). Absolute numbers vary per machine, so CI validates each
snapshot's *structure*, not its timings; the timing/equivalence claims
themselves are asserted inside the suites.

``--write`` runs a suite under ``pytest-benchmark``'s JSON reporter
and reduces the full report to the small, diff-friendly committed
snapshot. ``--check`` validates committed snapshots without running
anything: they must parse, name their suite, and carry a positive
median and ops rate for every expected benchmark. This catches a
snapshot rotting (suite renamed, benchmark dropped, file hand-edited
into nonsense) while staying deterministic on loaded CI runners.

With ``--report`` the action applies to one snapshot; without it,
``--check`` validates every registered snapshot and ``--write``
regenerates every one.

Usage:
    python tools/bench_report.py --write [--report BENCH_9.json]
    python tools/bench_report.py --check [--report BENCH_7.json]

Exit status: 0 on success, 1 on failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

#: committed snapshot -> (suite, benchmarks the snapshot must contain).
#: Assertion-only tests (ratio claims, equivalence checks) time
#: themselves and emit no benchmark record, so they are not listed.
SNAPSHOTS = {
    "BENCH_7.json": {
        "suite": "benchmarks/test_bench_incremental.py",
        "expected": (
            "test_incremental_refresh",
            "test_cold_refresh",
            "test_untouched_query_stays_cache_hit_flat",
        ),
    },
    "BENCH_9.json": {
        "suite": "benchmarks/test_bench_serving.py",
        "expected": (
            "test_cold_thread",
            "test_cold_process",
            "test_warm_thread",
            "test_warm_process",
        ),
    },
    "BENCH_10.json": {
        "suite": "benchmarks/test_bench_async.py",
        "expected": (
            "test_async_clients",
            "test_threaded_execute_many",
        ),
    },
}


def run_suite(root: Path, suite: str) -> dict:
    """Run the suite with the JSON reporter and return the raw report."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                suite,
                "-q",
                "-p",
                "no:cacheprovider",
                f"--benchmark-json={raw_path}",
            ],
            cwd=root,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        if completed.returncode != 0:
            raise SystemExit(completed.returncode)
        with open(raw_path) as handle:
            return json.load(handle)


def reduce_report(raw: dict, suite: str) -> dict:
    """The committed shape: suite + per-benchmark median and ops."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["name"],
                "group": bench.get("group"),
                "median": stats["median"],
                "ops": stats["ops"],
            }
        )
    benchmarks.sort(key=lambda b: b["name"])
    return {"suite": suite, "benchmarks": benchmarks}


def write(root: Path, report_name: str) -> int:
    config = SNAPSHOTS[report_name]
    snapshot = reduce_report(run_suite(root, config["suite"]), config["suite"])
    report_path = root / report_name
    report_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {report_path} ({len(snapshot['benchmarks'])} benchmarks)")
    return 0


def check(root: Path, report_name: str) -> int:
    config = SNAPSHOTS[report_name]
    suite = config["suite"]
    report_path = root / report_name
    problems = []
    try:
        snapshot = json.loads(report_path.read_text())
    except FileNotFoundError:
        print(
            f"FAIL: {report_path} is missing "
            f"(tools/bench_report.py --write --report {report_name})"
        )
        return 1
    except json.JSONDecodeError as error:
        print(f"FAIL: {report_path} is not valid JSON: {error}")
        return 1
    if snapshot.get("suite") != suite:
        problems.append(
            f"suite is {snapshot.get('suite')!r}, expected {suite!r}"
        )
    recorded = {
        bench.get("name"): bench for bench in snapshot.get("benchmarks", [])
    }
    for name in config["expected"]:
        bench = recorded.get(name)
        if bench is None:
            problems.append(f"benchmark {name!r} missing from the snapshot")
            continue
        for field in ("median", "ops"):
            value = bench.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"{name}: {field} must be > 0, got {value!r}")
        if not bench.get("group"):
            problems.append(f"{name}: group must be set")
    for problem in problems:
        print(f"FAIL: {report_name}: {problem}")
    if not problems:
        print(
            f"OK: {report_path} covers {len(config['expected'])} "
            f"benchmarks of {suite}"
        )
    return 1 if problems else 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write", action="store_true", help="run the suite(s), write snapshot(s)"
    )
    mode.add_argument(
        "--check", action="store_true", help="validate committed snapshot(s)"
    )
    parser.add_argument(
        "--report",
        default=None,
        choices=sorted(SNAPSHOTS),
        help="one snapshot (default: all registered)",
    )
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    reports = [args.report] if args.report else sorted(SNAPSHOTS)
    action = write if args.write else check
    status = 0
    for report_name in reports:
        status |= action(root, report_name)
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
