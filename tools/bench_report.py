#!/usr/bin/env python3
"""Produce / validate the committed incremental-benchmark snapshot.

``--write`` runs the incremental benchmark suite under
``pytest-benchmark``'s JSON reporter and reduces the full report to the
small, diff-friendly snapshot committed as ``BENCH_7.json``: one record
per benchmark with its group, median latency (seconds) and throughput
(ops/s). The snapshot documents the measured shape of the tentpole's
claim (repair latency vs cold-rebuild latency) on the machine that
generated it — absolute numbers vary per machine, so CI validates the
snapshot's *structure*, not its timings; the timing claim itself is
asserted by ``test_incremental_beats_cold_3x`` in the suite.

``--check`` validates the committed snapshot without running anything:
it must parse, name this suite, and carry a positive median and ops
rate for every expected benchmark. This catches the snapshot rotting
(suite renamed, benchmark dropped, file hand-edited into nonsense)
while staying deterministic on loaded CI runners.

Usage:
    python tools/bench_report.py --write [--report BENCH_7.json]
    python tools/bench_report.py --check [--report BENCH_7.json]

Exit status: 0 on success, 1 on failure.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

SUITE = "benchmarks/test_bench_incremental.py"
DEFAULT_REPORT = "BENCH_7.json"

#: benchmarks the snapshot must contain (the ratio assertion
#: ``test_incremental_beats_cold_3x`` times itself and emits no record)
EXPECTED = (
    "test_incremental_refresh",
    "test_cold_refresh",
    "test_untouched_query_stays_cache_hit_flat",
)


def run_suite(root: Path) -> dict:
    """Run the suite with the JSON reporter and return the raw report."""
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                SUITE,
                "-q",
                "-p",
                "no:cacheprovider",
                f"--benchmark-json={raw_path}",
            ],
            cwd=root,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        if completed.returncode != 0:
            raise SystemExit(completed.returncode)
        with open(raw_path) as handle:
            return json.load(handle)


def reduce_report(raw: dict) -> dict:
    """The committed shape: suite + per-benchmark median and ops."""
    benchmarks = []
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benchmarks.append(
            {
                "name": bench["name"],
                "group": bench.get("group"),
                "median": stats["median"],
                "ops": stats["ops"],
            }
        )
    benchmarks.sort(key=lambda b: b["name"])
    return {"suite": SUITE, "benchmarks": benchmarks}


def write(root: Path, report_path: Path) -> int:
    snapshot = reduce_report(run_suite(root))
    report_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {report_path} ({len(snapshot['benchmarks'])} benchmarks)")
    return 0


def check(report_path: Path) -> int:
    problems = []
    try:
        snapshot = json.loads(report_path.read_text())
    except FileNotFoundError:
        print(f"FAIL: {report_path} is missing (tools/bench_report.py --write)")
        return 1
    except json.JSONDecodeError as error:
        print(f"FAIL: {report_path} is not valid JSON: {error}")
        return 1
    if snapshot.get("suite") != SUITE:
        problems.append(
            f"suite is {snapshot.get('suite')!r}, expected {SUITE!r}"
        )
    recorded = {
        bench.get("name"): bench for bench in snapshot.get("benchmarks", [])
    }
    for name in EXPECTED:
        bench = recorded.get(name)
        if bench is None:
            problems.append(f"benchmark {name!r} missing from the snapshot")
            continue
        for field in ("median", "ops"):
            value = bench.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"{name}: {field} must be > 0, got {value!r}")
        if not bench.get("group"):
            problems.append(f"{name}: group must be set")
    for problem in problems:
        print(f"FAIL: {problem}")
    if not problems:
        print(
            f"OK: {report_path} covers {len(EXPECTED)} benchmarks of {SUITE}"
        )
    return 1 if problems else 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--write", action="store_true", help="run the suite, write the snapshot"
    )
    mode.add_argument(
        "--check", action="store_true", help="validate the committed snapshot"
    )
    parser.add_argument(
        "--report", default=DEFAULT_REPORT, help="snapshot path"
    )
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parent.parent
    report_path = root / args.report
    if args.write:
        return write(root, report_path)
    return check(report_path)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
