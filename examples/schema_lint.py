"""Lint a mediated schema before running a single query.

Integration bugs in this library are rarely loud: a missing index makes
probes quadratic, a typo'd target entity silently drops evidence, and a
diamond-shaped binding graph flips reliability ranking from closed-form
to Monte Carlo. The ``repro.analysis`` suite diagnoses all of these
statically. This example builds a clean two-source schema, lints it,
then breaks it three different ways and shows what the analyzer says.

The module-level ``lint_target()`` below is the hook the CLI looks for,
so the same schema can be checked from a shell (as CI does)::

    python -m repro.analysis examples/schema_lint.py --fail-on error

Run:  python examples/schema_lint.py
"""

from repro.analysis import AnalysisContext, run_analysis, render_text
from repro.integration import (
    DataSource,
    EntityBinding,
    Mediator,
    RelationshipBinding,
)
from repro.storage import Column, ColumnType, Database


def build_catalog_source() -> DataSource:
    """A curated parts catalog: devices and the sensors they carry."""
    db = Database("catalog")
    db.create_table(
        "devices",
        columns=[Column("dev_id", ColumnType.TEXT), Column("name", ColumnType.TEXT)],
        primary_key=["dev_id"],
    )
    db.create_table(
        "sensors",
        columns=[Column("sensor_id", ColumnType.TEXT), Column("kind", ColumnType.TEXT)],
        primary_key=["sensor_id"],
    )
    db.create_table(
        "carries",
        columns=[
            Column("dev_id", ColumnType.TEXT),
            Column("sensor_id", ColumnType.TEXT),
            Column("confidence", ColumnType.FLOAT),
        ],
    )
    db.table("carries").create_index("by_device", ["dev_id"])

    db.insert("devices", {"dev_id": "D1", "name": "probe-alpha"})
    db.insert("sensors", {"sensor_id": "S1", "kind": "thermal"})
    db.insert("sensors", {"sensor_id": "S2", "kind": "optical"})
    db.insert("carries", {"dev_id": "D1", "sensor_id": "S1", "confidence": 0.9})
    db.insert("carries", {"dev_id": "D1", "sensor_id": "S2", "confidence": 0.6})

    return DataSource(
        name="Catalog",
        database=db,
        entities=(
            EntityBinding("Device", "devices", "dev_id"),
            EntityBinding("Sensor", "sensors", "sensor_id"),
        ),
        relationships=(
            RelationshipBinding(
                relationship="carries",
                table="carries",
                source_entity="Device",
                source_column="dev_id",
                target_entity="Sensor",
                target_column="sensor_id",
                qr=lambda row: row["confidence"],
            ),
        ),
    )


def build_mediator() -> Mediator:
    """The clean integration: one source, fully indexed, acyclic."""
    mediator = Mediator()
    mediator.register(build_catalog_source())
    return mediator


def lint_target() -> AnalysisContext:
    """Entry point for ``python -m repro.analysis examples/schema_lint.py``."""
    return AnalysisContext(mediator=build_mediator(), name="schema_lint")


def broken_variants() -> "list[tuple[str, Mediator]]":
    """Three deliberately misconfigured copies of the schema."""
    variants = []

    # 1. Drop the probe index: every Device -> Sensor expansion becomes
    #    a full scan of the link table (REPRO105).
    unindexed = Database("catalog_unindexed")
    unindexed.create_table(
        "carries",
        columns=[
            Column("dev_id", ColumnType.TEXT),
            Column("sensor_id", ColumnType.TEXT),
        ],
    )
    unindexed.insert("carries", {"dev_id": "D1", "sensor_id": "S1"})
    mediator = build_mediator()
    mediator.register(
        DataSource(
            name="Shadow",
            database=unindexed,
            relationships=(
                RelationshipBinding(
                    relationship="carries_shadow",
                    table="carries",
                    source_entity="Device",
                    source_column="dev_id",
                    target_entity="Sensor",
                    target_column="sensor_id",
                ),
            ),
        )
    )
    variants.append(("unindexed probe column", mediator))

    # 2. Typo the target entity: the binding points at an entity set no
    #    source provides, so its evidence silently never arrives
    #    (REPRO102).
    dangling_db = Database("readings")
    dangling_db.create_table(
        "observed",
        columns=[
            Column("dev_id", ColumnType.TEXT),
            Column("sensor_id", ColumnType.TEXT),
        ],
    )
    dangling_db.table("observed").create_index("by_device", ["dev_id"])
    dangling_db.insert("observed", {"dev_id": "D1", "sensor_id": "S1"})
    mediator = build_mediator()
    mediator.register(
        DataSource(
            name="Telemetry",
            database=dangling_db,
            relationships=(
                RelationshipBinding(
                    relationship="observed_on",
                    table="observed",
                    source_entity="Device",
                    source_column="dev_id",
                    target_entity="Sensr",  # <- typo, nobody provides it
                    target_column="sensor_id",
                ),
            ),
        )
    )
    variants.append(("dangling target entity", mediator))

    return variants


def main() -> None:
    report = run_analysis(lint_target())
    print("== clean schema")
    print(render_text(report))

    for label, mediator in broken_variants():
        context = AnalysisContext(mediator=mediator, name=label)
        print(f"\n== {label}")
        print(render_text(run_analysis(context)))

    print(
        "\nEvery finding carries a REPRO code, a location path, and a "
        "suggested fix; gate a whole test suite on them with "
        "open_session(..., lint='error') or `python -m repro.analysis`."
    )


if __name__ == "__main__":
    main()
