"""Quickstart: the paper's running example, end to end.

Reconstructs the §1/§2 scenario: a researcher looks for functions of the
protein coded by gene ABCC8. The exploratory query
``(EntrezProtein.name = "ABCC8", {GOTerm})`` integrates EntrezProtein,
EntrezGene, NCBIBlast, Pfam, TIGRFAM and AmiGO, and the answer set of
candidate GO functions is ranked by network reliability — printing the
same kind of ranked list as the paper's §2 table.

Everything flows through the public facade (:mod:`repro.api`): open a
session over the integrated sources, describe the query declaratively,
get a rich result set back.

Run:  python examples/quickstart.py
"""

from repro.api import Query, open_session
from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.biology.scenarios import ABCC8_NAMED_GOLD, SCENARIO2_FUNCTIONS
from repro.metrics import expected_average_precision


def main() -> None:
    # 1. generate the synthetic June-2007-style sources for ABCC8 and
    #    open a session over the already-integrated mediator
    generator = ProteinCaseGenerator(rng=0)
    spec = CaseSpec(
        protein="ABCC8",
        n_gold=13,
        n_total=97,
        novel_go_ids=tuple(go for go, _, _ in SCENARIO2_FUNCTIONS["ABCC8"]),
        named_gold_ids=ABCC8_NAMED_GOLD,
    )
    case = generator.generate(spec)
    session = open_session(mediator=case.mediator)

    # 2. the paper's exploratory query, declaratively: candidate GO
    #    functions of ABCC8, ranked by exact (closed-form) reliability
    query = (
        Query.on("EntrezProtein")
        .where(name="ABCC8")
        .outputs("GOTerm")
        .rank_by("reliability", strategy="closed")
        .top(10)
    )
    results = session.execute(query)
    qg = results.graph
    print(f"query graph: {qg.graph.num_nodes} nodes, {qg.graph.num_edges} edges, "
          f"{len(results)} candidate functions")

    # 3. print the top of the ranked list, like the paper's §2 table
    print(f"\n{'#':>3}  {'Function':55s} {'r score':>8}")
    for entity in results.top():
        marker = ""
        if entity.node in case.gold_nodes:
            marker = "  [iProClass]"
        elif entity.node in case.novel_nodes:
            marker = "  [newly published]"
        print(f"{entity.rank:>3}  {entity.label:55s} {entity.score:8.4f}{marker}")

    # 4. how good is the ranking? (tie-aware expected average precision)
    ap = expected_average_precision(results.scores, case.gold_nodes)
    print(f"\naverage precision against the iProClass gold standard: {ap:.3f}")

    # 5. the session kept score: repeated queries would now be served
    #    straight from its caches
    print(f"session stats: {session.stats()}")


if __name__ == "__main__":
    main()
