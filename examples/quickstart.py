"""Quickstart: the paper's running example, end to end.

Reconstructs the §1/§2 scenario: a researcher looks for functions of the
protein coded by gene ABCC8. The exploratory query
``(EntrezProtein.name = "ABCC8", {GOTerm})`` integrates EntrezProtein,
EntrezGene, NCBIBlast, Pfam, TIGRFAM and AmiGO, and the answer set of
candidate GO functions is ranked by network reliability — printing the
same kind of ranked list as the paper's §2 table.

Run:  python examples/quickstart.py
"""

from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.biology.scenarios import ABCC8_NAMED_GOLD, SCENARIO2_FUNCTIONS
from repro.core.ranker import rank
from repro.metrics import expected_average_precision


def main() -> None:
    # 1. generate the synthetic June-2007-style sources for ABCC8 and run
    #    the exploratory query through the mediator
    generator = ProteinCaseGenerator(rng=0)
    spec = CaseSpec(
        protein="ABCC8",
        n_gold=13,
        n_total=97,
        novel_go_ids=tuple(go for go, _, _ in SCENARIO2_FUNCTIONS["ABCC8"]),
        named_gold_ids=ABCC8_NAMED_GOLD,
    )
    case = generator.generate(spec)
    qg = case.query_graph
    print(f"query graph: {qg.graph.num_nodes} nodes, {qg.graph.num_edges} edges, "
          f"{len(qg.targets)} candidate functions")

    # 2. rank the candidate functions by reliability (closed form: exact)
    result = rank(qg, "reliability", strategy="closed")

    # 3. print the top of the ranked list, like the paper's §2 table
    print(f"\n{'#':>3}  {'Function':55s} {'r score':>8}")
    for position, (node, score) in enumerate(result.top(10), start=1):
        label = qg.graph.data(node).label
        marker = ""
        if node in case.gold_nodes:
            marker = "  [iProClass]"
        elif node in case.novel_nodes:
            marker = "  [newly published]"
        print(f"{position:>3}  {label:55s} {score:8.4f}{marker}")

    # 4. how good is the ranking? (tie-aware expected average precision)
    ap = expected_average_precision(result.scores, case.gold_nodes)
    print(f"\naverage precision against the iProClass gold standard: {ap:.3f}")


if __name__ == "__main__":
    main()
