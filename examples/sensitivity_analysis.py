"""How robust are rankings to mis-estimated probabilities?

The BioRank default probabilities came from domain experts, so §4 asks:
what happens to ranking quality if they are all wrong by a little — or a
lot? This example perturbs every node and edge probability of a few
scenario-1 query graphs with Gaussian log-odds noise and watches the
average precision (the paper's Fig 6 protocol, on a small budget).

Run:  python examples/sensitivity_analysis.py
"""

from repro.api import open_session
from repro.biology.scenarios import build_scenario
from repro.metrics import expected_average_precision
from repro.sensitivity.analysis import sensitivity_sweep


def main() -> None:
    cases = build_scenario(1, seed=0, limit=5)
    pairs = [(case.query_graph, case.relevant) for case in cases]
    print(f"{len(pairs)} scenario-1 query graphs, method = propagation\n")

    # the unperturbed baseline through the public facade (the sweep
    # below recomputes it internally on the perturbed copies)
    session = open_session()
    baseline = sum(
        expected_average_precision(
            session.rank(qg, "propagation").scores, relevant
        )
        for qg, relevant in pairs
    ) / len(pairs)
    print(f"unperturbed AP (via repro.api.Session): {baseline:.3f}")

    points = sensitivity_sweep(
        pairs,
        method="propagation",
        sigmas=(0.5, 1.0, 2.0, 3.0),
        repetitions=10,
        rng=0,
    )
    for point in points:
        print(point.as_row())

    default = points[0].mean_ap
    worst_noise = points[-2].mean_ap  # sigma = 3
    random_cond = points[-1].mean_ap
    print(
        f"\nAt three standard deviations of log-odds noise the AP only "
        f"drops from {default:.2f} to {worst_noise:.2f}; discarding the "
        f"expert probabilities entirely drops it to {random_cond:.2f}. "
        f"Probabilistic integration is robust to imprecise expert estimates."
    )


if __name__ == "__main__":
    main()
