"""Evidence diagnostics: explanations, correlation, and adaptive top-k.

Three tools a curator would use on top of the ranked list:

1. ``explain_answer`` — why is this function ranked where it is? (the
   strongest supporting paths, with per-hop probabilities);
2. ``correlation_report`` — which functions have evidence that is less
   independent than it looks (propagation - reliability divergence)?
3. ``topk_reliability`` — Monte Carlo that stops as soon as the top-k
   boundary is statistically settled (Theorem 3.1 as a stopping rule).

Run:  python examples/evidence_diagnostics.py
"""

from repro.api import Query, open_session
from repro.biology.scenarios import ABCC8_NAMED_GOLD, SCENARIO2_FUNCTIONS
from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.core.diagnostics import correlation_report
from repro.core.adaptive import topk_reliability


def main() -> None:
    generator = ProteinCaseGenerator(rng=0)
    case = generator.generate(
        CaseSpec(
            protein="ABCC8",
            n_gold=13,
            n_total=97,
            novel_go_ids=tuple(go for go, _, _ in SCENARIO2_FUNCTIONS["ABCC8"]),
            named_gold_ids=ABCC8_NAMED_GOLD,
        )
    )

    # execute the ABCC8 query through the facade; the result set carries
    # the provenance accessors the curator tools build on
    session = open_session(mediator=case.mediator)
    results = session.execute(
        Query.on("EntrezProtein").where(name="ABCC8").outputs("GOTerm")
        .rank_by("reliability", strategy="closed")
    )
    qg = results.graph

    print("=== 1. why is the novel function ranked high? ===")
    novel = case.go_node("GO:0006855")
    print(results.explain(novel, top=3))

    gold = case.go_node("GO:0008281")
    print("\n=== ... versus a redundantly supported gold function ===")
    print(results.explain(gold, top=3))

    print("\n=== 2. where is the evidence correlated? ===")
    report = correlation_report(qg)
    print(
        f"answers with tree-like (independent) support: "
        f"{report.tree_like_fraction:.0%}; "
        f"mean divergence {report.mean_divergence:.4f}"
    )
    for answer in report.most_correlated(3):
        label = qg.graph.data(answer.node).label
        print(
            f"  {label:45s} rel={answer.reliability:.3f} "
            f"prop={answer.propagation:.3f} (+{answer.divergence:.3f})"
        )

    print("\n=== 3. adaptive top-10 (stop when the boundary is settled) ===")
    result = topk_reliability(qg, k=10, epsilon=0.02, rng=1)
    print(
        f"used {result.trials_used} trials "
        f"(boundary gap {result.boundary_gap:.3f}, "
        f"separated={result.separated})"
    )
    for node, score in result.top[:5]:
        print(f"  {qg.graph.data(node).label:45s} {score:.3f}")


if __name__ == "__main__":
    main()
