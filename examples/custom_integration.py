"""Build your own uncertain data integration from scratch.

This example uses only the public API — no synthetic-biology helpers —
to integrate two home-made sources, turn their uncertainty attributes
into probabilities, run an exploratory query, and rank the answers. It
is the template to follow when pointing the library at your own data.

The toy domain: ranking candidate *authors* of an anonymous manuscript
by integrating (a) a citation database with curated confidence levels
and (b) a stylometry tool that reports match scores.

Run:  python examples/custom_integration.py
"""

from repro.api import Query, open_session
from repro.integration import (
    ConfidenceRegistry,
    DataSource,
    EntityBinding,
    RelationshipBinding,
)
from repro.storage import Column, ColumnType, Database

#: curated confidence levels of the citation database, as probabilities
CITATION_CONFIDENCE = {"confirmed": 0.95, "likely": 0.7, "disputed": 0.3}


def build_citation_source() -> DataSource:
    """Source 1: manuscripts, authors, and curated attribution links."""
    db = Database("citations")
    db.create_table(
        "manuscripts",
        columns=[Column("ms_id", ColumnType.TEXT), Column("title", ColumnType.TEXT)],
        primary_key=["ms_id"],
    )
    db.create_table(
        "authors",
        columns=[Column("author_id", ColumnType.TEXT), Column("name", ColumnType.TEXT)],
        primary_key=["author_id"],
    )
    db.create_table(
        "attributions",
        columns=[
            Column("ms_id", ColumnType.TEXT),
            Column("author_id", ColumnType.TEXT),
            Column("status", ColumnType.TEXT),
        ],
    )
    db.table("attributions").create_index("by_ms", ["ms_id"])

    db.insert("manuscripts", {"ms_id": "MS1", "title": "On Uncertain Things"})
    for author_id, name in [("A1", "Asha"), ("A2", "Bela"), ("A3", "Chen")]:
        db.insert("authors", {"author_id": author_id, "name": name})
    db.insert("attributions", {"ms_id": "MS1", "author_id": "A1", "status": "likely"})
    db.insert("attributions", {"ms_id": "MS1", "author_id": "A2", "status": "disputed"})

    return DataSource(
        name="CitationDB",
        database=db,
        entities=(
            EntityBinding("Manuscript", "manuscripts", "ms_id"),
            EntityBinding(
                "Author", "authors", "author_id", label=lambda row: row["name"]
            ),
        ),
        relationships=(
            RelationshipBinding(
                relationship="attributed_to",
                table="attributions",
                source_entity="Manuscript",
                source_column="ms_id",
                target_entity="Author",
                target_column="author_id",
                qr=lambda row: CITATION_CONFIDENCE[row["status"]],
            ),
        ),
    )


def build_stylometry_source() -> DataSource:
    """Source 2: computed style-similarity scores (already in [0, 1])."""
    db = Database("stylometry")
    db.create_table(
        "style_matches",
        columns=[
            Column("ms_id", ColumnType.TEXT),
            Column("author_id", ColumnType.TEXT),
            Column("match_score", ColumnType.FLOAT),
        ],
    )
    db.table("style_matches").create_index("by_ms", ["ms_id"])
    db.insert("style_matches", {"ms_id": "MS1", "author_id": "A2", "match_score": 0.8})
    db.insert("style_matches", {"ms_id": "MS1", "author_id": "A3", "match_score": 0.6})

    return DataSource(
        name="StyloTool",
        database=db,
        relationships=(
            RelationshipBinding(
                relationship="style_match",
                table="style_matches",
                source_entity="Manuscript",
                source_column="ms_id",
                target_entity="Author",
                target_column="author_id",
                qr=lambda row: row["match_score"],
            ),
        ),
    )


def main() -> None:
    # expert judgement: trust the curated links as a class slightly more
    # than the stylometry tool's computed ones
    confidences = ConfidenceRegistry()
    confidences.set_relationship_confidence("attributed_to", 1.0)
    confidences.set_relationship_confidence("style_match", 0.85)

    session = open_session(
        sources=[build_citation_source(), build_stylometry_source()],
        confidences=confidences,
    )

    # one declarative query, reranked under three semantics as a batch —
    # the session materialises the integration graph exactly once
    # seeding makes the Monte Carlo reliability run reproducible
    base = (
        Query.on("Manuscript").where(ms_id="MS1").outputs("Author").seed(7).build()
    )
    specs = [base.replace(method=m) for m in ("reliability", "propagation", "in_edge")]

    explanation = session.explain(base)
    print(
        f"integrated graph: {explanation.nodes} nodes, "
        f"{explanation.edges} edges "
        f"({explanation.build_stats.dangling_links} dangling links dropped)"
    )

    for spec, results in zip(specs, session.execute_many(specs)):
        ordered = ", ".join(
            f"{entity.label}={entity.score:.3f}" for entity in results
        )
        print(f"{spec.method:12s} {ordered}")

    print(
        "\nBela is supported by two independent medium-strength links and "
        "overtakes Asha's single curated 'likely' link under every "
        "evidence-combining semantics; InEdge agrees here because the "
        "redundancy and the probability signals coincide."
    )


if __name__ == "__main__":
    main()
