"""Annotating a hypothetical protein: comparing the five rankings.

The paper's scenario 3: a bacterial protein of unknown function with
sparse evidence. This example generates one such case, ranks its
candidate functions under all five semantics, and shows where each
method places the expert-assigned true function — the situation where
probabilistic ranking earns its keep.

Run:  python examples/protein_annotation.py
"""

from repro.api import RankingOptions, open_session
from repro.biology.scenarios import build_scenario
from repro.metrics import expected_average_precision, random_average_precision
from repro.metrics.ranking import format_rank_interval

METHODS = ("reliability", "propagation", "diffusion", "in_edge", "path_count")


def main() -> None:
    # DP0843, a Desulfotalea psychrophila hypothetical protein (Table 3)
    case = build_scenario(3, seed=0, limit=1)[0]
    qg = case.query_graph
    (true_node,) = case.relevant
    go_id = true_node[1]

    print(f"protein {case.name}: {len(qg.targets)} candidate functions, "
          f"expert-assigned true function {go_id}")
    print(f"graph: {qg.graph.num_nodes} nodes, {qg.graph.num_edges} edges\n")

    # one session ranks the pre-built case graph under all five
    # semantics (the graph is compiled once, shared across methods)
    session = open_session()

    print(f"{'method':12s} {'rank of true fn':>16s} {'score':>8s} {'AP':>6s}")
    for method in METHODS:
        options = (
            RankingOptions(strategy="closed") if method == "reliability" else None
        )
        results = session.rank(qg, method, options=options)
        true_entity = results.entity(true_node)
        ap = expected_average_precision(results.scores, case.relevant)
        print(
            f"{method:12s} "
            f"{format_rank_interval(true_entity.rank_interval):>16s} "
            f"{true_entity.score:8.3f} {ap:6.3f}"
        )
    print(
        f"{'random':12s} {format_rank_interval((1, case.n_total)):>16s} "
        f"{'-':>8s} {random_average_precision(1, case.n_total):6.3f}"
    )

    # peek at the evidence: the strongest paths supporting the true function
    print("\nevidence paths into the true function:")
    for edge in qg.graph.in_edges(true_node):
        parent = qg.graph.data(edge.source)
        print(
            f"  from {parent.entity_set:14s} {parent.label:28s} "
            f"q = {qg.graph.q(edge.key):.3f}"
        )


if __name__ == "__main__":
    main()
