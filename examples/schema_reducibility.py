"""When can reliability be computed in closed form?

Theorem 3.2 answers at the schema level; this example walks through it:
build E/R schemas, check reducibility (with and without domain
knowledge), and then *verify* the verdicts at the data level by running
the actual graph reductions on instance graphs.

Run:  python examples/schema_reducibility.py
"""

from repro.api import RankingOptions, open_session
from repro.core.closed_form import closed_form_reliability
from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.schema import (
    Cardinality,
    CompositionOracle,
    ERSchema,
    check_reducibility,
)


def chain_schema() -> ERSchema:
    """A [1:n][n:1] chain: protein -> hits -> genes."""
    schema = ERSchema("chain")
    schema.entity("Protein")
    schema.entity("Hit")
    schema.entity("Gene")
    schema.relate("search", "Protein", "Hit", "1:n")
    schema.relate("xref", "Hit", "Gene", "n:1")
    return schema


def bridge_capable_schema() -> ERSchema:
    """Fig 2a's [1:n][n:m][n:1]: instances can hide Wheatstone bridges."""
    schema = ERSchema("bridge-capable")
    for name in ("A", "B", "C", "D"):
        schema.entity(name)
    schema.relate("q0", "A", "B", "1:n")
    schema.relate("q1", "B", "C", "n:m")
    schema.relate("q2", "C", "D", "n:1")
    return schema


def instance_of_chain() -> QueryGraph:
    """A concrete instance of the chain schema."""
    graph = ProbabilisticEntityGraph()
    graph.add_node("protein")
    for hit, gene, q1, q2 in [
        ("hit1", "gene1", 0.8, 0.9),
        ("hit2", "gene1", 0.5, 0.9),
        ("hit3", "gene2", 0.6, 0.7),
    ]:
        if not graph.has_node(hit):
            graph.add_node(hit, p=0.9)
        if not graph.has_node(gene):
            graph.add_node(gene, p=0.95)
        graph.add_edge("protein", hit, q=q1)
        graph.add_edge(hit, gene, q=q2)
    return QueryGraph(graph, "protein", ["gene1", "gene2"])


def main() -> None:
    print("=== schema level (Theorem 3.2) ===")
    for schema in (chain_schema(), bridge_capable_schema()):
        report = check_reducibility(schema)
        verdict = "reducible" if report else "NOT provably reducible"
        print(f"{schema.name:16s} -> {verdict}")
        for step in report.steps:
            print(f"    {step}")

    print("\n=== domain knowledge can rescue ambiguous compositions ===")
    ambiguous = ERSchema("ambiguous")
    for name in ("P0", "P1", "P2", "P3"):
        ambiguous.entity(name)
    ambiguous.relate("a", "P0", "P1", "1:n")
    ambiguous.relate("b", "P1", "P2", "1:n")
    ambiguous.relate("c", "P2", "P3", "n:1")
    print("without oracle:", bool(check_reducibility(ambiguous)))
    oracle = CompositionOracle()
    oracle.declare("b", "c", Cardinality.MANY_TO_ONE)
    print("with b∘c = [n:1]:", bool(check_reducibility(ambiguous, oracle)))

    print("\n=== data level: the reductions actually close the instance ===")
    qg = instance_of_chain()
    result = closed_form_reliability(qg)
    for target in qg.targets:
        print(
            f"r({target}) = {result.scores[target]:.4f} "
            f"(closed form: {result.closed[target]})"
        )
    assert result.fully_closed, "chain instances must reduce completely"
    print("every answer node of the chain instance reduced to a single edge")

    # the public facade reaches the same closed-form scores
    session = open_session()
    facade = session.rank(
        qg, "reliability", options=RankingOptions(strategy="closed")
    )
    assert facade.scores == result.scores
    print("repro.api.Session.rank(strategy='closed') agrees exactly")


if __name__ == "__main__":
    main()
