"""Sensitivity analysis of ranking quality to the input probabilities.

The paper's default probabilities were elicited from domain experts, so
§4 asks how robust the rankings are to mis-estimation: all node and edge
probabilities are perturbed simultaneously with Gaussian noise in
log-odds space (Henrion et al., UAI 1996) at σ ∈ {0.5, 1, 2, 3}, plus a
"Random" condition that discards the expert values entirely.
"""

from repro.sensitivity.perturb import (
    log_odds,
    inverse_log_odds,
    perturb_probability,
    perturb_query_graph,
    randomize_query_graph,
)
from repro.sensitivity.analysis import SensitivityPoint, sensitivity_sweep
from repro.sensitivity.oneway import oneway_sweep, perturb_component

__all__ = [
    "log_odds",
    "inverse_log_odds",
    "perturb_probability",
    "perturb_query_graph",
    "randomize_query_graph",
    "SensitivityPoint",
    "sensitivity_sweep",
    "oneway_sweep",
    "perturb_component",
]
