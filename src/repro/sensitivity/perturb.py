"""Log-odds Gaussian perturbation of probabilities (§4, Fig 6).

Following Henrion et al., noise is added in log-odds space and mapped
back:

    p' = Lo^{-1}(Lo(p) + e),   e ~ Normal(0, sigma)

which keeps ``p'`` inside (0, 1) without range checks and makes the
noise magnitude interpretable across the probability scale. Exact 0 and
1 have infinite log-odds, so inputs are first clamped into
``[clamp, 1 - clamp]`` (the paper's tables contain ``pr = 1.0`` entries;
clamping matches the authors' "probabilities in (0, 1)" framing).
"""

from __future__ import annotations

import math

from repro.core.graph import QueryGraph
from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "log_odds",
    "inverse_log_odds",
    "perturb_probability",
    "perturb_query_graph",
    "randomize_query_graph",
]

#: default clamp keeping log-odds finite for p in {0, 1}
DEFAULT_CLAMP = 1e-3


def log_odds(p: float) -> float:
    """Lo(p) = ln(p / (1 - p)); requires p strictly inside (0, 1)."""
    p = check_probability(p, "p")
    if p in (0.0, 1.0):
        raise ValidationError(f"log-odds undefined at p = {p}")
    return math.log(p / (1.0 - p))


def inverse_log_odds(value: float) -> float:
    """Lo^{-1}(x) = 1 / (1 + exp(-x)); numerically stable both tails."""
    if value >= 0:
        z = math.exp(-value)
        return 1.0 / (1.0 + z)
    z = math.exp(value)
    return z / (1.0 + z)


def perturb_probability(
    p: float,
    sigma: float,
    rng: RngLike = None,
    clamp: float = DEFAULT_CLAMP,
) -> float:
    """One draw of ``Lo^{-1}(Lo(p) + Normal(0, sigma))``."""
    p = check_probability(p, "p")
    sigma = check_positive(sigma, "sigma")
    random = ensure_rng(rng)
    clamped = min(max(p, clamp), 1.0 - clamp)
    return inverse_log_odds(log_odds(clamped) + random.gauss(0.0, sigma))


def perturb_query_graph(
    qg: QueryGraph,
    sigma: float,
    rng: RngLike = None,
    clamp: float = DEFAULT_CLAMP,
) -> QueryGraph:
    """Perturb *every* node and edge probability simultaneously.

    This is the paper's multi-way sensitivity setting ("all parameters
    may be imprecise"). The query node keeps ``p = 1`` — it represents
    the user's query, not an uncertain datum. Returns a new graph; the
    input is untouched.
    """
    random = ensure_rng(rng)
    result = qg.copy()
    graph = result.graph
    for node in graph.nodes():
        if node == result.source:
            continue
        graph.set_p(node, perturb_probability(graph.p(node), sigma, random, clamp))
    for edge in graph.edges():
        graph.set_q(
            edge.key, perturb_probability(graph.q(edge.key), sigma, random, clamp)
        )
    return result


def randomize_query_graph(qg: QueryGraph, rng: RngLike = None) -> QueryGraph:
    """The Fig 6 "Random" condition: discard the expert probabilities and
    draw every node and edge probability uniformly from (0, 1)."""
    random = ensure_rng(rng)
    result = qg.copy()
    graph = result.graph
    for node in graph.nodes():
        if node == result.source:
            continue
        graph.set_p(node, random.random())
    for edge in graph.edges():
        graph.set_q(edge.key, random.random())
    return result
