"""One-way sensitivity: which probability class carries the signal?

Fig 6 perturbs *all* probabilities simultaneously (multi-way analysis).
The complementary ablation perturbs one class at a time — only node
probabilities (record/source confidence, ``p = ps*pr``) or only edge
probabilities (link confidence, ``q = qs*qr``) — revealing which side
of the uncertainty model the ranking quality actually depends on. On
the BioRank graphs most of the discriminating mass rides on the edges
(evidence codes and e-values), so edge-only noise hurts roughly as much
as full noise while node-only noise is nearly free.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.graph import QueryGraph
from repro.errors import ValidationError
from repro.sensitivity.analysis import SensitivityPoint, sensitivity_sweep
from repro.sensitivity.perturb import DEFAULT_CLAMP, perturb_probability
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["perturb_component", "oneway_sweep"]

NodeId = Hashable

COMPONENTS = ("nodes", "edges", "all")


def perturb_component(
    qg: QueryGraph,
    sigma: float,
    component: str,
    rng: RngLike = None,
    clamp: float = DEFAULT_CLAMP,
) -> QueryGraph:
    """Perturb only the chosen probability class of the graph."""
    if component not in COMPONENTS:
        raise ValidationError(
            f"component must be one of {COMPONENTS}, got {component!r}"
        )
    random = ensure_rng(rng)
    result = qg.copy()
    graph = result.graph
    if component in ("nodes", "all"):
        for node in graph.nodes():
            if node == result.source:
                continue
            graph.set_p(
                node, perturb_probability(graph.p(node), sigma, random, clamp)
            )
    if component in ("edges", "all"):
        for edge in graph.edges():
            graph.set_q(
                edge.key,
                perturb_probability(graph.q(edge.key), sigma, random, clamp),
            )
    return result


def oneway_sweep(
    cases: Sequence[Tuple[QueryGraph, AbstractSet[NodeId]]],
    method: str = "reliability",
    sigma: float = 2.0,
    repetitions: int = 20,
    rng: RngLike = None,
    rank_options: Optional[Mapping[str, object]] = None,
) -> Dict[str, List[SensitivityPoint]]:
    """Run the default-vs-noise sweep once per component class.

    Returns ``{"nodes": [...], "edges": [...], "all": [...]}`` where each
    value is a two-point sweep (default + the single sigma) produced by
    the standard harness with the perturbation restricted to that class.
    """
    results: Dict[str, List[SensitivityPoint]] = {}
    for component in COMPONENTS:
        def restricted(
            qg: QueryGraph, s: float, stream, _component: str = component
        ) -> QueryGraph:
            return perturb_component(qg, s, _component, stream)

        results[component] = sensitivity_sweep(
            cases,
            method=method,
            sigmas=(sigma,),
            repetitions=repetitions,
            include_random=False,
            rng=rng,
            rank_options=rank_options,
            perturber=restricted,
        )
    return results
