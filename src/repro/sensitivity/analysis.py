"""The multi-way sensitivity sweep harness (Fig 6).

For each noise level σ the harness perturbs *all* probabilities of every
query graph in a scenario, re-ranks, recomputes the per-query expected
AP, and averages — repeated ``repetitions`` times to get a mean, a
standard deviation and a normal-approximation confidence interval (the
paper reports 95 % CIs of width 0.001–0.022 at m = 100).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import AbstractSet, Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.graph import QueryGraph
from repro.core.ranker import rank
from repro.metrics.average_precision import expected_average_precision
from repro.sensitivity.perturb import perturb_query_graph, randomize_query_graph
from repro.utils.rng import RngLike, ensure_rng, spawn_rng

__all__ = ["SensitivityPoint", "sensitivity_sweep"]

NodeId = Hashable

#: one evaluation case: a query graph plus its gold-relevant answers
Case = Tuple[QueryGraph, AbstractSet[NodeId]]


@dataclass
class SensitivityPoint:
    """Mean AP (with spread) of one condition of the sweep."""

    condition: str           # "default", "sigma=0.5", ..., "random"
    mean_ap: float
    std_ap: float
    ci95_half_width: float
    repetitions: int

    def as_row(self) -> str:
        return (
            f"{self.condition:>10}  AP = {self.mean_ap:5.3f} "
            f"± {self.std_ap:5.3f} (95% CI ± {self.ci95_half_width:5.3f})"
        )


def _mean_ap_over_cases(
    cases: Sequence[Case],
    method: str,
    rank_options: Mapping[str, object],
) -> float:
    values = [
        expected_average_precision(
            rank(qg, method, **rank_options).scores, relevant
        )
        for qg, relevant in cases
    ]
    return sum(values) / len(values)


#: signature of a graph perturber: (graph, sigma, rng) -> perturbed graph
Perturber = Callable[[QueryGraph, float, object], QueryGraph]


def sensitivity_sweep(
    cases: Sequence[Case],
    method: str = "reliability",
    sigmas: Sequence[float] = (0.5, 1.0, 2.0, 3.0),
    repetitions: int = 100,
    include_random: bool = True,
    rng: RngLike = None,
    rank_options: Optional[Mapping[str, object]] = None,
    perturber: Optional[Perturber] = None,
) -> List[SensitivityPoint]:
    """Run the Fig 6 sweep for one probabilistic ranking method.

    Returns one point per condition: the unperturbed default, each noise
    level in ``sigmas``, and (optionally) the uniform-random condition.
    ``perturber`` overrides how a graph is noised at a given sigma (the
    one-way analysis restricts it to node- or edge-probabilities only);
    the default is the multi-way :func:`perturb_query_graph`.
    """
    if not cases:
        raise ValueError("sensitivity sweep needs at least one case")
    options: Dict[str, object] = dict(rank_options or {})
    parent = ensure_rng(rng)
    noise = perturber or perturb_query_graph

    points: List[SensitivityPoint] = [
        SensitivityPoint(
            condition="default",
            mean_ap=_mean_ap_over_cases(cases, method, options),
            std_ap=0.0,
            ci95_half_width=0.0,
            repetitions=1,
        )
    ]

    conditions: List[Tuple[str, Optional[float]]] = [
        (f"sigma={sigma:g}", sigma) for sigma in sigmas
    ]
    if include_random:
        conditions.append(("random", None))

    for label, sigma in conditions:
        stream = spawn_rng(parent, label)
        samples: List[float] = []
        for _ in range(repetitions):
            perturbed_cases: List[Case] = []
            for qg, relevant in cases:
                if sigma is None:
                    perturbed = randomize_query_graph(qg, stream)
                else:
                    perturbed = noise(qg, sigma, stream)
                perturbed_cases.append((perturbed, relevant))
            samples.append(_mean_ap_over_cases(perturbed_cases, method, options))
        mean = sum(samples) / len(samples)
        std = statistics.pstdev(samples) if len(samples) > 1 else 0.0
        half_width = 1.96 * std / math.sqrt(len(samples)) if samples else 0.0
        points.append(
            SensitivityPoint(
                condition=label,
                mean_ap=mean,
                std_ap=std,
                ci95_half_width=half_width,
                repetitions=repetitions,
            )
        )
    return points
