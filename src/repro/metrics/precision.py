"""Precision and recall at a cut-off."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ValidationError

__all__ = ["precision_at", "recall_at"]


def _check_cutoff(relevances: Sequence[int], i: int) -> None:
    if not 1 <= i <= len(relevances):
        raise ValidationError(
            f"cut-off must be in [1, {len(relevances)}], got {i}"
        )
    for value in relevances:
        if value not in (0, 1, True, False):
            raise ValidationError(f"relevance labels must be 0/1, got {value!r}")


def precision_at(relevances: Sequence[int], i: int) -> float:
    """P@i: fraction of the first ``i`` ranked items that are relevant."""
    _check_cutoff(relevances, i)
    return sum(1 for value in relevances[:i] if value) / i


def recall_at(relevances: Sequence[int], i: int) -> float:
    """R@i: fraction of all relevant items found in the first ``i``."""
    _check_cutoff(relevances, i)
    total = sum(1 for value in relevances if value)
    if total == 0:
        raise ValidationError("recall undefined: no relevant items in the list")
    return sum(1 for value in relevances[:i] if value) / total
