"""Average precision, tie-aware expected AP, and the random baseline.

``average_precision`` is the textbook AP at 100 % recall over a fully
ordered binary relevance vector.

``expected_average_precision`` handles *partial* orders: scoring
functions (InEdge especially) produce ties, and the paper follows
McSherry & Najork (ECIR 2008) in reporting the mean AP over all
permutations of tied items. We compute that expectation analytically:
inside a tie group of size ``m`` containing ``r`` relevant items, a
relevant item lands on within-group position ``j`` uniformly, and the
expected number of *other* relevant group members placed before it is
``(j - 1)(r - 1)/(m - 1)``; summing the resulting expected precision
contributions is linear in the list length.

``random_average_precision`` is Definition 4.1 — the expected AP of an
arbitrarily ordered list with ``k`` relevant among ``n`` — and equals
``expected_average_precision`` with all scores tied (a property the test
suite checks, and which the paper uses as its "Random" baseline).
"""

from __future__ import annotations

from typing import AbstractSet, Hashable, Mapping, Sequence

from repro.errors import ValidationError

__all__ = [
    "average_precision",
    "average_precision_at",
    "interpolated_average_precision",
    "expected_average_precision",
    "random_average_precision",
]

NodeId = Hashable


def average_precision(relevances: Sequence[int]) -> float:
    """AP at 100 % recall of a fully ordered 0/1 relevance vector."""
    k = 0
    for value in relevances:
        if value not in (0, 1, True, False):
            raise ValidationError(f"relevance labels must be 0/1, got {value!r}")
        k += bool(value)
    if k == 0:
        raise ValidationError("AP undefined: no relevant items in the list")
    hits = 0
    total = 0.0
    for i, value in enumerate(relevances, start=1):
        if value:
            hits += 1
            total += hits / i
    return total / k


def average_precision_at(relevances: Sequence[int], k: int) -> float:
    """AP@k: average precision over the first ``k`` ranks only.

    The paper notes AP "can be calculated at a specified number of
    results (e.g. AP@20)"; relevant items below the cut-off still count
    in the normaliser, so AP@n equals plain AP.
    """
    if not 1 <= k <= len(relevances):
        raise ValidationError(f"cut-off must be in [1, {len(relevances)}], got {k}")
    total_relevant = 0
    for value in relevances:
        if value not in (0, 1, True, False):
            raise ValidationError(f"relevance labels must be 0/1, got {value!r}")
        total_relevant += bool(value)
    if total_relevant == 0:
        raise ValidationError("AP undefined: no relevant items in the list")
    hits = 0
    total = 0.0
    for i, value in enumerate(relevances[:k], start=1):
        if value:
            hits += 1
            total += hits / i
    return total / total_relevant


def interpolated_average_precision(
    relevances: Sequence[int], points: int = 11
) -> float:
    """N-point interpolated AP (the classic 11-point TREC measure).

    Precision at each recall point ``r`` is the *maximum* precision at
    any rank whose recall is at least ``r``; the measure averages those
    interpolated precisions over ``points`` evenly spaced recall levels
    including 0 and 1.
    """
    if points < 2:
        raise ValidationError(f"need at least 2 recall points, got {points}")
    k = 0
    for value in relevances:
        if value not in (0, 1, True, False):
            raise ValidationError(f"relevance labels must be 0/1, got {value!r}")
        k += bool(value)
    if k == 0:
        raise ValidationError("AP undefined: no relevant items in the list")

    # precision/recall after each rank
    precisions = []
    recalls = []
    hits = 0
    for i, value in enumerate(relevances, start=1):
        if value:
            hits += 1
        precisions.append(hits / i)
        recalls.append(hits / k)

    total = 0.0
    for j in range(points):
        level = j / (points - 1)
        attainable = [
            p for p, r in zip(precisions, recalls) if r >= level - 1e-12
        ]
        total += max(attainable) if attainable else 0.0
    return total / points


def expected_average_precision(
    scores: Mapping[NodeId, float], relevant: AbstractSet[NodeId]
) -> float:
    """Expected AP over all permutations of tied items.

    ``scores`` maps each ranked item to its relevance score (higher is
    better); ``relevant`` is the gold-standard set. Items in
    ``relevant`` that are missing from ``scores`` are ignored (they were
    not retrieved; the paper evaluates AP on the retrieved answer set).
    """
    if not scores:
        raise ValidationError("AP undefined: empty ranking")
    k_total = sum(1 for item in scores if item in relevant)
    if k_total == 0:
        raise ValidationError("AP undefined: no relevant items were retrieved")

    # build tie groups in descending score order
    by_score: dict = {}
    for item, score in scores.items():
        by_score.setdefault(score, []).append(item)

    total = 0.0
    preceding = 0          # items in strictly better groups
    relevant_before = 0    # relevant items in strictly better groups
    for score in sorted(by_score, reverse=True):
        group = by_score[score]
        m = len(group)
        r = sum(1 for item in group if item in relevant)
        if r > 0:
            # each relevant member sits at within-group position j with
            # probability 1/m; the expected count of other relevant group
            # members before it is (j-1)(r-1)/(m-1)
            pair_density = (r - 1) / (m - 1) if m > 1 else 0.0
            expectation = 0.0
            for j in range(1, m + 1):
                expected_hits = relevant_before + 1 + (j - 1) * pair_density
                expectation += expected_hits / (preceding + j)
            total += r * (expectation / m)
        preceding += m
        relevant_before += r
    return total / k_total


def random_average_precision(k: int, n: int) -> float:
    """Definition 4.1: expected AP of a randomly ordered list.

    ``k`` relevant items among ``n`` total:

        APrand(k, n) = sum_{i=1}^{n} ((k-1)(i-1) + (n-1)) / (i (n-1) n)
    """
    if n < 1:
        raise ValidationError(f"list length must be >= 1, got {n}")
    if not 1 <= k <= n:
        raise ValidationError(f"relevant count must be in [1, {n}], got {k}")
    if n == 1:
        return 1.0
    return sum(
        ((k - 1) * (i - 1) + (n - 1)) / (i * (n - 1) * n) for i in range(1, n + 1)
    )
