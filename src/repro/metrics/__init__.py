"""Information-retrieval evaluation metrics (§4, "Measuring Ranking
Performance").

Average precision at 100 % recall is the paper's uniform quality
measure; because scoring functions produce ties (especially the
deterministic ones), the tie-aware *expected* AP of McSherry & Najork
(ECIR 2008) is used throughout, with the analytic random-permutation AP
(Definition 4.1) as the no-ranking baseline.
"""

from repro.metrics.average_precision import (
    average_precision,
    average_precision_at,
    expected_average_precision,
    interpolated_average_precision,
    random_average_precision,
)
from repro.metrics.precision import precision_at, recall_at
from repro.metrics.ranking import format_rank_interval, rank_intervals

__all__ = [
    "average_precision",
    "average_precision_at",
    "interpolated_average_precision",
    "expected_average_precision",
    "random_average_precision",
    "precision_at",
    "recall_at",
    "rank_intervals",
    "format_rank_interval",
]
