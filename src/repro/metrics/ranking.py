"""Tie-aware rank intervals and their presentation.

Tables 2 and 3 of the paper report the rank each method assigns to a
gold function, with ties shown as intervals (``34-97`` means the
function could land anywhere between rank 34 and rank 97 depending on
tie-breaking). These helpers compute and format such intervals from a
raw score mapping without needing a full :class:`RankedResult`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

__all__ = ["rank_intervals", "format_rank_interval", "interval_midpoint"]

NodeId = Hashable


def rank_intervals(scores: Mapping[NodeId, float]) -> Dict[NodeId, Tuple[int, int]]:
    """Best/worst possible 1-based rank of every item under ties.

    Computed in one sort: items are grouped by score descending; a group
    covering positions ``c+1 .. c+m`` gives every member the interval
    ``(c+1, c+m)``.
    """
    ordered = sorted(scores.items(), key=lambda item: -item[1])
    intervals: Dict[NodeId, Tuple[int, int]] = {}
    position = 0
    index = 0
    items = ordered
    while index < len(items):
        score = items[index][1]
        group = [items[index][0]]
        index += 1
        while index < len(items) and items[index][1] == score:
            group.append(items[index][0])
            index += 1
        lo, hi = position + 1, position + len(group)
        for node in group:
            intervals[node] = (lo, hi)
        position += len(group)
    return intervals


def format_rank_interval(interval: Tuple[int, int]) -> str:
    """Render ``(5, 5)`` as ``"5"`` and ``(34, 97)`` as ``"34-97"``."""
    lo, hi = interval
    return str(lo) if lo == hi else f"{lo}-{hi}"


def interval_midpoint(interval: Tuple[int, int]) -> float:
    """Expected rank under random tie-breaking (what the paper's per-table
    Mean rows average)."""
    lo, hi = interval
    return (lo + hi) / 2.0
