"""The concrete BioRank mediated schema and source catalogue.

:func:`biorank_query_schema` reconstructs the subset of the E/R schema
relevant to the paper's running exploratory query (Fig 1):
``(EntrezProtein.name = "ABCC8", AmiGO)``. :func:`full_source_catalog`
reproduces the 11-source table of §2 (entity/relationship counts per
source).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.schema.composition import CompositionOracle
from repro.schema.cardinality import Cardinality
from repro.schema.er import ERSchema

__all__ = ["biorank_query_schema", "biorank_composition_oracle", "full_source_catalog", "SourceCatalogEntry"]


def biorank_query_schema() -> ERSchema:
    """The Fig 1 schema: query node, three source paths, AmiGO answers.

    Edge cardinalities follow the figure: the query matches protein
    records (``1:n`` — the keyword may hit several records), sequence
    searches fan out (``1:n``), foreign keys into EntrezGene are ``n:1``,
    and the final GO-term annotations are ``n:m``.
    """
    schema = ERSchema("biorank-query")
    schema.entity("Query", key="id", source=None)
    schema.entity("EntrezProtein", key="name", attributes=("seq",),
                  source="EntrezProtein")
    schema.entity("NCBIBlastHit", key="seq2", attributes=("e_value",),
                  source="NCBIBlast")
    schema.entity("PfamMatch", key="family", attributes=("e_value",),
                  source="Pfam")
    schema.entity("TigrFamMatch", key="family", attributes=("e_value",),
                  source="TIGRFAM")
    schema.entity("EntrezGene", key="idEG", attributes=("status_code",),
                  source="EntrezGene")
    schema.entity("AmiGO", key="idGO", attributes=("evidence_code",),
                  source="AmiGO")

    schema.relate("matches", "Query", "EntrezProtein", "1:n")
    schema.relate("blast1", "EntrezProtein", "NCBIBlastHit", "1:n",
                  attributes=("e_value",))
    schema.relate("blast2", "NCBIBlastHit", "EntrezGene", "n:1")
    schema.relate("protein_gene", "EntrezProtein", "EntrezGene", "n:1")
    schema.relate("pfam_match", "EntrezProtein", "PfamMatch", "1:n",
                  attributes=("e_value",))
    schema.relate("tigrfam_match", "EntrezProtein", "TigrFamMatch", "1:n",
                  attributes=("e_value",))
    schema.relate("gene_go", "EntrezGene", "AmiGO", "n:m",
                  attributes=("evidence_code",))
    schema.relate("pfam_go", "PfamMatch", "AmiGO", "n:m")
    schema.relate("tigrfam_go", "TigrFamMatch", "AmiGO", "n:m")
    return schema


def biorank_composition_oracle() -> CompositionOracle:
    """Domain knowledge for the BioRank schema (§4, "Closed solution").

    From the point of view of a *single* answer node, the final ``[n:m]``
    annotation relationships behave as ``[n:1]`` — every annotation edge
    points at that one GO term. This is the observation that makes each
    per-target subquery reducible even though the whole schema is not.
    """
    oracle = CompositionOracle()
    oracle.declare("blast1", "blast2", Cardinality.ONE_TO_MANY)
    return oracle


@dataclass(frozen=True)
class SourceCatalogEntry:
    """One row of the §2 source table: entity and relationship counts."""

    name: str
    n_entities: int
    n_relationships: int


def full_source_catalog() -> List[SourceCatalogEntry]:
    """The 11 data sources BioRank connects to (§2)."""
    rows: Tuple[Tuple[str, int, int], ...] = (
        ("AmiGO", 1, 4),
        ("NCBIBlast", 2, 3),
        ("CDD", 3, 1),
        ("EntrezGene", 2, 3),
        ("EntrezProtein", 1, 11),
        ("PDB", 1, 0),
        ("Pfam", 2, 2),
        ("PIRSF", 2, 2),
        ("UniProt", 2, 2),
        ("SuperFamily", 3, 1),
        ("TIGRFAM", 2, 2),
    )
    return [SourceCatalogEntry(name, e, r) for name, e, r in rows]
