"""Entity sets, relationships and the mediated E/R schema."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import SchemaError
from repro.schema.cardinality import Cardinality

__all__ = ["EntitySet", "Relationship", "ERSchema"]


@dataclass(frozen=True)
class EntitySet:
    """An entity set ``P(id, a1, a2, ...)`` exported by a data source.

    ``source`` names the data source that exports the entity set (used by
    the mediator and for per-source confidence ``ps``); ``key`` is the
    name of the identifying attribute.
    """

    name: str
    key: str = "id"
    attributes: Tuple[str, ...] = ()
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("entity set needs a non-empty name")


@dataclass(frozen=True)
class Relationship:
    """A directed binary relationship ``Q(id, id', b1, ...)`` between two
    entity sets, annotated with its cardinality class."""

    name: str
    source: str
    target: str
    cardinality: Cardinality
    attributes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relationship needs a non-empty name")


class ERSchema:
    """A mediated schema: entity sets plus directed relationships.

    The schema is a directed multigraph at the type level — two entity
    sets may be connected by several distinct relationships (e.g. two
    different link-computation methods between the same sources).
    """

    def __init__(self, name: str = "schema"):
        self.name = name
        self._entities: Dict[str, EntitySet] = {}
        self._relationships: Dict[str, Relationship] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_entity(self, entity: EntitySet) -> EntitySet:
        if entity.name in self._entities:
            raise SchemaError(f"schema already has entity set {entity.name!r}")
        self._entities[entity.name] = entity
        return entity

    def add_relationship(self, relationship: Relationship) -> Relationship:
        if relationship.name in self._relationships:
            raise SchemaError(
                f"schema already has relationship {relationship.name!r}"
            )
        for endpoint in (relationship.source, relationship.target):
            if endpoint not in self._entities:
                raise SchemaError(
                    f"relationship {relationship.name!r} references unknown "
                    f"entity set {endpoint!r}"
                )
        self._relationships[relationship.name] = relationship
        return relationship

    def entity(self, name: str, *, key: str = "id", attributes: Iterable[str] = (),
               source: Optional[str] = None) -> EntitySet:
        """Convenience: create and add an :class:`EntitySet`."""
        return self.add_entity(
            EntitySet(name, key=key, attributes=tuple(attributes), source=source)
        )

    def relate(
        self,
        name: str,
        source: str,
        target: str,
        cardinality: str,
        attributes: Iterable[str] = (),
    ) -> Relationship:
        """Convenience: create and add a :class:`Relationship`."""
        return self.add_relationship(
            Relationship(
                name,
                source,
                target,
                Cardinality.parse(cardinality),
                attributes=tuple(attributes),
            )
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    @property
    def entities(self) -> List[EntitySet]:
        return list(self._entities.values())

    @property
    def relationships(self) -> List[Relationship]:
        return list(self._relationships.values())

    def get_entity(self, name: str) -> EntitySet:
        entity = self._entities.get(name)
        if entity is None:
            raise SchemaError(f"schema has no entity set {name!r}")
        return entity

    def get_relationship(self, name: str) -> Relationship:
        relationship = self._relationships.get(name)
        if relationship is None:
            raise SchemaError(f"schema has no relationship {name!r}")
        return relationship

    def incoming(self, entity_name: str) -> List[Relationship]:
        """Relationships whose target is ``entity_name``."""
        self.get_entity(entity_name)
        return [r for r in self._relationships.values() if r.target == entity_name]

    def outgoing(self, entity_name: str) -> List[Relationship]:
        """Relationships whose source is ``entity_name``."""
        self.get_entity(entity_name)
        return [r for r in self._relationships.values() if r.source == entity_name]

    def roots(self) -> List[EntitySet]:
        """Entity sets with no incoming relationship."""
        targets = {r.target for r in self._relationships.values()}
        return [e for e in self._entities.values() if e.name not in targets]

    def is_tree(self) -> bool:
        """True if the schema digraph is a rooted tree (one root, every
        other node has exactly one incoming relationship, connected)."""
        roots = self.roots()
        if len(roots) != 1:
            return False
        in_degree: Dict[str, int] = {name: 0 for name in self._entities}
        for relationship in self._relationships.values():
            in_degree[relationship.target] += 1
        non_root = [n for n in self._entities if n != roots[0].name]
        if any(in_degree[n] != 1 for n in non_root):
            return False
        # connectivity: walk from the root
        seen = {roots[0].name}
        frontier = [roots[0].name]
        while frontier:
            current = frontier.pop()
            for relationship in self.outgoing(current):
                if relationship.target not in seen:
                    seen.add(relationship.target)
                    frontier.append(relationship.target)
        return seen == set(self._entities)

    def copy(self) -> "ERSchema":
        clone = ERSchema(self.name)
        clone._entities = dict(self._entities)
        clone._relationships = dict(self._relationships)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ERSchema({self.name!r}, {len(self._entities)} entities, "
            f"{len(self._relationships)} relationships)"
        )
