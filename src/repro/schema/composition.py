"""The composition algebra over relationship cardinalities.

Composing two relationships ``Q : P0 -> P1`` and ``Q' : P1 -> P2`` yields
a relationship ``Q ∘ Q' : P0 -> P2``. At the type level the paper notes:

* ``[1:n] ∘ [1:n] = [1:n]`` and ``[n:1] ∘ [n:1] = [n:1]``;
* ``[1:n] ∘ [n:1]`` can be any of ``[1:n]``, ``[n:1]`` or ``[m:n]`` —
  only *domain knowledge* can pin it down;
* anything involving ``[m:n]`` is ``[m:n]`` in general.

:func:`compose_cardinalities` returns the set of possible outcomes;
:class:`CompositionOracle` lets callers register the domain knowledge
that disambiguates specific relationship pairs (as the paper's authors
did for the BioRank sources, e.g. the final ``[n:m]`` relationship that
is ``[n:1]`` from the point of view of each answer node).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import SchemaError
from repro.schema.cardinality import Cardinality

__all__ = ["compose_cardinalities", "CompositionOracle"]

_C = Cardinality


def compose_cardinalities(first: Cardinality, second: Cardinality) -> FrozenSet[Cardinality]:
    """Possible cardinality classes of ``first ∘ second``.

    Works on folded classes (``[1:1]`` treated as ``[n:1]``); the result
    is a frozen set because composition is not always determined at the
    type level.
    """
    a, b = first.folded(), second.folded()
    if a is _C.ONE_TO_MANY and b is _C.ONE_TO_MANY:
        return frozenset({_C.ONE_TO_MANY})
    if a is _C.MANY_TO_ONE and b is _C.MANY_TO_ONE:
        return frozenset({_C.MANY_TO_ONE})
    if a is _C.ONE_TO_MANY and b is _C.MANY_TO_ONE:
        # the ambiguous case Theorem 3.2 hinges on
        return frozenset({_C.ONE_TO_MANY, _C.MANY_TO_ONE, _C.MANY_TO_MANY})
    if a is _C.MANY_TO_ONE and b is _C.ONE_TO_MANY:
        return frozenset({_C.MANY_TO_MANY})
    # any composition through an [m:n] leg is [m:n] in general
    return frozenset({_C.MANY_TO_MANY})


class CompositionOracle:
    """Domain knowledge resolving ambiguous relationship compositions.

    Maps an ordered pair of relationship names to the cardinality class
    their composition is *known* to have for the data at hand. The
    reducibility checker consults the oracle before falling back to the
    type-level algebra; an oracle answer outside the algebra's possible
    set is rejected, so domain knowledge can narrow but never contradict
    the algebra.
    """

    def __init__(self) -> None:
        self._known: Dict[Tuple[str, str], Cardinality] = {}

    def declare(self, first: str, second: str, result: Cardinality) -> None:
        """Record that ``first ∘ second`` has cardinality ``result``."""
        self._known[(first, second)] = result

    def resolve(
        self,
        first_name: str,
        second_name: str,
        first_card: Cardinality,
        second_card: Cardinality,
    ) -> Optional[Cardinality]:
        """Return the composed cardinality if it is uniquely determined.

        Order of resolution: (1) exact oracle entry, validated against the
        algebra; (2) algebra, if it admits a single outcome; (3) ``None``.
        """
        possible = compose_cardinalities(first_card, second_card)
        declared = self._known.get((first_name, second_name))
        if declared is not None:
            if declared.folded() not in possible:
                raise SchemaError(
                    f"oracle claims {first_name} ∘ {second_name} = {declared}, "
                    f"but the algebra only allows {sorted(c.value for c in possible)}"
                )
            return declared.folded()
        if len(possible) == 1:
            return next(iter(possible))
        return None
