"""Theorem 3.2: deciding whether an E/R schema is *reducible*.

A schema is reducible when every data-graph instance of it can be fully
collapsed by the serial-path / parallel-path graph reduction rules
(:mod:`repro.core.reduction`), which is exactly when reliability admits a
tractable closed-form solution.

The checker implements the theorem constructively, with two sound
extensions the paper uses implicitly:

* **Part A** — a schema that is a rooted tree of only injective
  (``[1:n]``/``[1:1]``) relationships is reducible.
* **Star base case** — a schema whose relationships all leave one root
  entity is reducible: in any instance, each intermediate record has one
  incoming edge (from the query node) and, once sinks are pruned and
  parallels merged, one outgoing edge — serial collapse finishes it.
* **Part B** — if some entity set ``P`` has exactly one incoming
  *injective* relationship ``Q`` and exactly one outgoing *functional*
  relationship ``Q'``, then every instance record of ``P`` has in- and
  out-degree at most one, so it can always be serially collapsed; ``P``
  is contracted and ``Q ∘ Q'`` spliced in. The composed cardinality is
  taken from the :class:`CompositionOracle`/algebra when known and
  conservatively assumed ``[m:n]`` otherwise (the theorem's condition
  (a) exists to keep *later* contractions possible, not to license this
  one).
* **Per-target view** — §4's observation: an ``[n:m]`` relationship into
  the answer entity set behaves as ``[n:1]`` from the point of view of a
  single answer node. :func:`check_reducibility_per_target` applies that
  transformation before checking, which is how the BioRank schema's
  individual queries admit closed solutions even though the full schema
  does not.

Because several entity sets may be contractible at once and the order
can matter, the checker searches over contraction orders (with
memoisation on a canonical schema signature); schemas are tiny, so this
is cheap. A negative verdict means *not provably reducible* by these
rules — e.g. Wheatstone-bridge-capable schemas like Fig 2a/2b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.schema.cardinality import Cardinality
from repro.schema.composition import CompositionOracle
from repro.schema.er import ERSchema, Relationship

__all__ = [
    "ReducibilityReport",
    "check_reducibility",
    "check_reducibility_per_target",
]

_C = Cardinality


@dataclass
class ReducibilityReport:
    """Outcome of a reducibility check.

    ``steps`` records the successful contraction sequence (empty when a
    base case applied immediately); ``reason`` explains a negative
    verdict.
    """

    reducible: bool
    steps: List[str] = field(default_factory=list)
    reason: str = ""

    def __bool__(self) -> bool:
        return self.reducible


def check_reducibility(
    schema: ERSchema, oracle: Optional[CompositionOracle] = None
) -> ReducibilityReport:
    """Decide reducibility of ``schema`` per (extended) Theorem 3.2."""
    oracle = oracle or CompositionOracle()
    memo: Dict[FrozenSet[Tuple[str, str, str, str]], Optional[List[str]]] = {}
    steps = _search(schema, oracle, memo)
    if steps is not None:
        return ReducibilityReport(True, steps=steps)
    return ReducibilityReport(
        False,
        reason=(
            "no contraction order reaches a base case; some instance may "
            "contain a Wheatstone bridge"
        ),
    )


def check_reducibility_per_target(
    schema: ERSchema,
    target_entity: str,
    oracle: Optional[CompositionOracle] = None,
) -> ReducibilityReport:
    """Reducibility from the point of view of one answer node (§4).

    Every ``[n:m]`` relationship whose target is ``target_entity`` is
    re-typed ``[n:1]`` — all of its instance edges point at the single
    answer node under consideration — and the ordinary check runs on the
    transformed schema.
    """
    schema.get_entity(target_entity)
    viewed = ERSchema(f"{schema.name}@{target_entity}")
    for entity in schema.entities:
        viewed.add_entity(entity)
    for relationship in schema.relationships:
        cardinality = relationship.cardinality
        if (
            relationship.target == target_entity
            and cardinality is _C.MANY_TO_MANY
        ):
            cardinality = _C.MANY_TO_ONE
        viewed.add_relationship(
            Relationship(
                relationship.name,
                relationship.source,
                relationship.target,
                cardinality,
                attributes=relationship.attributes,
            )
        )
    return check_reducibility(viewed, oracle)


def _signature(schema: ERSchema) -> FrozenSet[Tuple[str, str, str, str]]:
    return frozenset(
        (r.name, r.source, r.target, r.cardinality.folded().value)
        for r in schema.relationships
    )


def _is_injective_interior_tree(schema: ERSchema) -> bool:
    """Part A, generalised soundly: a rooted tree whose *interior*
    relationships are injective.

    In any instance, injective interior relationships give every
    intermediate record in-degree at most one, so the per-target
    subgraph is a tree over the intermediates that collapses bottom-up
    (serial rule on the layer adjacent to the target, parallel merge,
    repeat). Relationships into leaf entity sets may have any
    cardinality — all their instance edges end at answer records. The
    paper's pure-[1:n] tree is the special case with injective leaf
    relationships too.
    """
    if not schema.is_tree():
        return False
    for relationship in schema.relationships:
        target_is_interior = bool(schema.outgoing(relationship.target))
        if target_is_interior and not relationship.cardinality.injective:
            return False
    return True


def _is_root_star(schema: ERSchema) -> bool:
    """All relationships leave a single root entity (includes the
    zero- and one-relationship schemas)."""
    sources = {r.source for r in schema.relationships}
    return len(sources) <= 1


def _search(
    schema: ERSchema,
    oracle: CompositionOracle,
    memo: Dict[FrozenSet[Tuple[str, str, str, str]], Optional[List[str]]],
) -> Optional[List[str]]:
    """DFS over contraction orders; returns the step log on success."""
    key = _signature(schema)
    if key in memo:
        return memo[key]
    if _is_root_star(schema) or _is_injective_interior_tree(schema):
        memo[key] = []
        return []
    memo[key] = None  # guard against revisiting while exploring

    for entity in schema.entities:
        incoming = schema.incoming(entity.name)
        outgoing = schema.outgoing(entity.name)
        if len(incoming) != 1 or len(outgoing) != 1:
            continue
        q, q_prime = incoming[0], outgoing[0]
        if not q.cardinality.injective:
            continue  # instance in-degree could exceed one
        if not q_prime.cardinality.functional:
            continue  # instance out-degree could exceed one
        if q.source == entity.name or q_prime.target == entity.name:
            continue  # self-loop relationship; contraction undefined
        composed = oracle.resolve(
            q.name, q_prime.name, q.cardinality, q_prime.cardinality
        )
        if composed is None:
            composed = _C.MANY_TO_MANY  # conservative worst case
        contracted = _contract(schema, entity.name, q, q_prime, composed)
        sub_steps = _search(contracted, oracle, memo)
        if sub_steps is not None:
            step = (
                f"contract {entity.name!r}: {q.name} [{q.cardinality}] ∘ "
                f"{q_prime.name} [{q_prime.cardinality}] = [{composed}]"
            )
            memo[key] = [step] + sub_steps
            return memo[key]

    memo[key] = None
    return None


def _contract(
    schema: ERSchema,
    entity_name: str,
    q: Relationship,
    q_prime: Relationship,
    composed: Cardinality,
) -> ERSchema:
    """Remove ``entity_name`` and splice ``q ∘ q_prime`` into the schema."""
    result = ERSchema(schema.name)
    for entity in schema.entities:
        if entity.name != entity_name:
            result.add_entity(entity)
    for relationship in schema.relationships:
        if relationship.name in (q.name, q_prime.name):
            continue
        result.add_relationship(relationship)
    result.add_relationship(
        Relationship(
            name=f"{q.name}∘{q_prime.name}",
            source=q.source,
            target=q_prime.target,
            cardinality=composed,
        )
    )
    return result
