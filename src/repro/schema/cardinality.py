"""Cardinality classes of binary relationships.

The paper annotates each relationship in the mediated schema with a type
``[1:n]``, ``[n:1]`` or ``[m:n]`` (folding ``[1:1]`` into one of the first
two when convenient). These classes drive the reducibility analysis of
Theorem 3.2.
"""

from __future__ import annotations

import enum

from repro.errors import SchemaError

__all__ = ["Cardinality"]


class Cardinality(enum.Enum):
    """Cardinality class of a directed binary relationship P -> P'."""

    ONE_TO_ONE = "1:1"
    ONE_TO_MANY = "1:n"
    MANY_TO_ONE = "n:1"
    MANY_TO_MANY = "n:m"

    @classmethod
    def parse(cls, text: str) -> "Cardinality":
        """Parse ``"1:n"``-style notation (also accepts ``"m:n"``)."""
        normalised = text.strip().lower().replace("m:n", "n:m")
        for member in cls:
            if member.value == normalised:
                return member
        raise SchemaError(f"unknown cardinality {text!r}")

    @property
    def inverse(self) -> "Cardinality":
        """Cardinality of the relationship read in the opposite direction."""
        if self is Cardinality.ONE_TO_MANY:
            return Cardinality.MANY_TO_ONE
        if self is Cardinality.MANY_TO_ONE:
            return Cardinality.ONE_TO_MANY
        return self

    @property
    def functional(self) -> bool:
        """True if each source entity maps to at most one target entity."""
        return self in (Cardinality.ONE_TO_ONE, Cardinality.MANY_TO_ONE)

    @property
    def injective(self) -> bool:
        """True if each target entity is reached by at most one source."""
        return self in (Cardinality.ONE_TO_ONE, Cardinality.ONE_TO_MANY)

    def folded(self) -> "Cardinality":
        """Fold ``[1:1]`` into ``[n:1]`` per the paper's convention.

        Theorem 3.2 only distinguishes ``[1:n]``, ``[n:1]`` and ``[m:n]``;
        a ``[1:1]`` relationship satisfies both functional and injective
        constraints, and treating it as ``[n:1]`` is the safe direction
        for the serial-collapse argument.
        """
        if self is Cardinality.ONE_TO_ONE:
            return Cardinality.MANY_TO_ONE
        return self

    def __str__(self) -> str:
        return self.value
