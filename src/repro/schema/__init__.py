"""The mediated E/R schema layer.

Implements the paper's schema formalism (§2) and its reducibility theory
(§3.1, Theorem 3.2): entity sets, binary relationships with cardinality
classes, a composition algebra over cardinalities, and the checker that
decides whether every data-graph instance of a schema can be fully
collapsed by the serial/parallel graph reduction rules.
"""

from repro.schema.cardinality import Cardinality
from repro.schema.composition import CompositionOracle, compose_cardinalities
from repro.schema.er import EntitySet, ERSchema, Relationship
from repro.schema.reducibility import ReducibilityReport, check_reducibility
from repro.schema.biorank_schema import (
    biorank_query_schema,
    full_source_catalog,
)

__all__ = [
    "Cardinality",
    "CompositionOracle",
    "compose_cardinalities",
    "EntitySet",
    "ERSchema",
    "Relationship",
    "ReducibilityReport",
    "check_reducibility",
    "biorank_query_schema",
    "full_source_catalog",
]
