"""BioRank — integrating and ranking uncertain scientific data.

A faithful reproduction of Detwiler, Gatterbauer, Louie, Suciu and
Tarczy-Hornoch, *"Integrating and Ranking Uncertain Scientific Data"*
(ICDE 2009 / UW-CSE-08-06-03): a mediator-based data-integration system
that models the uncertainty of sources, records and links as
probabilities and ranks integrated answers by probabilistic and
deterministic relevance semantics.

Quick taste::

    from repro import ProbabilisticEntityGraph, QueryGraph, rank

    g = ProbabilisticEntityGraph()
    g.add_node("s"); g.add_node("x", p=0.9); g.add_node("t", p=0.8)
    g.add_edge("s", "x", q=0.5); g.add_edge("x", "t", q=1.0)
    result = rank(QueryGraph(g, "s", ["t"]), method="reliability")
    print(result.ordered())

See :mod:`repro.api` for the public facade (``open_session`` /
``Query`` / ``Session`` — the surface new code should target),
:mod:`repro.integration` for the mediator and exploratory queries,
:mod:`repro.engine` for the batched, cached
:class:`~repro.engine.RankingEngine` built on the compiled CSR kernels
of :mod:`repro.core.compile` / :mod:`repro.core.kernels`,
:mod:`repro.biology` for the synthetic data sources and the paper's
three experimental scenarios, and :mod:`repro.experiments` for the
regenerators of every table and figure.
"""

from repro.core import (
    CompiledGraph,
    Edge,
    ProbabilisticEntityGraph,
    QueryGraph,
    RankedResult,
    closed_form_reliability,
    compile_graph,
    diffusion_scores,
    exact_reliability,
    in_edge_scores,
    naive_reliability,
    path_count_scores,
    propagation_scores,
    rank,
    reduce_graph,
    reliability_scores,
    required_trials,
    traversal_reliability,
)
from repro.api import (
    EngineConfig,
    Query,
    QuerySpec,
    RankingOptions,
    ResultSet,
    Session,
    open_session,
)
from repro.engine import EngineStats, RankingEngine
from repro.errors import ReproError
from repro.integration import ExploratoryQuery, Mediator
from repro.metrics import (
    average_precision,
    expected_average_precision,
    random_average_precision,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "CompiledGraph",
    "Edge",
    "EngineConfig",
    "EngineStats",
    "ProbabilisticEntityGraph",
    "Query",
    "QueryGraph",
    "QuerySpec",
    "RankedResult",
    "RankingEngine",
    "RankingOptions",
    "ReproError",
    "ResultSet",
    "Session",
    "Mediator",
    "ExploratoryQuery",
    "open_session",
    "compile_graph",
    "rank",
    "reliability_scores",
    "propagation_scores",
    "diffusion_scores",
    "in_edge_scores",
    "path_count_scores",
    "naive_reliability",
    "traversal_reliability",
    "exact_reliability",
    "closed_form_reliability",
    "reduce_graph",
    "required_trials",
    "average_precision",
    "expected_average_precision",
    "random_average_precision",
]
