"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class. Subsystems raise the more specific
subclasses below; the exception messages always name the offending object
(table, node, schema element) to make integration failures debuggable.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "StorageError",
    "IntegrityError",
    "SchemaError",
    "GraphError",
    "CycleError",
    "QueryError",
    "EmptyAnswerError",
    "RankingError",
    "OverloadedError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (e.g. probability outside [0, 1])."""


class StorageError(ReproError):
    """Generic storage-engine failure (unknown table, bad column, ...)."""


class IntegrityError(StorageError):
    """A constraint (primary key, foreign key, type) was violated."""


class SchemaError(ReproError):
    """An E/R schema is malformed or an operation on it is undefined."""


class GraphError(ReproError):
    """A graph operation failed (unknown node, missing source, ...)."""


class CycleError(GraphError):
    """A DAG-only algorithm was applied to a cyclic graph."""


class QueryError(ReproError):
    """An exploratory query could not be executed against the mediator."""


class EmptyAnswerError(QueryError):
    """A well-formed query produced an empty answer set.

    ``kind`` says at which stage emptiness surfaced — ``"no-seeds"``
    (no record matches the predicate), ``"dangling-seeds"`` (every
    matching record was dangling) or ``"no-answers"`` (the expansion
    reached no record of any output set). The sharded scatter/gather
    executor relies on the distinction: a shard whose *partition* is
    empty is an empty result fragment, not a failure, and only when
    every shard comes back empty is the single-engine error re-raised.
    """

    #: emptiness kinds, ordered by how far execution got
    KINDS = ("no-seeds", "dangling-seeds", "no-answers")

    def __init__(self, message: str, kind: str = "no-answers"):
        super().__init__(message)
        if kind not in self.KINDS:
            raise ValueError(f"unknown emptiness kind {kind!r}")
        self.kind = kind


class RankingError(ReproError):
    """A ranking method failed or was configured inconsistently."""


class OverloadedError(ReproError):
    """A request was shed by admission control: the session's in-flight
    cap was reached and its admission queue was full.

    Shedding is deliberate backpressure, not a failure of the query —
    the same request retried after :attr:`retry_after` seconds (the
    value the HTTP layer surfaces as a ``Retry-After`` header with its
    503 response) is expected to succeed once load drains.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class AnalysisError(ReproError):
    """Static analysis refused a schema (``open_session(lint="error")``)
    or could not run at all (unloadable CLI target).

    ``detections`` carries the error-severity
    :class:`~repro.analysis.Detection` objects that triggered the
    refusal, so callers can inspect the REPRO codes programmatically.
    """

    def __init__(self, message: str, detections: tuple = ()):
        super().__init__(message)
        self.detections = tuple(detections)
