"""Newline-delimited JSON-RPC 2.0 codec for the shard worker protocol.

One message per line, UTF-8 JSON, ``\\n``-terminated — the LSP-style
framing a long-lived local protocol wants: trivially debuggable
(``socat`` the socket and read it), no length-prefix bookkeeping, and
resynchronisable by dropping the connection. Requests and responses
follow JSON-RPC 2.0 (``jsonrpc``/``id``/``method``/``params`` out,
``result`` or ``error`` back); the worker additionally sends one
``hello`` notification after bootstrap, which doubles as the parent's
readiness barrier.

The payload codecs below are the *semantic* half of the protocol: graph
node ids (``(entity_set, key)`` tuples, possibly nested) survive JSON's
tuple/list conflation, score fragments round-trip bit-identically
(Python's ``json`` emits ``repr``-exact floats), and library exceptions
cross the process boundary as ``{type, message, kind}`` records that
reconstruct into the *same* exception type with the *same* message —
which is what lets the process-sharded engine classify failures exactly
like the thread-mode engine does.
"""

from __future__ import annotations

import dataclasses
import json
import socket
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

import repro.errors as _errors
from repro.engine.ranking import EngineStats
from repro.errors import EmptyAnswerError, QueryError, ReproError
from repro.integration.builder import BuildStats

__all__ = [
    "RPC_PROTOCOL_VERSION",
    "RpcConnection",
    "RpcRemoteError",
    "RpcTransportError",
    "decode_build_stats",
    "decode_engine_stats",
    "decode_exception",
    "decode_message",
    "decode_node",
    "encode_build_stats",
    "encode_engine_stats",
    "encode_exception",
    "encode_message",
    "encode_node",
]

#: bumped when the wire protocol changes incompatibly; the hello
#: handshake rejects a worker speaking a different version
RPC_PROTOCOL_VERSION = 1

#: JSON-RPC 2.0 error codes used by the worker
RPC_INVALID_REQUEST = -32600
RPC_METHOD_NOT_FOUND = -32601
RPC_APPLICATION_ERROR = -32000

_MAX_LINE = 64 * 1024 * 1024  # a malformed peer cannot OOM the reader


class RpcTransportError(QueryError):
    """The connection to a worker broke: EOF, reset, timeout, or a line
    that is not valid JSON-RPC. The worker's protocol state is unknown
    after any of these, so the supervisor's only safe move is
    restart-and-retry."""


class RpcRemoteError(QueryError):
    """The worker answered with a JSON-RPC error object (an
    *application* error — the RPC itself worked). ``remote`` carries
    the reconstructed library exception when one was encoded."""

    def __init__(self, message: str, code: int = RPC_APPLICATION_ERROR,
                 remote: Optional[BaseException] = None):
        super().__init__(message)
        self.code = code
        self.remote = remote


# ------------------------------------------------------------------ #
# message framing
# ------------------------------------------------------------------ #


def encode_message(message: Mapping[str, object]) -> bytes:
    """One JSON-RPC message as a newline-terminated UTF-8 line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, object]:
    """Parse one received line; anything non-JSON or non-object is a
    transport error (the stream cannot be trusted afterwards)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcTransportError(
            f"malformed JSON-RPC line ({exc}): {line[:120]!r}"
        ) from None
    if not isinstance(message, dict) or message.get("jsonrpc") != "2.0":
        raise RpcTransportError(
            f"not a JSON-RPC 2.0 message: {line[:120]!r}"
        )
    return message


def request(request_id: int, method: str, params: Mapping[str, object]) -> Dict[str, object]:
    return {"jsonrpc": "2.0", "id": request_id, "method": method, "params": dict(params)}


def notification(method: str, params: Mapping[str, object]) -> Dict[str, object]:
    return {"jsonrpc": "2.0", "method": method, "params": dict(params)}


def response(request_id: object, result: object) -> Dict[str, object]:
    return {"jsonrpc": "2.0", "id": request_id, "result": result}


def error_response(request_id: object, code: int, message: str,
                   data: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
    error: Dict[str, object] = {"code": code, "message": message}
    if data is not None:
        error["data"] = dict(data)
    return {"jsonrpc": "2.0", "id": request_id, "error": error}


# ------------------------------------------------------------------ #
# payload codecs
# ------------------------------------------------------------------ #


def encode_node(node: Hashable) -> object:
    """Graph node ids are ``(entity_set, key)`` tuples (keys may nest
    tuples); JSON has no tuple, so encode to lists recursively."""
    if isinstance(node, tuple):
        return [encode_node(item) for item in node]
    return node


def decode_node(value: object) -> Hashable:
    """The inverse of :func:`encode_node`: lists back to tuples. A
    *list* can never be a real node id (node ids are hashable), so the
    conflation is lossless for everything the builder produces."""
    if isinstance(value, list):
        return tuple(decode_node(item) for item in value)
    return value


def encode_build_stats(stats: BuildStats) -> Dict[str, object]:
    return {
        "nodes": stats.nodes,
        "edges": stats.edges,
        "dangling_links": stats.dangling_links,
        "visited_entities": dict(stats.visited_entities),
    }


def decode_build_stats(data: Mapping[str, Any]) -> BuildStats:
    return BuildStats(
        nodes=int(data["nodes"]),
        edges=int(data["edges"]),
        dangling_links=int(data["dangling_links"]),
        visited_entities=dict(data.get("visited_entities", {})),
    )


def encode_engine_stats(stats: EngineStats) -> Dict[str, object]:
    """Counters only (the derived rates are recomputed on decode).
    Generic over the dataclass fields so new counters (coalescing,
    admission) cross the wire without touching the codec."""
    return {f.name: getattr(stats, f.name) for f in dataclasses.fields(stats)}


def decode_engine_stats(data: Mapping[str, Any]) -> EngineStats:
    # unknown keys from a newer peer are dropped, missing keys from an
    # older peer default to 0 — both directions stay decodable
    return EngineStats(**{
        f.name: int(data.get(f.name, 0))
        for f in dataclasses.fields(EngineStats)
    })


def encode_exception(exc: BaseException) -> Dict[str, object]:
    """A library exception as a wire record. ``type`` is the class name
    (resolved against :mod:`repro.errors` on decode), ``kind`` rides
    along for :class:`~repro.errors.EmptyAnswerError` so the gather's
    emptiness classification survives the boundary."""
    record: Dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    kind = getattr(exc, "kind", None)
    if isinstance(exc, EmptyAnswerError) and kind is not None:
        record["kind"] = kind
    return record


def decode_exception(data: Mapping[str, Any]) -> ReproError:
    """Reconstruct the exception a worker raised. Unknown types decay
    to :class:`~repro.errors.QueryError` carrying the original type
    name, so nothing is silently swallowed."""
    type_name = str(data.get("type", "QueryError"))
    message = str(data.get("message", ""))
    cls = getattr(_errors, type_name, None)
    if cls is EmptyAnswerError:
        return EmptyAnswerError(message, kind=str(data.get("kind", "no-answers")))
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return QueryError(f"{type_name}: {message}")


# ------------------------------------------------------------------ #
# connection
# ------------------------------------------------------------------ #


class RpcConnection:
    """One newline-delimited JSON-RPC peer over a connected socket.

    Not thread-safe by itself — the supervisor serialises calls per
    worker with a lock; the worker serves one request at a time.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._buffer = b""
        self._next_id = 0

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # ---------------------------------------------------------- #
    # raw line I/O
    # ---------------------------------------------------------- #

    def send(self, message: Mapping[str, object]) -> None:
        try:
            self._sock.sendall(encode_message(message))
        except OSError as exc:
            raise RpcTransportError(f"send failed: {exc}") from None

    def send_raw(self, payload: bytes) -> None:
        """Write arbitrary bytes (the fault injector's garbage mode)."""
        self._sock.sendall(payload)

    def receive(self, timeout: Optional[float] = None) -> Dict[str, object]:
        """The next message, or :class:`RpcTransportError` on EOF,
        timeout, reset, or a malformed line."""
        line = self._read_line(timeout)
        return decode_message(line)

    def _read_line(self, timeout: Optional[float]) -> bytes:
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1:]
                return line
            if len(self._buffer) > _MAX_LINE:
                raise RpcTransportError(
                    f"peer sent {len(self._buffer)} bytes without a newline"
                )
            try:
                self._sock.settimeout(timeout)
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise RpcTransportError(
                    f"no response within {timeout:.1f}s (worker hung?)"
                ) from None
            except OSError as exc:
                raise RpcTransportError(f"receive failed: {exc}") from None
            if not chunk:
                raise RpcTransportError("connection closed by peer")
            self._buffer += chunk

    # ---------------------------------------------------------- #
    # client-side call
    # ---------------------------------------------------------- #

    def call(self, method: str, params: Mapping[str, object],
             timeout: Optional[float] = None) -> object:
        """Send one request and block for its response.

        Raises :class:`RpcTransportError` when the transport breaks
        (restart the worker) and :class:`RpcRemoteError` when the
        worker returns a JSON-RPC error object (an application error —
        do *not* restart)."""
        self._next_id += 1
        request_id = self._next_id
        self.send(request(request_id, method, params))
        message = self.receive(timeout)
        if message.get("id") != request_id:
            raise RpcTransportError(
                f"out-of-order response: expected id {request_id}, got "
                f"{message.get('id')!r}"
            )
        if "error" in message:
            error = message["error"]
            if not isinstance(error, dict):
                raise RpcTransportError(f"malformed error object: {error!r}")
            data = error.get("data")
            remote = decode_exception(data) if isinstance(data, dict) else None
            raise RpcRemoteError(
                str(error.get("message", "worker error")),
                code=int(error.get("code", RPC_APPLICATION_ERROR)),
                remote=remote,
            )
        if "result" not in message:
            raise RpcTransportError(
                f"response carries neither result nor error: {message!r}"
            )
        return message["result"]


def encode_fragment_scores(owned: List[Tuple[Hashable, float, str]]) -> List[List[object]]:
    """The owned-answer payload: ``[node, score, label]`` triples.
    (entity_set and key are the node id's own components.)"""
    return [[encode_node(node), score, label] for node, score, label in owned]


def decode_fragment_scores(data: List[List[object]]) -> List[Tuple[Hashable, float, str]]:
    return [(decode_node(node), float(score), str(label)) for node, score, label in data]
