"""The process-sharded scatter/gather engine (supervisor side).

:class:`ProcessShardedEngine` is the drop-in beside
:class:`~repro.engine.sharded.ShardedEngine`, selected via
``EngineConfig(shard_mode="process")``: the same gather semantics —
disjoint owned score fragments, aggregated
:class:`~repro.integration.builder.BuildStats` /
:class:`~repro.engine.ranking.EngineStats`, thread-mode-identical
emptiness and error classification — but each shard lives in its own
worker *process*, reached over newline-delimited JSON-RPC on a local
socket. A crashed, hung or babbling worker costs one bounded
restart-and-retry, never the session.

Supervision policy (see ``docs/serving.md`` for the full table):

* **transport failures** (EOF, reset, timeout, non-JSON line) mean the
  worker's state is unknown → kill it, respawn from the
  :class:`~repro.serving.source.WorkerSource` recipe (the restarted
  worker re-attaches its shard files), and retry the request — at most
  ``worker_restarts`` times per request;
* **application errors** (the worker answered a well-formed JSON-RPC
  error) are deterministic query errors → never restart; re-raise
  exactly as thread mode classifies them (identical on every shard →
  re-raise verbatim; partial → wrap naming the shard);
* **empty shards** are results, not failures (the partition simply
  holds no answers); only when every shard is empty does the
  single-engine :class:`~repro.errors.EmptyAnswerError` re-raise.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import subprocess
import sys
import tempfile
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.ranking import EngineStats
from repro.engine.sharded import ShardRouter, aggregate_build_stats
from repro.errors import EmptyAnswerError, QueryError, RankingError
from repro.integration.builder import BuildStats, NodePayload
from repro.integration.query import ExploratoryQuery
from repro.serving import rpc
from repro.serving.source import WorkerSource

__all__ = [
    "ProcessGatherResult",
    "ProcessShardedEngine",
    "WorkerHandle",
    "live_worker_processes",
]

NodeId = Hashable

#: emptiness priority shared with the thread-mode gather (the error
#: that got furthest is the one the single engine would have raised)
_EMPTY_PRIORITY = {"no-answers": 2, "dangling-seeds": 1, "no-seeds": 0}

#: every worker process ever spawned and not yet reaped, for leak
#: detection in tests and the atexit-style finalizer safety net
_LIVE_WORKERS: "weakref.WeakSet[subprocess.Popen]" = weakref.WeakSet()


def live_worker_processes() -> List[subprocess.Popen]:
    """Spawned worker processes that are still running (test hook: a
    suite leaking workers can fail itself on this)."""
    return [proc for proc in list(_LIVE_WORKERS) if proc.poll() is None]


def _worker_env() -> Dict[str, str]:
    """The spawn environment: inherit, but make sure the worker can
    import :mod:`repro` even when the parent runs from a source tree
    that is on ``sys.path`` without being on ``PYTHONPATH``."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if src not in parts:
        env["PYTHONPATH"] = os.pathsep.join([src] + parts) if parts else src
    return env


class WorkerHandle:
    """One supervised worker process plus its RPC connection.

    The handle owns the per-shard listening socket (bound once, reused
    across restarts), the :class:`subprocess.Popen`, and the accepted
    connection. ``call`` is locked — the engine's scatter threads and
    operator stats polls never interleave frames on one socket.
    """

    def __init__(
        self,
        shard: int,
        source: WorkerSource,
        engine_options: Mapping[str, object],
        socket_dir: str,
        boot_timeout: float = 60.0,
    ):
        self.shard = shard
        self.restarts = 0
        self._source = source
        self._engine_options = dict(engine_options)
        self._boot_timeout = boot_timeout
        self._lock = threading.Lock()
        self._token = secrets.token_hex(8)
        self._closed = False
        self.process: Optional[subprocess.Popen] = None
        self._conn: Optional[rpc.RpcConnection] = None
        # per-shard listener, bound once: a unix socket when the
        # platform has them (and the path fits AF_UNIX's limit),
        # loopback TCP otherwise
        path = os.path.join(socket_dir, f"shard{shard}.sock")
        if hasattr(socket, "AF_UNIX") and len(path) < 100:
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(path)
            self._address: Dict[str, object] = {"family": "unix", "path": path}
            self._socket_path: Optional[str] = path
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.bind(("127.0.0.1", 0))
            host, port = self._listener.getsockname()
            self._address = {"family": "tcp", "host": host, "port": port}
            self._socket_path = None
        self._listener.listen(1)
        try:
            self._spawn()
        except Exception:
            # a failed first boot must not leak the listener/socket file
            self._listener.close()
            if self._socket_path is not None:
                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass
            raise

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    # ------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------ #

    def _spawn(self) -> None:
        boot = {
            "protocol": rpc.RPC_PROTOCOL_VERSION,
            "shard": self.shard,
            "token": self._token,
            "address": self._address,
            "source": self._source.to_dict(),
            "engine": self._engine_options,
        }
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.serving.worker", json.dumps(boot)],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        _LIVE_WORKERS.add(self.process)
        try:
            self._listener.settimeout(self._boot_timeout)
            try:
                accepted, _ = self._listener.accept()
            except socket.timeout:
                raise rpc.RpcTransportError(
                    f"shard {self.shard} worker did not connect within "
                    f"{self._boot_timeout:.0f}s: {self._stderr_tail()}"
                ) from None
            conn = rpc.RpcConnection(accepted)
            hello = conn.receive(timeout=self._boot_timeout)
        except rpc.RpcTransportError:
            self._reap()
            raise
        params = hello.get("params") or {}
        if hello.get("method") == "fatal":
            self._reap()
            raise rpc.RpcTransportError(
                f"shard {self.shard} worker failed to bootstrap: "
                f"{params.get('error')}"
            )
        if (
            hello.get("method") != "hello"
            or params.get("token") != self._token
            or params.get("shard") != self.shard
            or params.get("protocol") != rpc.RPC_PROTOCOL_VERSION
        ):
            self._reap()
            raise rpc.RpcTransportError(
                f"shard {self.shard} worker sent a bad handshake: {hello!r}"
            )
        self._conn = conn

    def _stderr_tail(self, limit: int = 400) -> str:
        if self.process is None or self.process.stderr is None:
            return "no stderr captured"
        try:
            self.process.kill()
            self.process.wait(timeout=5)
            tail = self.process.stderr.read() or b""
        except Exception:
            return "stderr unavailable"
        text = tail.decode("utf-8", "replace").strip()
        return text[-limit:] if text else "worker wrote nothing to stderr"

    def _reap(self) -> None:
        """Kill (if needed) and wait the current process; drop the
        connection. The listener stays bound for the next spawn."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        if self.process is not None:
            if self.process.poll() is None:
                self.process.kill()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                pass
            if self.process.stderr is not None:
                try:
                    self.process.stderr.close()
                except OSError:
                    pass
            self.process = None

    def restart(self) -> None:
        """Replace a dead/undead worker with a fresh one (it re-runs
        the source recipe, re-attaching its shard files)."""
        with self._lock:
            if self._closed:
                raise rpc.RpcTransportError(
                    f"shard {self.shard} handle is closed"
                )
            self._reap()
            self.restarts += 1
            self._spawn()

    def ensure_alive(self) -> None:
        """Respawn a worker already known to be dead (dropped
        connection or exited process) before use. A previous request
        exhausting *its* restart budget must not leave the shard dead
        for every later request — each request faces a live worker and
        its own full budget."""
        with self._lock:
            if self._closed:
                raise rpc.RpcTransportError(
                    f"shard {self.shard} handle is closed"
                )
            if self._conn is not None and self.alive:
                return
            self._reap()
            self.restarts += 1
            self._spawn()

    def call(self, method: str, params: Mapping[str, object],
             timeout: Optional[float]) -> object:
        """One locked RPC round trip.

        Raises :class:`~repro.serving.rpc.RpcTransportError` when the
        transport broke (caller should restart+retry) and
        :class:`~repro.serving.rpc.RpcRemoteError` for application
        errors (caller must *not* retry)."""
        with self._lock:
            if self._closed or self._conn is None:
                raise rpc.RpcTransportError(
                    f"shard {self.shard} has no live worker connection"
                )
            try:
                return self._conn.call(method, params, timeout=timeout)
            except rpc.RpcRemoteError:
                raise
            except rpc.RpcTransportError:
                # the stream is unusable; drop it so a racing caller
                # fails fast instead of reading a half frame
                self._conn.close()
                self._conn = None
                raise

    def close(self, graceful_timeout: float = 2.0) -> None:
        """Shut the worker down (graceful RPC first, then SIGKILL),
        reap it, and release the listener + socket file. Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._conn is not None:
                try:
                    self._conn.call("shutdown", {}, timeout=graceful_timeout)
                except (rpc.RpcTransportError, rpc.RpcRemoteError):
                    pass
            self._reap()
            try:
                self._listener.close()
            except OSError:
                pass
            if self._socket_path is not None:
                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass


@dataclass
class ProcessGatherResult:
    """A merged process-mode scatter/gather execution — the same
    observable surface as thread mode's
    :class:`~repro.engine.sharded.GatherResult`, with per-answer
    payload records standing in for live shard graphs (the graphs live
    in the workers; provenance reaches them over RPC)."""

    #: merged node -> score of the disjoint owned fragments
    scores: Dict[NodeId, float]
    #: node -> payload (entity_set, key, label) shipped by the owner
    payloads: Dict[NodeId, NodePayload]
    #: node -> owning shard index (provenance RPC routing)
    owner_shards: Dict[NodeId, int]
    method: str
    build_stats: BuildStats = field(default_factory=BuildStats)
    graph_cached: bool = False
    score_cached: bool = False
    build_seconds: float = 0.0
    rank_seconds: float = 0.0

    @property
    def nodes(self) -> int:
        return self.build_stats.nodes

    @property
    def edges(self) -> int:
        return self.build_stats.edges


class ProcessShardedEngine:
    """N shard worker processes behind one scatter/gather surface.

    Mirrors :class:`~repro.engine.sharded.ShardedEngine`'s construction
    and surface (``gather`` / ``stats_snapshot`` / ``shard_stats`` /
    ``invalidate`` / ``close``), but each child engine lives in its own
    process, built from ``source`` — the parent's ``router`` is used
    for *routing and ownership bookkeeping only*; shard storage is
    owned by the workers.
    """

    def __init__(
        self,
        router: ShardRouter,
        source: WorkerSource,
        backend: str = "compiled",
        builder: str = "batched",
        cache_scores: bool = True,
        max_cached_scores: int = 1024,
        cache_graphs: bool = True,
        max_cached_graphs: int = 256,
        incremental: bool = True,
        rpc_timeout: float = 30.0,
        worker_restarts: int = 2,
        boot_timeout: float = 60.0,
    ):
        if source.shards != router.shards:
            raise QueryError(
                f"worker source describes {source.shards} shard(s) but the "
                f"router has {router.shards}"
            )
        self.router = router
        self.source = source
        self.builder = builder
        self.rpc_timeout = rpc_timeout
        self.worker_restarts = worker_restarts
        self._closed = False
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._socket_dir = tempfile.mkdtemp(prefix="repro-shards-")
        engine_options = {
            "backend": backend,
            "builder": builder,
            "cache_scores": cache_scores,
            "max_cached_scores": max_cached_scores,
            "cache_graphs": cache_graphs,
            "max_cached_graphs": max_cached_graphs,
            "incremental": incremental,
        }
        self.workers: List[WorkerHandle] = []
        try:
            for shard in range(router.shards):
                self.workers.append(WorkerHandle(
                    shard,
                    source,
                    engine_options,
                    self._socket_dir,
                    boot_timeout=boot_timeout,
                ))
        except Exception:
            self.close()
            raise
        # safety net: a dropped engine must not leak OS processes
        self._finalizer = weakref.finalize(
            self, _finalize_workers, list(self.workers), self._socket_dir
        )

    @property
    def shards(self) -> int:
        return len(self.workers)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------ #
    # supervised RPC
    # ------------------------------------------------------------ #

    def _call_supervised(
        self, handle: WorkerHandle, method: str, params: Mapping[str, object]
    ) -> object:
        """Call with bounded restart-with-retry on transport failures.

        Application errors pass through untouched (they are
        deterministic — a restart cannot change them and must not mask
        them)."""
        failure: Optional[rpc.RpcTransportError] = None
        for attempt in range(self.worker_restarts + 1):
            try:
                if attempt > 0:
                    handle.restart()
                else:
                    # free respawn of a worker a *previous* request
                    # already found dead — not charged to this budget
                    handle.ensure_alive()
            except rpc.RpcTransportError as exc:
                failure = exc
                continue
            try:
                return handle.call(method, params, timeout=self.rpc_timeout)
            except rpc.RpcTransportError as exc:
                failure = exc
        raise QueryError(
            f"shard {handle.shard} failed during scatter/gather after "
            f"{self.worker_restarts} restart(s): {failure}"
        )

    # ------------------------------------------------------------ #
    # scatter/gather execution
    # ------------------------------------------------------------ #

    def gather(
        self,
        query: ExploratoryQuery,
        method: str = "reliability",
        options: Optional[Mapping[str, object]] = None,
        builder: Optional[str] = None,
        max_workers: Optional[int] = None,
        spec_dict: Optional[Mapping[str, object]] = None,
    ) -> ProcessGatherResult:
        """Scatter one spec to its relevant shard workers and merge the
        owned fragments with thread-mode-identical semantics.

        The wire protocol ships the full :class:`~repro.api.QuerySpec`
        dict (``spec_dict``); the ``query``/``method``/``options``
        arguments keep the thread-mode calling convention so the
        session can treat both engines uniformly."""
        self._check_open()
        if spec_dict is None:
            spec_dict = _spec_dict_from_query(query, method, options)
        relevant = self.router.relevant_shards(query)
        workers = len(relevant) if max_workers is None else max(1, max_workers)
        params = {"spec": dict(spec_dict), "builder": builder or self.builder}

        def run(shard: int) -> Tuple[str, object]:
            handle = self.workers[shard]
            try:
                return "result", self._call_supervised(
                    handle, "score_fragment", params
                )
            except rpc.RpcRemoteError as exc:
                return "error", (exc.remote if exc.remote is not None else exc)
            except QueryError as exc:
                return "infra", exc

        if workers > 1 and len(relevant) > 1:
            if workers >= len(relevant):
                outcomes = list(self._scatter_pool().map(run, relevant))
            else:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(run, relevant))
        else:
            outcomes = [run(shard) for shard in relevant]

        return self._merge(relevant, outcomes, str(spec_dict["method"]))

    def _merge(
        self,
        relevant: Sequence[int],
        outcomes: Sequence[Tuple[str, object]],
        method: str,
    ) -> ProcessGatherResult:
        fragments: List[Tuple[int, Dict[str, object]]] = []
        empties: List[Tuple[int, EmptyAnswerError]] = []
        errors: List[Tuple[int, BaseException]] = []
        infra: List[Tuple[int, QueryError]] = []
        build_seconds = 0.0
        rank_seconds = 0.0
        for shard, (tag, payload) in zip(relevant, outcomes):
            if tag == "infra":
                infra.append((shard, payload))  # type: ignore[arg-type]
                continue
            if tag == "error":
                errors.append((shard, payload))  # type: ignore[arg-type]
                continue
            record = payload  # type: ignore[assignment]
            if not isinstance(record, dict):
                infra.append((shard, QueryError(
                    f"shard {shard} failed during scatter/gather: "
                    f"malformed fragment {record!r}"
                )))
                continue
            build_seconds = max(build_seconds, float(record.get("build_seconds", 0.0)))
            rank_seconds = max(rank_seconds, float(record.get("rank_seconds", 0.0)))
            if record.get("status") == "empty":
                empties.append((shard, EmptyAnswerError(
                    str(record.get("message", "empty shard")),
                    kind=str(record.get("kind", "no-answers")),
                )))
            else:
                fragments.append((shard, record))

        if infra:
            # worker infrastructure trouble that bounded restarts did
            # not cure: always a classified partial failure
            raise infra[0][1]
        if errors:
            # identical deterministic failure on every shard is a
            # query-level error: re-raise as the single engine would
            first_shard, first_error = errors[0]
            deterministic = len(errors) == len(relevant) and all(
                type(err) is type(first_error) and str(err) == str(first_error)
                for _, err in errors
            )
            if deterministic:
                raise first_error
            raise QueryError(
                f"shard {first_shard} failed during scatter/gather: "
                f"{first_error}"
            ) from first_error

        merged: Dict[NodeId, float] = {}
        payloads: Dict[NodeId, NodePayload] = {}
        owner_shards: Dict[NodeId, int] = {}
        for shard, record in fragments:
            owned = rpc.decode_fragment_scores(record.get("owned", []))  # type: ignore[arg-type]
            for node, score, label in owned:
                if node in owner_shards:
                    raise RankingError(
                        f"answer {node!r} gathered from two shards; the "
                        f"partitioner is not a partition"
                    )
                merged[node] = score
                owner_shards[node] = shard
                entity_set, key = _split_node(node)
                payloads[node] = NodePayload(
                    entity_set=entity_set, key=key, record=None, label=label
                )
        if not merged:
            if not empties:  # unreachable unless ownership is broken
                raise QueryError("no shard produced answers")
            _, best = max(
                empties, key=lambda item: _EMPTY_PRIORITY[item[1].kind]
            )
            raise best

        populated = [record for _, record in fragments]
        return ProcessGatherResult(
            scores=merged,
            payloads=payloads,
            owner_shards=owner_shards,
            method=method,
            build_stats=aggregate_build_stats([
                rpc.decode_build_stats(record["build_stats"])  # type: ignore[arg-type]
                for record in populated
                if record.get("build_stats") is not None
            ]),
            graph_cached=all(bool(r.get("graph_cached")) for r in populated),
            score_cached=all(bool(r.get("score_cached")) for r in populated),
            build_seconds=build_seconds,
            rank_seconds=rank_seconds,
        )

    # ------------------------------------------------------------ #
    # answer-level provenance (RPC to the owning shard)
    # ------------------------------------------------------------ #

    def explain_answer(
        self, shard: int, spec_dict: Mapping[str, object], node: NodeId,
        top: int = 3,
    ) -> str:
        result = self._call_supervised(self.workers[shard], "explain", {
            "spec": dict(spec_dict), "node": rpc.encode_node(node), "top": top,
        })
        return str(result)

    def provenance(
        self, shard: int, spec_dict: Mapping[str, object], node: NodeId,
        top: int = 3, max_paths: int = 1000,
    ) -> List[Dict[str, object]]:
        result = self._call_supervised(self.workers[shard], "provenance", {
            "spec": dict(spec_dict), "node": rpc.encode_node(node),
            "top": top, "max_paths": max_paths,
        })
        return list(result)  # type: ignore[arg-type]

    # ------------------------------------------------------------ #
    # stats and lifecycle (aggregated over the workers)
    # ------------------------------------------------------------ #

    @property
    def stats(self) -> EngineStats:
        return self.stats_snapshot()

    def stats_snapshot(self) -> EngineStats:
        return EngineStats.aggregate(self.shard_stats())

    def shard_stats(self) -> List[EngineStats]:
        self._check_open()
        stats = []
        for handle in self.workers:
            record = self._call_supervised(handle, "stats", {})
            stats.append(rpc.decode_engine_stats(record["engine"]))  # type: ignore[index]
        return stats

    def describe_workers(self) -> List[Dict[str, object]]:
        """Operator view: per-shard pid / restart count / liveness
        (what the HTTP front door's ``/shard_stats`` reports)."""
        return [
            {
                "shard": handle.shard,
                "pid": handle.pid,
                "alive": handle.alive,
                "restarts": handle.restarts,
            }
            for handle in self.workers
        ]

    def reset_stats(self) -> None:
        self._check_open()
        for handle in self.workers:
            self._call_supervised(handle, "reset_stats", {})

    def invalidate(self) -> None:
        self._check_open()
        for handle in self.workers:
            self._call_supervised(handle, "repair", {"reload": False})

    def repair(self, reload: bool = True) -> None:
        """Ask every worker to drop caches and (by default) re-resolve
        its source recipe — the operator path after refreshing the
        shard files on disk."""
        self._check_open()
        for handle in self.workers:
            self._call_supervised(handle, "repair", {"reload": reload})

    def ping(self) -> List[Dict[str, object]]:
        self._check_open()
        return [
            dict(self._call_supervised(handle, "ping", {}))  # type: ignore[call-overload]
            for handle in self.workers
        ]

    def close(self) -> None:
        """Reap every worker (graceful shutdown RPC, then SIGKILL),
        release sockets and the socket directory. Idempotent."""
        if self._closed:
            return
        self._closed = True
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        for handle in self.workers:
            handle.close()
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        try:
            os.rmdir(self._socket_dir)
        except OSError:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise RankingError("this process-sharded engine is closed")

    def _scatter_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(1, self.shards),
                    thread_name_prefix="shard-rpc",
                )
            return self._pool

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<ProcessShardedEngine {state} shards={self.shards} "
            f"source={self.source.factory!r}>"
        )


def _finalize_workers(handles: List[WorkerHandle], socket_dir: str) -> None:
    """Last-resort cleanup when an engine is garbage-collected without
    ``close()`` — OS processes must never outlive their supervisor."""
    for handle in handles:
        try:
            handle.close(graceful_timeout=0.5)
        except Exception:
            pass
    try:
        os.rmdir(socket_dir)
    except OSError:
        pass


def _split_node(node: NodeId) -> Tuple[str, Hashable]:
    """Node ids are ``(entity_set, key)`` tuples everywhere the
    integration layer builds them; tolerate anything else by echoing
    the node as its own key."""
    if isinstance(node, tuple) and len(node) == 2 and isinstance(node[0], str):
        return node[0], node[1]
    return ("", node)


def _spec_dict_from_query(
    query: ExploratoryQuery,
    method: str,
    options: Optional[Mapping[str, object]],
) -> Dict[str, object]:
    """A best-effort spec dict for callers that come through the
    thread-mode calling convention without a ``QuerySpec`` (tests,
    direct engine use). The session always passes ``spec_dict``."""
    spec: Dict[str, object] = {
        "entity_set": query.entity_set,
        "attribute": query.attribute,
        "value": query.value,
        "outputs": list(query.outputs),
        "method": method,
    }
    options = dict(options or {})
    rng = options.pop("rng", None)
    if isinstance(rng, int):
        spec["seed"] = rng
    clean = {
        key: value
        for key, value in options.items()
        if key in ("strategy", "trials", "reduce", "iterations",
                   "tolerance", "max_iterations")
    }
    if clean:
        spec["options"] = clean
    return spec
