"""The portable recipe a worker process follows to rebuild its shard.

A mediator is an in-process object graph over live storage handles —
it cannot cross a process boundary. What *can* cross is the recipe
that built it: a ``module:callable`` factory plus JSON-serialisable
kwargs. :class:`WorkerSource` carries exactly that, and the worker
resolves it on bootstrap:

* a factory returning a :class:`~repro.workloads.mediated.MediatedWorkload`
  (e.g. :func:`repro.workloads.mediated.mediated_layers`) contributes
  its pre-wired router — persisted shard files
  (``layer<i>.shard<s>.sqlite``, vectorized manifests) re-attach, and
  memory-backed layers regenerate byte-identically from the recipe's
  integer rng seed;
* a factory returning a :class:`~repro.engine.sharded.ShardRouter` is
  used as-is;
* a factory returning a :class:`~repro.integration.mediator.Mediator`
  is partitioned in the worker via :meth:`ShardRouter.partition` — the
  BLAKE2 hash partitioner is deterministic across processes, so every
  worker derives the *same* ownership the parent did.

Determinism is the contract: every resolution of the same source must
produce the same bytes, or process-mode results could diverge from
thread mode. That is why ``mediated_layers`` recipes require an
explicit integer ``rng``.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.engine.sharded import PARTITIONERS, ShardRouter
from repro.errors import QueryError
from repro.integration.mediator import Mediator

__all__ = ["WorkerSource"]


@dataclass(frozen=True)
class WorkerSource:
    """How a worker process rebuilds the shard layout.

    ``factory`` is a ``"module:attr"`` reference; ``kwargs`` must be
    JSON-serialisable (they ride in the worker's bootstrap spec).
    ``shards`` pins the expected shard count — a factory resolving to a
    different layout is a bootstrap error, not a silent re-partition.
    ``partitioner`` applies only when the factory returns a bare
    mediator that the worker partitions itself.
    """

    factory: str
    kwargs: Mapping[str, object] = field(default_factory=dict)
    shards: int = 1
    partitioner: str = "hash"

    def __post_init__(self) -> None:
        if not isinstance(self.factory, str) or ":" not in self.factory:
            raise QueryError(
                f"worker source factory must be a 'module:attr' reference, "
                f"got {self.factory!r}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise QueryError(
                f"worker source shards must be a positive integer, got "
                f"{self.shards!r}"
            )
        if self.partitioner not in PARTITIONERS:
            raise QueryError(
                f"unknown partitioner {self.partitioner!r}; choose from "
                f"{list(PARTITIONERS)}"
            )
        object.__setattr__(self, "kwargs", dict(self.kwargs))

    # ------------------------------------------------------------ #
    # wire form
    # ------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "factory": self.factory,
            "kwargs": dict(self.kwargs),
            "shards": self.shards,
            "partitioner": self.partitioner,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkerSource":
        known = {"factory", "kwargs", "shards", "partitioner"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise QueryError(
                f"unknown WorkerSource field(s) {unknown}; known: {sorted(known)}"
            )
        return cls(
            factory=str(data["factory"]),
            kwargs=dict(data.get("kwargs", {})),  # type: ignore[arg-type]
            shards=int(data.get("shards", 1)),  # type: ignore[arg-type]
            partitioner=str(data.get("partitioner", "hash")),
        )

    # ------------------------------------------------------------ #
    # resolution (runs inside the worker process)
    # ------------------------------------------------------------ #

    def resolve(self) -> Tuple[ShardRouter, Optional[Callable[[], None]]]:
        """Build the shard router this recipe describes, plus an
        optional cleanup callable releasing storage handles."""
        module_name, _, attr = self.factory.partition(":")
        try:
            module = importlib.import_module(module_name)
        except ImportError as exc:
            raise QueryError(
                f"cannot import worker source module {module_name!r}: {exc}"
            ) from exc
        try:
            factory = getattr(module, attr)
        except AttributeError:
            raise QueryError(
                f"module {module_name!r} has no attribute {attr!r}"
            ) from None
        if not callable(factory):
            raise QueryError(f"worker source {self.factory!r} is not callable")
        produced = factory(**dict(self.kwargs))
        return self._coerce(produced)

    def _coerce(self, produced: object) -> Tuple[ShardRouter, Optional[Callable[[], None]]]:
        if isinstance(produced, ShardRouter):
            router: ShardRouter = produced
            cleanup: Optional[Callable[[], None]] = None
        elif isinstance(produced, Mediator):
            router = ShardRouter.partition(produced, self.shards, self.partitioner)
            cleanup = None
        else:
            # workload-shaped objects: a pre-wired router + a close();
            # an unsharded workload falls back to partition *views* of
            # its full mediator (the BLAKE2 partitioner derives the
            # same ownership in every process)
            inner = getattr(produced, "router", None)
            mediator = getattr(produced, "mediator", None)
            if isinstance(inner, ShardRouter):
                router = inner
            elif isinstance(mediator, Mediator):
                router = ShardRouter.partition(
                    mediator, self.shards, self.partitioner
                )
            else:
                raise QueryError(
                    f"worker source {self.factory!r} produced "
                    f"{type(produced).__name__}, which carries no shard "
                    f"router; return a MediatedWorkload generated with "
                    f"shards=N, a ShardRouter, or a Mediator"
                )
            close = getattr(produced, "close", None)
            cleanup = close if callable(close) else None
        if router.shards != self.shards:
            raise QueryError(
                f"worker source resolved to {router.shards} shard(s) but "
                f"the deployment expects {self.shards}; the recipe and the "
                f"session disagree"
            )
        return router, cleanup
