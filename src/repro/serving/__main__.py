"""``python -m repro.serving`` — boot the HTTP front door.

Generates (or re-attaches, with ``--storage-path``) a
:func:`~repro.workloads.mediated.mediated_layers` workload, opens a
session over it in the requested shard mode, and serves the endpoints
of :mod:`repro.serving.server` until SIGINT/SIGTERM.

The first stdout line is a single JSON object announcing the bound
address — ``{"url", "host", "port", "pid", "shards", "shard_mode"}`` —
so a supervising script (CI's serving smoke, an operator wrapper) can
bind ``--port 0`` and still find the server.

Example::

    python -m repro.serving --layers 3 --width 40 --rng 7 \\
        --shards 2 --shard-mode process --port 8080
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from typing import List, Optional

from repro.api import EngineConfig
from repro.serving.server import ServingServer
from repro.workloads.mediated import mediated_layers

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="serve a generated mediated_layers workload over HTTP",
    )
    server = parser.add_argument_group("server")
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument("--port", type=int, default=0,
                        help="0 binds an ephemeral port (announced on stdout)")
    server.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    sharding = parser.add_argument_group("sharding")
    sharding.add_argument("--shards", type=int, default=1)
    sharding.add_argument("--shard-mode", choices=("thread", "process"),
                          default="thread")
    sharding.add_argument("--rpc-timeout", type=float, default=30.0)
    sharding.add_argument("--worker-restarts", type=int, default=2)
    workload = parser.add_argument_group("workload (mediated_layers)")
    workload.add_argument("--layers", type=int, default=3)
    workload.add_argument("--width", type=int, default=40)
    workload.add_argument("--fan-out", type=int, default=3)
    workload.add_argument("--seeds", type=int, default=1)
    workload.add_argument("--rng", type=int, default=7,
                          help="integer seed (required for process mode)")
    workload.add_argument("--dangling-rate", type=float, default=0.0)
    workload.add_argument("--storage", default="memory",
                          choices=("memory", "sqlite", "columnar", "vectorized"))
    workload.add_argument("--storage-path", default=None,
                          help="persist/re-attach layer files under this directory")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    workload = mediated_layers(
        layers=args.layers,
        width=args.width,
        fan_out=args.fan_out,
        seeds=args.seeds,
        rng=args.rng,
        dangling_rate=args.dangling_rate,
        storage=args.storage,
        storage_path=args.storage_path,
        shards=args.shards,
    )
    config = EngineConfig(
        storage=args.storage,
        storage_path=args.storage_path,
        shards=args.shards,
        shard_mode=args.shard_mode,
        rpc_timeout=args.rpc_timeout,
        worker_restarts=args.worker_restarts,
    )
    session = workload.open_session(config=config)
    server = ServingServer(
        session, host=args.host, port=args.port, verbose=args.verbose
    )
    print(json.dumps({
        "url": server.url,
        "host": server.host,
        "port": server.port,
        "pid": os.getpid(),
        "shards": args.shards,
        "shard_mode": args.shard_mode,
    }), flush=True)

    def _stop(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        workload.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
