"""Result sets gathered from worker *processes*.

:class:`ProcessShardedResultSet` is the process-mode sibling of
:class:`~repro.api.result.ShardedResultSet`: scores, ordering, rank
intervals, tie groups, pagination and export are plain
:class:`~repro.api.result.ResultSet` behaviour over the merged score
dict (bit-identical to thread mode and to a single engine by
construction), while provenance and explanations dispatch over RPC to
the worker that *owns* each answer — the sink-partitioning rule
guarantees the owning shard holds the answer's complete ancestor
subgraph, so the worker enumerates exactly the evidence paths an
unsharded engine would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping

if TYPE_CHECKING:
    from repro.api.spec import QuerySpec
    from repro.serving.engine import ProcessGatherResult, ProcessShardedEngine

from repro.api.result import RankedEntity, ResultSet
from repro.core.graph import QueryGraph
from repro.core.paths import EvidencePath
from repro.core.ranker import RankedResult
from repro.errors import GraphError
from repro.serving import rpc

__all__ = ["ProcessShardedResultSet"]

NodeId = Hashable


class _RemotePayloads:
    """Node-payload access over the shipped ``[node, score, label]``
    fragments (quacks like ``ProbabilisticEntityGraph.data`` for the
    entity-record construction of the base class)."""

    def __init__(self, payloads: Mapping[NodeId, object]) -> None:
        self._payloads = dict(payloads)

    def data(self, node: NodeId) -> object:
        return self._payloads[node]


class _RemoteGraph:
    """The minimal ``QueryGraph``-shaped object behind a gathered
    process-mode result: answers plus shipped payloads. The real graphs
    live in the worker processes."""

    def __init__(self, payloads: Mapping[NodeId, object], source: NodeId) -> None:
        self.graph = _RemotePayloads(payloads)
        self.source = source
        self.targets = list(payloads.keys())


class ProcessShardedResultSet(ResultSet):
    """A :class:`~repro.api.result.ResultSet` gathered from worker
    processes.

    The per-answer entity payloads (entity set, key, label) were
    shipped inside the score fragments, so ranked access needs no
    remote round trips; :meth:`provenance` and :meth:`explain` are the
    only methods that talk to the workers.
    """

    def __init__(
        self,
        gathered: "ProcessGatherResult",
        engine: "ProcessShardedEngine",
        spec: "QuerySpec",
    ) -> None:
        self._gathered = gathered
        self._engine = engine
        self._spec_dict = spec.to_dict()
        ranked = RankedResult(method=gathered.method, scores=dict(gathered.scores))
        source = ("__query__", (spec.entity_set, spec.attribute, spec.value))
        super().__init__(ranked, _RemoteGraph(gathered.payloads, source), spec=spec)

    @property
    def graph(self) -> QueryGraph:
        """Not available — the query graphs live in the worker
        processes; :meth:`provenance`/:meth:`explain` dispatch to them
        over RPC automatically."""
        raise GraphError(
            "a process-sharded result set has no local materialised "
            "graph; the shard graphs live in the worker processes — "
            "use .provenance()/.explain(), which dispatch to the owning "
            "worker automatically"
        )

    @property
    def owner_shards(self) -> Dict[NodeId, int]:
        """Answer node -> shard index that owns (and can explain) it."""
        return dict(self._gathered.owner_shards)

    def _owner(self, node: NodeId) -> int:
        if isinstance(node, RankedEntity):
            node = node.node
        try:
            return self._gathered.owner_shards[node]
        except KeyError:
            raise GraphError(f"{node!r} is not in this result set") from None

    def provenance(
        self, node: NodeId, top: int = 3, max_paths: int = 1000
    ) -> List[EvidencePath]:
        shard = self._owner(node)
        if isinstance(node, RankedEntity):
            node = node.node
        records = self._engine.provenance(
            shard, self._spec_dict, node, top=top, max_paths=max_paths
        )
        return [
            EvidencePath(
                nodes=tuple(rpc.decode_node(item) for item in record["nodes"]),
                probability=float(record["probability"]),  # type: ignore[arg-type]
            )
            for record in records
        ]

    def explain(self, node: NodeId, top: int = 3) -> str:
        shard = self._owner(node)
        if isinstance(node, RankedEntity):
            node = node.node
        return self._engine.explain_answer(shard, self._spec_dict, node, top=top)
