"""A thin HTTP front door over :class:`~repro.api.Session`.

Stdlib-only (``http.server`` with a threading mixin), JSON in / JSON
out, no framework. The server owns nothing — it translates HTTP to
session calls and session results/errors to status codes, so every
semantic guarantee (bit-identical sharded scores, thread/process
equivalence, error classification) is the session's, not the server's.

Endpoints:

===================  ======  ===============================================
``/execute``         POST    one spec dict -> ``ResultSet.to_dict()``
``/execute_many``    POST    ``{"specs": [...]}`` -> per-spec results, with
                             per-spec error records in place
``/explain``         POST    one spec dict -> ``Explanation.as_dict()``
``/stats``           GET     aggregated engine counters
``/shard_stats``     GET     per-shard counters + worker pids/restarts
``/health``          GET     liveness + mode + shard count
===================  ======  ===============================================

Library errors map to ``400`` (the request was understood and is
deterministically unanswerable), transport-and-infrastructure errors to
``502``, unknown routes to ``404``, malformed JSON to ``400``, a body
larger than the configured cap to ``413``, and anything unexpected to
``500`` — always with a JSON body carrying
``{"error": {"type", "message"}}``. When the session's admission gate
(``EngineConfig.max_queue_depth``) sheds a request, the server answers
``503`` with a ``Retry-After`` header. Connections that go quiet are
dropped after ``request_timeout`` seconds so a stalled client cannot
pin a handler thread.

Run it from the command line via ``python -m repro.serving`` (see
:mod:`repro.serving.__main__`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.session import Session
from repro.errors import EmptyAnswerError, OverloadedError, QueryError, ReproError
from repro.serving.rpc import RpcTransportError

__all__ = ["ServingServer", "serve"]

_MAX_BODY = 16 * 1024 * 1024
_REQUEST_TIMEOUT = 30.0


def _error_body(exc: BaseException) -> Dict[str, object]:
    record: Dict[str, object] = {
        "type": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, EmptyAnswerError):
        record["kind"] = exc.kind
    return {"error": record}


def _status_for(exc: ReproError) -> int:
    # a shed request is the server's state, not the query's fault:
    # retryable, hence 503 (the handler adds Retry-After)
    if isinstance(exc, OverloadedError):
        return 503
    # a broken worker transport (despite bounded restarts) is upstream
    # infrastructure trouble; everything else ReproError-shaped is a
    # deterministic property of the query
    if isinstance(exc, RpcTransportError):
        return 502
    if isinstance(exc, QueryError) and "failed during scatter/gather" in str(exc):
        return 502
    return 400


class _Handler(BaseHTTPRequestHandler):
    """One request; the session lives on ``self.server``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serving"

    def setup(self) -> None:
        # self.timeout becomes the socket timeout in the base setup();
        # handle_one_request treats a timed-out read as a dropped
        # connection, so a stalled client cannot pin a handler thread
        self.timeout = getattr(self.server, "request_timeout", _REQUEST_TIMEOUT)
        super().setup()

    # ------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------ #

    def log_message(self, format: str, *args: object) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _session(self) -> Session:
        return self.server.session  # type: ignore[attr-defined]

    def _reply(
        self,
        status: int,
        payload: Mapping[str, object],
        headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY:
            # 413, and close: the client would otherwise stream the
            # oversized body into a connection we will not read
            self.close_connection = True
            self._reply(413, _error_body(QueryError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY}-byte cap"
            )))
            return None
        if length <= 0:
            self._reply(400, _error_body(QueryError(
                f"request body must be 1..{_MAX_BODY} bytes of JSON, "
                f"got Content-Length {length}"
            )))
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._reply(400, _error_body(QueryError(f"malformed JSON body: {exc}")))
            return None
        if not isinstance(payload, dict):
            self._reply(400, _error_body(QueryError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )))
            return None
        return payload

    # ------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if route == "/health":
                self._reply(200, self._health())
            elif route == "/stats":
                self._reply(200, {"engine": self._session().stats_snapshot().as_dict()})
            elif route == "/shard_stats":
                self._reply(200, self._shard_stats())
            else:
                self._reply(404, _error_body(QueryError(f"no route {route!r}")))
        except ReproError as exc:
            self._reply(_status_for(exc), _error_body(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, _error_body(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        handlers = {
            "/execute": self._execute,
            "/execute_many": self._execute_many,
            "/explain": self._explain,
        }
        handler = handlers.get(route)
        if handler is None:
            self._reply(404, _error_body(QueryError(f"no route {route!r}")))
            return
        payload = self._read_json()
        if payload is None:
            return
        try:
            gate = self._session().admission
            if gate is None:
                status, reply = handler(payload)
            else:
                # may shed with OverloadedError -> 503 + Retry-After
                with gate:
                    status, reply = handler(payload)
            self._reply(status, reply)
        except ReproError as exc:
            headers: Optional[Dict[str, str]] = None
            if isinstance(exc, OverloadedError):
                # Retry-After takes integer seconds; round up so the
                # hint never undershoots the configured backoff
                headers = {"Retry-After": str(max(1, -int(-exc.retry_after // 1)))}
            self._reply(_status_for(exc), _error_body(exc), headers)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(500, _error_body(exc))

    # ------------------------------------------------------------ #
    # endpoint bodies
    # ------------------------------------------------------------ #

    def _execute(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        limit = payload.pop("limit", None)
        results = self._session().execute(payload)
        return 200, results.to_dict(
            limit if isinstance(limit, int) else None
        )

    def _execute_many(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        specs = payload.get("specs")
        if not isinstance(specs, list):
            raise QueryError('execute_many body must carry a "specs" list')
        limit = payload.get("limit")
        outcomes = self._session().execute_many(specs, return_errors=True)
        records: List[Dict[str, object]] = []
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                records.append(_error_body(outcome))
            else:
                records.append(outcome.to_dict(
                    limit if isinstance(limit, int) else None
                ))
        return 200, {"results": records, "count": len(records)}

    def _explain(self, payload: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        explanation = self._session().explain(payload)
        return 200, explanation.as_dict()

    def _health(self) -> Dict[str, object]:
        session = self._session()
        record: Dict[str, object] = {
            "status": "closed" if session.closed else "ok",
            "sharded": session.sharded,
            "shard_mode": session.config.shard_mode,
            "shards": session.config.shards,
        }
        engine = getattr(session, "process_engine", None)
        if engine is not None:
            workers = engine.describe_workers()
            record["shards"] = len(workers)
            record["workers_alive"] = sum(1 for w in workers if w["alive"])
        return record

    def _shard_stats(self) -> Dict[str, object]:
        session = self._session()
        stats = [snapshot.as_dict() for snapshot in session.shard_stats()]
        record: Dict[str, object] = {"shards": stats}
        engine = getattr(session, "process_engine", None)
        if engine is not None:
            record["workers"] = engine.describe_workers()
        return record


class ServingServer:
    """The HTTP front door: one :class:`~repro.api.Session`, one
    threading HTTP server, explicit lifecycle.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction. :meth:`serve_forever` blocks (the CLI path);
    :meth:`start` runs the accept loop on a daemon thread (tests,
    embedding). Closing stops the loop and, when ``own_session`` is
    set, closes the session — reaping worker processes with it.
    """

    def __init__(
        self,
        session: Session,
        host: str = "127.0.0.1",
        port: int = 0,
        own_session: bool = True,
        verbose: bool = False,
        request_timeout: float = _REQUEST_TIMEOUT,
    ) -> None:
        self.session = session
        self.own_session = own_session
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.session = session  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.request_timeout = request_timeout  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServingServer":
        """Serve on a background daemon thread (returns immediately)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serving",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or
        ``shutdown()`` from a signal handler)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop accepting, join the loop thread, release the socket,
        and (when owned) close the session. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()
        if self.own_session:
            self.session.close()

    def __enter__(self) -> "ServingServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    own_session: bool = True,
    verbose: bool = False,
    request_timeout: float = _REQUEST_TIMEOUT,
) -> ServingServer:
    """Start a :class:`ServingServer` over ``session`` on a background
    thread and return it (use as a context manager to guarantee
    shutdown)."""
    return ServingServer(
        session, host=host, port=port, own_session=own_session,
        verbose=verbose, request_timeout=request_timeout,
    ).start()
