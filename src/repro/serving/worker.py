"""The shard worker process: one shard's engine behind JSON-RPC.

``python -m repro.serving.worker '<bootstrap-json>'`` is spawned by
:class:`~repro.serving.engine.ProcessShardedEngine` (one process per
shard). The worker:

1. connects back to the supervisor's per-shard socket;
2. resolves its :class:`~repro.serving.source.WorkerSource` — thereby
   *owning* its shard's storage (``layer<i>.shard<s>.sqlite`` files
   re-attach, vectorized manifests mmap, memory workloads regenerate
   from the recipe's seed) — and builds a
   :class:`~repro.engine.ranking.RankingEngine` over its shard's
   mediator;
3. sends the ``hello`` notification (the supervisor's readiness
   barrier, carrying the spawn token and protocol version);
4. serves newline-delimited JSON-RPC requests one at a time until EOF
   or a ``shutdown`` request.

RPCs: ``score_fragment`` (execute + rank + ownership-filter one spec),
``explain`` / ``provenance`` (answer-level evidence from the owning
shard's graph), ``stats`` / ``reset_stats``, ``repair`` (drop caches,
optionally rebuild the mediator from the source recipe — how an
operator re-attaches refreshed shard files without a restart),
``ping``, ``shutdown``, and the test-only ``inject_fault``.

Failure classification starts here: an empty shard answers a regular
``{"status": "empty", kind, message}`` result (its partition simply
holds no answers), while library errors travel as JSON-RPC error
objects carrying ``{type, message}`` so the supervisor can re-raise
deterministic query errors exactly as thread mode would.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import time
from typing import Callable, Dict, Mapping, Optional

from repro.api.spec import QuerySpec
from repro.core.paths import enumerate_paths, explain_answer
from repro.engine.ranking import RankingEngine
from repro.engine.sharded import ShardRouter
from repro.errors import EmptyAnswerError, QueryError, ReproError
from repro.serving import rpc
from repro.serving.source import WorkerSource

__all__ = ["ShardWorker", "main"]

#: engine-construction knobs the bootstrap spec may carry
_ENGINE_FIELDS = (
    "backend",
    "builder",
    "cache_scores",
    "max_cached_scores",
    "cache_graphs",
    "max_cached_graphs",
    "incremental",
)


class ShardWorker:
    """One shard's serving state inside a worker process."""

    def __init__(
        self,
        shard: int,
        source: WorkerSource,
        engine_options: Optional[Mapping[str, object]] = None,
    ):
        self.shard = shard
        self.source = source
        self._engine_options = {
            key: value
            for key, value in dict(engine_options or {}).items()
            if key in _ENGINE_FIELDS
        }
        self._builder = self._engine_options.get("builder", "batched")
        self._cleanup: Optional[Callable[[], None]] = None
        self.router: Optional[ShardRouter] = None
        self.engine: Optional[RankingEngine] = None
        #: test-only fault injection state (see ``inject_fault``)
        self._fault: Optional[Dict[str, object]] = None
        self._queries_served = 0
        self._rebuild()

    def _rebuild(self) -> None:
        """(Re)resolve the source recipe: re-attach this shard's files
        and build a fresh engine over the shard mediator."""
        if self._cleanup is not None:
            try:
                self._cleanup()
            except Exception:
                pass
        router, cleanup = self.source.resolve()
        if not 0 <= self.shard < router.shards:
            raise QueryError(
                f"shard index {self.shard} out of range for "
                f"{router.shards} shard(s)"
            )
        self.router = router
        self._cleanup = cleanup
        builder_kwargs = dict(self._engine_options)
        builder_kwargs.pop("builder", None)
        self.engine = RankingEngine(
            mediator=router.mediators[self.shard], **builder_kwargs
        )

    def close(self) -> None:
        if self.engine is not None:
            self.engine.invalidate()
        if self._cleanup is not None:
            try:
                self._cleanup()
            except Exception:
                pass
            self._cleanup = None

    # ------------------------------------------------------------ #
    # RPC methods
    # ------------------------------------------------------------ #

    def score_fragment(self, params: Mapping[str, object]) -> Dict[str, object]:
        """Execute + rank one spec on this shard, returning the owned
        score fragment (or the structured empty-shard record)."""
        spec = QuerySpec.from_dict(params["spec"])  # type: ignore[arg-type]
        builder = params.get("builder") or self._builder
        options = spec.options.to_kwargs(spec.method, spec.seed)
        assert self.engine is not None and self.router is not None
        started = time.perf_counter()
        try:
            qg, build_stats, graph_cached = self.engine.execute_with_stats(
                spec.to_exploratory(), builder=builder
            )
        except EmptyAnswerError as exc:
            return {
                "status": "empty",
                "kind": exc.kind,
                "message": str(exc),
                "build_seconds": time.perf_counter() - started,
            }
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        ranked, score_cached = self.engine.rank_with_stats(
            qg, spec.method, **options
        )
        rank_seconds = time.perf_counter() - started
        owner = self.router.owner
        graph = qg.graph
        owned = []
        for node in qg.targets:
            payload = graph.data(node)
            if owner(payload.entity_set, payload.key) == self.shard:
                owned.append((node, ranked.scores[node], str(payload.label)))
        self._queries_served += 1
        return {
            "status": "ok",
            "owned": rpc.encode_fragment_scores(owned),
            "build_stats": rpc.encode_build_stats(build_stats),
            "graph_cached": bool(graph_cached),
            "score_cached": bool(score_cached),
            "build_seconds": build_seconds,
            "rank_seconds": rank_seconds,
        }

    def _graph_for(self, params: Mapping[str, object]):
        spec = QuerySpec.from_dict(params["spec"])  # type: ignore[arg-type]
        assert self.engine is not None
        return self.engine.execute(
            spec.to_exploratory(),
            builder=params.get("builder") or self._builder,
        )

    def explain(self, params: Mapping[str, object]) -> str:
        """Human-readable provenance of one owned answer (identical to
        the thread-mode string — same shard graph, same renderer)."""
        qg = self._graph_for(params)
        node = rpc.decode_node(params["node"])
        return explain_answer(qg, node, top=int(params.get("top", 3)))

    def provenance(self, params: Mapping[str, object]) -> list:
        qg = self._graph_for(params)
        node = rpc.decode_node(params["node"])
        paths = enumerate_paths(
            qg, node, max_paths=int(params.get("max_paths", 1000))
        )[: int(params.get("top", 3))]
        return [
            {
                "nodes": [rpc.encode_node(n) for n in path.nodes],
                "probability": path.probability,
            }
            for path in paths
        ]

    def stats(self) -> Dict[str, object]:
        assert self.engine is not None
        return {
            "shard": self.shard,
            "pid": os.getpid(),
            "queries_served": self._queries_served,
            "engine": rpc.encode_engine_stats(self.engine.stats_snapshot()),
        }

    def reset_stats(self) -> Dict[str, object]:
        assert self.engine is not None
        self.engine.reset_stats()
        return {"ok": True}

    def repair(self, params: Mapping[str, object]) -> Dict[str, object]:
        """Drop the engine caches; with ``reload=true``, additionally
        re-resolve the source recipe so refreshed shard files are
        re-attached without a process restart."""
        started = time.perf_counter()
        if params.get("reload"):
            self._rebuild()
        else:
            assert self.engine is not None
            self.engine.invalidate()
        return {
            "ok": True,
            "reloaded": bool(params.get("reload")),
            "seconds": time.perf_counter() - started,
        }

    def inject_fault(self, params: Mapping[str, object]) -> Dict[str, object]:
        """Arm a test-only fault on the next ``score_fragment``:
        ``crash`` (die like SIGKILL, mid-request), ``hang`` (sleep past
        the supervisor's RPC timeout), ``garbage`` (answer with a line
        that is not JSON)."""
        mode = params.get("mode", "none")
        if mode not in ("none", "crash", "hang", "garbage"):
            raise QueryError(f"unknown fault mode {mode!r}")
        if mode == "none":
            self._fault = None
        else:
            self._fault = {
                "mode": mode,
                "remaining": int(params.get("calls", 1)),
                "seconds": float(params.get("seconds", 3600.0)),
            }
        return {"armed": mode}

    def take_fault(self) -> Optional[Dict[str, object]]:
        """Consume one armed fault application (serve-loop hook)."""
        fault = self._fault
        if fault is None:
            return None
        fault["remaining"] = int(fault["remaining"]) - 1
        if int(fault["remaining"]) <= 0:
            self._fault = None
        return fault


# ------------------------------------------------------------------ #
# serve loop
# ------------------------------------------------------------------ #


def _connect(address: Mapping[str, object]) -> socket.socket:
    family = address.get("family")
    if family == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(str(address["path"]))
        return sock
    if family == "tcp":
        return socket.create_connection(
            (str(address["host"]), int(address["port"]))  # type: ignore[arg-type]
        )
    raise QueryError(f"unknown socket family {family!r}")


def serve(worker: ShardWorker, conn: rpc.RpcConnection) -> None:
    """Answer requests until EOF or ``shutdown``."""
    while True:
        try:
            message = conn.receive(timeout=None)
        except rpc.RpcTransportError:
            return  # supervisor went away (or is restarting us)
        request_id = message.get("id")
        method = message.get("method")
        params = message.get("params") or {}
        if not isinstance(method, str) or not isinstance(params, dict):
            conn.send(rpc.error_response(
                request_id, rpc.RPC_INVALID_REQUEST, "malformed request"
            ))
            continue

        if method == "score_fragment":
            fault = worker.take_fault()
            if fault is not None:
                if fault["mode"] == "crash":
                    # die the way SIGKILL would: no cleanup, no reply
                    os._exit(137)
                elif fault["mode"] == "hang":
                    time.sleep(float(fault["seconds"]))
                elif fault["mode"] == "garbage":
                    conn.send_raw(b"%% this is not JSON-RPC %%\n")
                    continue

        if method == "shutdown":
            conn.send(rpc.response(request_id, {"ok": True}))
            return

        try:
            result = _dispatch(worker, method, params)
        except ReproError as exc:
            conn.send(rpc.error_response(
                request_id, rpc.RPC_APPLICATION_ERROR, str(exc),
                data=rpc.encode_exception(exc),
            ))
            continue
        except Exception as exc:  # noqa: BLE001 — the boundary must not die
            conn.send(rpc.error_response(
                request_id, rpc.RPC_APPLICATION_ERROR,
                f"{type(exc).__name__}: {exc}",
                data=rpc.encode_exception(exc),
            ))
            continue
        conn.send(rpc.response(request_id, result))


def _dispatch(worker: ShardWorker, method: str, params: Dict[str, object]) -> object:
    if method == "ping":
        return {"pong": True, "shard": worker.shard, "pid": os.getpid()}
    if method == "score_fragment":
        return worker.score_fragment(params)
    if method == "explain":
        return worker.explain(params)
    if method == "provenance":
        return worker.provenance(params)
    if method == "stats":
        return worker.stats()
    if method == "reset_stats":
        return worker.reset_stats()
    if method == "repair":
        return worker.repair(params)
    if method == "inject_fault":
        return worker.inject_fault(params)
    raise QueryError(f"unknown RPC method {method!r}")


def main(argv) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.serving.worker '<bootstrap-json>'",
              file=sys.stderr)
        return 2
    try:
        boot = json.loads(argv[0])
    except json.JSONDecodeError as exc:
        print(f"bad bootstrap spec: {exc}", file=sys.stderr)
        return 2

    sock = _connect(boot["address"])
    conn = rpc.RpcConnection(sock)
    try:
        worker = ShardWorker(
            shard=int(boot["shard"]),
            source=WorkerSource.from_dict(boot["source"]),
            engine_options=boot.get("engine"),
        )
    except Exception as exc:  # surface bootstrap failures to the parent
        conn.send(rpc.notification("fatal", {
            "shard": boot.get("shard"),
            "error": f"{type(exc).__name__}: {exc}",
        }))
        conn.close()
        return 1
    conn.send(rpc.notification("hello", {
        "shard": worker.shard,
        "pid": os.getpid(),
        "token": boot.get("token"),
        "protocol": rpc.RPC_PROTOCOL_VERSION,
    }))
    try:
        serve(worker, conn)
    finally:
        worker.close()
        conn.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
