"""Process-parallel shard serving behind a JSON-RPC front door.

The sharded engine of :mod:`repro.engine.sharded` scatters on a thread
pool inside one process — a crashed or GIL-bound shard takes the whole
session down. This package promotes shards to worker *processes*:

* :mod:`repro.serving.rpc` — the newline-delimited JSON-RPC 2.0 codec
  plus the payload codecs (nodes, fragments, stats, exceptions) the
  scatter/gather protocol serialises;
* :mod:`repro.serving.source` — :class:`WorkerSource`, the portable
  recipe a worker process follows to rebuild its shard mediator
  (a ``module:callable`` factory plus JSON kwargs — persisted shard
  files re-attach, memory workloads regenerate from the same seed);
* :mod:`repro.serving.worker` — the :class:`ShardWorker` process
  entrypoint (``python -m repro.serving.worker``) that owns its
  ``layer<i>.shard<s>.sqlite`` (or vectorized-manifest) files and
  answers ``score_fragment`` / ``repair`` / ``stats`` / ``ping`` RPCs
  over a local socket;
* :mod:`repro.serving.engine` — :class:`ProcessShardedEngine`, the
  drop-in beside :class:`~repro.engine.sharded.ShardedEngine` selected
  via ``EngineConfig(shard_mode="process")``: spawns and supervises the
  workers, scatters every query over RPC, merges the disjoint owned
  fragments with the exact thread-mode semantics, and survives worker
  death with bounded retry-with-restart;
* :mod:`repro.serving.server` — the thin HTTP front door over
  :class:`~repro.api.Session` (execute / execute_many / explain /
  stats / health / shard_stats), runnable as ``python -m
  repro.serving``.

See ``docs/serving.md`` for the wire protocol, the supervision/retry
policy and the failure classification table.
"""

from repro.serving.engine import ProcessShardedEngine, WorkerHandle, live_worker_processes
from repro.serving.result import ProcessShardedResultSet
from repro.serving.rpc import (
    RPC_PROTOCOL_VERSION,
    RpcConnection,
    RpcRemoteError,
    RpcTransportError,
    decode_exception,
    decode_message,
    decode_node,
    encode_exception,
    encode_message,
    encode_node,
)
from repro.serving.server import ServingServer, serve
from repro.serving.source import WorkerSource
from repro.serving.worker import ShardWorker

__all__ = [
    "ProcessShardedEngine",
    "ProcessShardedResultSet",
    "RPC_PROTOCOL_VERSION",
    "RpcConnection",
    "RpcRemoteError",
    "RpcTransportError",
    "ServingServer",
    "ShardWorker",
    "WorkerHandle",
    "WorkerSource",
    "decode_exception",
    "decode_message",
    "decode_node",
    "encode_exception",
    "encode_message",
    "encode_node",
    "live_worker_processes",
    "serve",
]
