"""The batched ranking engine.

:class:`RankingEngine` is the serving layer the ROADMAP's production
north star asks for: it wraps a
:class:`~repro.integration.mediator.Mediator`, executes batches of
:class:`~repro.integration.query.ExploratoryQuery`\\ s, and ranks the
resulting query graphs through the compiled CSR kernels — compiling
each graph once and memoising per-method scores keyed by the compiled
graph's content fingerprint, so repeated or structurally identical
requests (the common case under heavy traffic) cost a dictionary probe
instead of a scoring pass.

Three caches cooperate:

* the **query cache** maps an exploratory query's canonical signature
  to the materialised ``QueryGraph`` plus the mediator's *epoch
  snapshot* at execution (bounded LRU). The snapshot records a version
  per bound table, so a probe can ask the mediator precisely *which*
  tables changed (:meth:`~repro.integration.mediator.Mediator.changes_since`)
  instead of discarding the entry on any epoch movement. Changes to
  tables the cached build never read still count as hits; changes to
  tables it did read are replayed through the recorded probe cache
  (:mod:`repro.integration.incremental`) to *repair* the entry — a
  rebuild that re-probes storage only for dirty keys and patches the
  compiled CSR in place, bit-identical to a cold rebuild. Source
  registrations, confidence tuning and overflowed change logs still
  invalidate cold. ``incremental=False`` disables recording and
  repair (every relevant change then re-materialises cold);
* the **compile cache** maps live ``QueryGraph`` objects to their
  :class:`~repro.core.compile.CompiledGraph` (weakly keyed, so graphs
  are evicted when the caller drops them);
* the **score cache** maps ``(fingerprint, method, options)`` to
  computed scores, bounded LRU. Only deterministic requests are cached:
  Monte Carlo reliability is cacheable only when seeded with an
  integer, and options carrying stateful generators bypass the cache.

Mutating a query graph after ranking it through an engine invalidates
nothing automatically — compile once, then treat graphs as immutable
(or call :meth:`RankingEngine.invalidate`).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.compile import CompiledGraph, compile_graph, patch_compiled
from repro.core.graph import QueryGraph
from repro.core.ranker import BACKENDS, RankedResult, rank, resolve_method
from repro.core.reliability import STOCHASTIC_STRATEGIES
from repro.errors import RankingError
from repro.integration.builder import BuildStats
from repro.integration.incremental import ProbeCache, record_build, repair_build
from repro.integration.mediator import Mediator, MediatorEpoch
from repro.integration.query import BUILDERS, ExploratoryQuery
from repro.storage.changes import ChangeSet
from repro.storage.table import Table

__all__ = ["EngineStats", "RankingEngine"]

NodeId = Hashable

Rankable = Union[QueryGraph, ExploratoryQuery]

#: reliability strategies whose scores are sampling-based (shared with
#: the public RankingOptions so seed/cache rules cannot diverge)
_STOCHASTIC_STRATEGIES = STOCHASTIC_STRATEGIES


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


@dataclass
class EngineStats:
    """Cache effectiveness counters (cumulative over the engine's life)."""

    compile_hits: int = 0
    compile_misses: int = 0
    score_hits: int = 0
    score_misses: int = 0
    graph_hits: int = 0
    graph_misses: int = 0
    #: cached graphs brought current by a delta replay instead of a cold
    #: rebuild — counted as neither a graph hit nor a graph miss
    graph_repairs: int = 0
    #: executions answered by awaiting an identical *in-flight*
    #: traversal (single-flight coalescing) — neither a hit nor a miss:
    #: no traversal ran for them, but the entry was not in the cache yet
    coalesced_queries: int = 0
    #: admissions that waited for an in-flight slot before executing
    queued_queries: int = 0
    #: admissions refused outright because the admission queue was full
    #: (each surfaced to the caller as an ``OverloadedError``)
    shed_queries: int = 0
    queries_executed: int = 0

    def reset(self) -> None:
        self.compile_hits = 0
        self.compile_misses = 0
        self.score_hits = 0
        self.score_misses = 0
        self.graph_hits = 0
        self.graph_misses = 0
        self.graph_repairs = 0
        self.coalesced_queries = 0
        self.queued_queries = 0
        self.shed_queries = 0
        self.queries_executed = 0

    # ------------------------------------------------------------ #
    # derived rates and ops-friendly views
    # ------------------------------------------------------------ #

    @property
    def graph_hit_rate(self) -> float:
        """Query-cache hit rate in [0, 1] (0.0 before any probe)."""
        return _hit_rate(self.graph_hits, self.graph_misses)

    @property
    def compile_hit_rate(self) -> float:
        return _hit_rate(self.compile_hits, self.compile_misses)

    @property
    def score_hit_rate(self) -> float:
        return _hit_rate(self.score_hits, self.score_misses)

    def snapshot(self) -> "EngineStats":
        """A point-in-time copy (for before/after deltas)."""
        return EngineStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    @classmethod
    def aggregate(cls, parts: Iterable["EngineStats"]) -> "EngineStats":
        """Field-wise sum — how a sharded engine reports the combined
        cache effectiveness of its children."""
        total = cls()
        for part in parts:
            for f in fields(cls):
                setattr(total, f.name, getattr(total, f.name) + getattr(part, f.name))
        return total

    def as_dict(self) -> Dict[str, object]:
        """Counters plus derived rates, ready for structured logging."""
        data: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        data["graph_hit_rate"] = self.graph_hit_rate
        data["compile_hit_rate"] = self.compile_hit_rate
        data["score_hit_rate"] = self.score_hit_rate
        return data

    def __str__(self) -> str:
        return (
            f"EngineStats(queries={self.queries_executed}, "
            f"graph {self.graph_hits}/{self.graph_hits + self.graph_misses} "
            f"({self.graph_hit_rate:.0%}), "
            f"compile {self.compile_hits}/"
            f"{self.compile_hits + self.compile_misses} "
            f"({self.compile_hit_rate:.0%}), "
            f"score {self.score_hits}/{self.score_hits + self.score_misses} "
            f"({self.score_hit_rate:.0%}))"
        )


class _InFlightBuild:
    """One pending traversal shared by every identical concurrent query.

    The leader (the caller that registered the entry) performs the
    traversal; coalesced followers block on :attr:`event` and read
    either :attr:`result` or :attr:`error` once it is set. Entries are
    evicted from the engine's in-flight map *before* the event fires,
    so a follower arriving after completion probes the query cache
    (success) or starts a fresh cold build (failure) instead.
    """

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[Tuple[QueryGraph, BuildStats]] = None
        self.error: Optional[BaseException] = None


def _consumes_ir(method: str, options: Mapping[str, object]) -> bool:
    """Whether the compiled backend actually reads a precompiled IR for
    this request. Reliability's closed/exact strategies delegate to the
    dict-level solvers, and its reducing Monte Carlo strategies compile
    the *reduced* graph themselves."""
    if method != "reliability":
        return True
    strategy = options.get("strategy", "auto")
    if strategy in ("closed", "exact"):
        return False
    return strategy != "auto" and not options.get("reduce", True)


def _freeze_option(value: object) -> Optional[object]:
    """A hashable cache token for one option value, or ``None`` when the
    value makes the request uncacheable (mutable/stateful arguments)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        frozen = tuple(_freeze_option(v) for v in value)
        return None if any(v is None for v in frozen) else frozen
    return None


class RankingEngine:
    """Batched, cached ranking over a mediator's exploratory queries.

    ``backend`` selects the scoring implementation for every request
    (``"compiled"`` by default — the vectorized CSR kernels); per-call
    overrides are accepted by :meth:`rank`.
    """

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        backend: str = "compiled",
        builder: str = "batched",
        cache_scores: bool = True,
        max_cached_scores: int = 1024,
        cache_graphs: bool = True,
        max_cached_graphs: int = 256,
        incremental: bool = True,
    ):
        if backend not in BACKENDS:
            raise RankingError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if builder not in BUILDERS:
            raise RankingError(
                f"unknown builder {builder!r}; choose from {sorted(BUILDERS)}"
            )
        self.mediator = mediator
        self.backend = backend
        self.builder = builder
        self.cache_scores = cache_scores
        self.max_cached_scores = max_cached_scores
        self.cache_graphs = cache_graphs
        self.max_cached_graphs = max_cached_graphs
        self.incremental = incremental
        self.stats = EngineStats()
        # guards the three caches and the stats counters so concurrent
        # callers (Session.execute_many's thread pool) stay consistent;
        # the heavy work — graph materialisation, compilation, scoring —
        # always runs outside the lock
        self._lock = threading.RLock()
        self._compiled: "weakref.WeakKeyDictionary[QueryGraph, CompiledGraph]" = (
            weakref.WeakKeyDictionary()
        )
        self._scores: "OrderedDict[Tuple, Dict[NodeId, float]]" = OrderedDict()
        #: query signature -> (mediator, its epoch snapshot at execution,
        #: graph, the build stats of the original materialisation, and —
        #: under incremental mode with the batched builder — the build's
        #: recorded probe cache, which both scopes invalidation to the
        #: tables the build actually read and powers delta repair
        self._graphs: "OrderedDict[Tuple, Tuple[Mediator, MediatorEpoch, QueryGraph, BuildStats, Optional[ProbeCache]]]" = (
            OrderedDict()
        )
        #: query-cache key -> the one pending traversal for that key;
        #: identical queries arriving while it runs await it instead of
        #: re-traversing (single-flight). Entries live only for the
        #: duration of one cold build and are evicted on completion or
        #: failure — a failed build never leaves a stale entry behind.
        self._inflight: Dict[Tuple, _InFlightBuild] = {}

    # -------------------------------------------------------------- #
    # query execution
    # -------------------------------------------------------------- #

    def execute(
        self, query: ExploratoryQuery, builder: Optional[str] = None
    ) -> QueryGraph:
        """Run ``query`` through the engine's mediator.

        Results are cached by the query's canonical signature. A
        repeated query against unchanged sources — or sources whose
        changes touch only tables the cached build never read — is a
        dictionary probe (``graph_hits``). Bounded changes to tables
        the build did read are *repaired* by a delta replay
        (``graph_repairs``) rather than rebuilt; source registrations,
        confidence tuning and overflowed change logs re-materialise
        cold (``graph_misses``).

        Identical queries arriving *while* a cold traversal is in
        flight are coalesced (``coalesced_queries``): they await the
        one shared traversal instead of re-traversing, so N concurrent
        identical cold queries cost exactly one graph miss. A failed
        traversal propagates its error to every coalesced waiter and
        evicts the pending entry, so the next request retries cold.
        """
        return self.execute_with_stats(query, builder=builder)[0]

    def execute_with_stats(
        self, query: ExploratoryQuery, builder: Optional[str] = None
    ) -> Tuple[QueryGraph, BuildStats, bool]:
        """Like :meth:`execute`, but also report *how* the graph came to
        be: its :class:`~repro.integration.builder.BuildStats` (from the
        original materialisation when served from cache) and whether the
        query cache supplied it."""
        if self.mediator is None:
            raise RankingError(
                "this engine has no mediator; construct it with one to "
                "execute exploratory queries"
            )
        chosen_builder = builder or self.builder
        if not self.cache_graphs:
            qg, build_stats = query.execute(self.mediator, builder=chosen_builder)
            with self._lock:
                self.stats.queries_executed += 1
            return qg, build_stats, False
        mediator = self.mediator
        # snapshot *before* any build reads storage: a mutation landing
        # mid-build is then still newer than the stored snapshot, so the
        # next probe re-examines it instead of missing it
        snapshot = mediator.epoch_snapshot()
        key = (query.signature, chosen_builder)
        with self._lock:
            cached = self._graphs.get(key)
        if cached is not None:
            # the entry must come from *this* mediator (the attribute is
            # public and reassignable); `changes_since` then reports
            # None on structural change, or exactly which bound tables
            # moved since the entry's snapshot
            entry_mediator, entry_snapshot, qg, build_stats, probe_cache = cached
            changes = (
                mediator.changes_since(entry_snapshot)
                if entry_mediator is mediator
                else None
            )
            if changes is not None:
                if probe_cache is not None:
                    # scope invalidation to the tables the cached build
                    # actually read; net no-op windows (e.g. an insert
                    # coalesced away by its delete) are clean too
                    deps = probe_cache.dep_tables()
                    relevant = {
                        t: cs for t, cs in changes.items() if id(t) in deps and cs
                    }
                else:
                    relevant = {t: cs for t, cs in changes.items() if cs}
                if not relevant:
                    with self._lock:
                        if self._graphs.get(key) is cached:
                            # refresh the snapshot so future probes diff
                            # the shortest possible change window
                            self._graphs[key] = (
                                mediator, snapshot, qg, build_stats, probe_cache
                            )
                            self._graphs.move_to_end(key)
                        self.stats.graph_hits += 1
                    return qg, build_stats, True
                if probe_cache is not None and not any(
                    cs.full for cs in relevant.values()
                ):
                    repaired = self._repair(
                        key, cached, query, mediator, snapshot, relevant
                    )
                    if repaired is not None:
                        return repaired
        # cold: join an identical in-flight traversal (single-flight),
        # or become the leader that performs it. Registration and the
        # stale-entry eviction are atomic under the cache lock, so for
        # any key at most one traversal runs at a time.
        with self._lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = _InFlightBuild()
                self._inflight[key] = flight
                self.stats.graph_misses += 1
                if cached is not None and self._graphs.get(key) is cached:
                    del self._graphs[key]  # stale: sources changed since execution
            else:
                self.stats.coalesced_queries += 1
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.result is not None
            qg, build_stats = flight.result
            return qg, build_stats, True
        try:
            if self.incremental and chosen_builder == "batched":
                qg, build_stats, probe_cache = record_build(query, mediator)
            else:
                qg, build_stats = query.execute(mediator, builder=chosen_builder)
                probe_cache = None
        except BaseException as exc:
            # evict the pending entry *before* waking the waiters: the
            # next identical request must retry cold, and every
            # coalesced waiter gets exactly this error
            with self._lock:
                if self._inflight.get(key) is flight:
                    del self._inflight[key]
            flight.error = exc
            flight.event.set()
            raise
        with self._lock:
            self.stats.queries_executed += 1
            self._graphs[key] = (mediator, snapshot, qg, build_stats, probe_cache)
            while len(self._graphs) > self.max_cached_graphs:
                self._graphs.popitem(last=False)
            # cache insert and in-flight eviction are atomic: a request
            # arriving now either finds the cache entry or the flight
            if self._inflight.get(key) is flight:
                del self._inflight[key]
        flight.result = (qg, build_stats)
        flight.event.set()
        return qg, build_stats, False

    def serve_cached(
        self,
        query: ExploratoryQuery,
        method: str,
        builder: Optional[str] = None,
        backend: Optional[str] = None,
        **options: object,
    ) -> Optional[Tuple[QueryGraph, "RankedResult"]]:
        """Serve ``query`` + ``method`` entirely from the caches, or
        report ``None`` without doing any work.

        This is the probe behind the async session's inline fast path:
        a fully cache-resident request costs a few dictionary probes,
        which is cheap enough to answer on the event loop instead of
        paying an executor round trip. The probe only *counts* (one
        ``graph_hit`` + one ``score_hit``) when it fully serves the
        request — a ``None`` outcome leaves every counter untouched for
        the ordinary path to account.
        """
        if (
            self.mediator is None
            or not self.cache_graphs
            or not self.cache_scores
        ):
            return None
        mediator = self.mediator
        snapshot = mediator.epoch_snapshot()
        key = (query.signature, builder or self.builder)
        with self._lock:
            cached = self._graphs.get(key)
        if cached is None:
            return None
        entry_mediator, entry_snapshot, qg, build_stats, probe_cache = cached
        if entry_mediator is not mediator:
            return None
        changes = mediator.changes_since(entry_snapshot)
        if changes is None:
            return None
        if probe_cache is not None:
            deps = probe_cache.dep_tables()
            relevant = {
                t: cs for t, cs in changes.items() if id(t) in deps and cs
            }
        else:
            relevant = {t: cs for t, cs in changes.items() if cs}
        if relevant:
            return None  # repair or rebuild territory: not a fast path
        canonical = resolve_method(method)
        chosen_backend = backend or self.backend
        with self._lock:
            compiled = self._compiled.get(qg)
        if compiled is None:
            return None  # never compiled: scoring would be real work
        score_key = self._cache_key(
            compiled.fingerprint, canonical, chosen_backend, options
        )
        if score_key is None:
            return None
        with self._lock:
            scores = self._scores.get(score_key)
            if scores is None:
                return None
            self._scores.move_to_end(score_key)
            self.stats.score_hits += 1
            self.stats.graph_hits += 1
            if self._graphs.get(key) is cached:
                # same snapshot refresh as the ordinary hit path, so
                # future probes diff the shortest change window
                self._graphs[key] = (
                    mediator, snapshot, qg, build_stats, probe_cache
                )
                self._graphs.move_to_end(key)
            return qg, RankedResult(method=canonical, scores=dict(scores))

    def _repair(
        self,
        key: Tuple,
        cached: Tuple,
        query: ExploratoryQuery,
        mediator: Mediator,
        snapshot: MediatorEpoch,
        changes: Dict[Table, ChangeSet],
    ) -> Optional[Tuple[QueryGraph, BuildStats, bool]]:
        """Bring the cached entry current by delta replay; ``None`` means
        the caller should fall back to a cold rebuild."""
        _, _, old_qg, _, probe_cache = cached
        try:
            qg, build_stats, fresh_cache, dirty_nodes = repair_build(
                query, mediator, probe_cache, changes
            )
        except Exception:
            # a repair must never be load-bearing: drop the entry and
            # let the cold path rebuild (and raise) on its own terms
            with self._lock:
                if self._graphs.get(key) is cached:
                    del self._graphs[key]
            return None
        with self._lock:
            old_compiled = self._compiled.get(old_qg)
        compiled = (
            patch_compiled(old_compiled, qg, dirty_nodes)
            if old_compiled is not None
            else None
        )
        with self._lock:
            self.stats.graph_repairs += 1
            self.stats.queries_executed += 1
            self._graphs[key] = (mediator, snapshot, qg, build_stats, fresh_cache)
            self._graphs.move_to_end(key)
            while len(self._graphs) > self.max_cached_graphs:
                self._graphs.popitem(last=False)
            if compiled is not None:
                # an unchanged-byte repair keeps the old fingerprint, so
                # the score cache keeps hitting across the mutation
                self._compiled.setdefault(qg, compiled)
        return qg, build_stats, False

    def execute_many(
        self,
        queries: Iterable[ExploratoryQuery],
        builder: Optional[str] = None,
    ) -> List[QueryGraph]:
        """Execute a batch of exploratory queries (cache-aware)."""
        return [self.execute(query, builder=builder) for query in queries]

    def _resolve_graph(self, target: Rankable) -> QueryGraph:
        if isinstance(target, QueryGraph):
            return target
        if isinstance(target, ExploratoryQuery):
            return self.execute(target)
        raise RankingError(
            f"cannot rank {type(target).__name__}; expected a QueryGraph "
            f"or an ExploratoryQuery"
        )

    # -------------------------------------------------------------- #
    # compilation
    # -------------------------------------------------------------- #

    def reset_stats(self) -> None:
        """Zero the counters, consistently with in-flight increments."""
        with self._lock:
            self.stats.reset()

    def stats_snapshot(self) -> EngineStats:
        """A lock-consistent point-in-time copy of the counters."""
        with self._lock:
            return self.stats.snapshot()

    # hooks for the serving layers: admission gates and the async
    # session's spec-keyed single-flight record their outcomes on the
    # same counters engine-level coalescing uses, so one EngineStats
    # tells the whole serving story

    def note_coalesced(self, count: int = 1) -> None:
        """Record ``count`` executions answered by awaiting an identical
        in-flight request at a higher layer (e.g. the async session's
        spec-keyed single-flight)."""
        with self._lock:
            self.stats.coalesced_queries += count

    def note_queued(self, count: int = 1) -> None:
        """Record ``count`` admissions that waited for an in-flight
        slot before executing."""
        with self._lock:
            self.stats.queued_queries += count

    def note_shed(self, count: int = 1) -> None:
        """Record ``count`` admissions refused because the admission
        queue was full."""
        with self._lock:
            self.stats.shed_queries += count

    def cached_fingerprint(self, qg: QueryGraph) -> Optional[str]:
        """The content fingerprint of ``qg``'s compiled form, if it has
        been compiled — without forcing a compilation."""
        with self._lock:
            compiled = self._compiled.get(qg)
        return compiled.fingerprint if compiled is not None else None

    def compile(self, qg: QueryGraph) -> CompiledGraph:
        """The CSR form of ``qg``, compiled at most once per live graph."""
        with self._lock:
            cached = self._compiled.get(qg)
            if cached is not None:
                self.stats.compile_hits += 1
                return cached
            self.stats.compile_misses += 1
        compiled = compile_graph(qg)
        with self._lock:
            # a concurrent compile of the same graph is idempotent; keep
            # one winner so every caller shares a single CompiledGraph
            return self._compiled.setdefault(qg, compiled)

    def invalidate(self, qg: Optional[QueryGraph] = None) -> None:
        """Drop cached state for ``qg`` (or everything when ``None``)."""
        with self._lock:
            if qg is None:
                self._compiled = weakref.WeakKeyDictionary()
                self._scores.clear()
                self._graphs.clear()
                return
            compiled = self._compiled.pop(qg, None)
            if compiled is not None:
                stale = [k for k in self._scores if k[0] == compiled.fingerprint]
                for key in stale:
                    del self._scores[key]
            stale_graphs = [
                k for k, (_, _, cached, _, _) in self._graphs.items() if cached is qg
            ]
            for key in stale_graphs:
                del self._graphs[key]

    # -------------------------------------------------------------- #
    # ranking
    # -------------------------------------------------------------- #

    def _cache_key(
        self,
        fingerprint: str,
        method: str,
        backend: str,
        options: Mapping[str, object],
    ) -> Optional[Tuple]:
        if not self.cache_scores:
            return None
        frozen: List[Tuple[str, object]] = []
        for name in sorted(options):
            token = _freeze_option(options[name])
            if token is None and options[name] is not None:
                return None
            frozen.append((name, token))
        if method == "reliability":
            strategy = options.get("strategy", "auto")
            if strategy in _STOCHASTIC_STRATEGIES and not isinstance(
                options.get("rng"), int
            ):
                return None  # unseeded sampling: caching would freeze noise
        # the backend is part of the key: the Monte Carlo backends draw
        # from different RNG streams, so their seeded estimates differ
        return (fingerprint, method, backend, tuple(frozen))

    def rank(
        self,
        target: Rankable,
        method: str = "reliability",
        backend: Optional[str] = None,
        **options: object,
    ) -> RankedResult:
        """Rank one query graph (or execute-and-rank one query).

        Scores are served from the fingerprint-keyed cache when the
        request is deterministic and has been answered before.
        """
        return self.rank_with_stats(target, method, backend=backend, **options)[0]

    def rank_with_stats(
        self,
        target: Rankable,
        method: str = "reliability",
        backend: Optional[str] = None,
        **options: object,
    ) -> Tuple[RankedResult, bool]:
        """Like :meth:`rank`, but also report whether the scores came
        from the cache — per-call provenance that stays correct under
        concurrent callers (unlike diffing the global counters)."""
        qg = self._resolve_graph(target)
        canonical = resolve_method(method)
        chosen_backend = backend or self.backend
        # compile only when the request can use it: the compiled backend
        # consumes the CSR form (except the reliability strategies that
        # delegate to dict-level solvers or recompile a reduced graph),
        # and the score cache keys its fingerprint
        consumes_ir = chosen_backend == "compiled" and _consumes_ir(
            canonical, options
        )
        compiled: Optional[CompiledGraph] = None
        key: Optional[Tuple] = None
        if consumes_ir or self.cache_scores:
            compiled = self.compile(qg)
            key = self._cache_key(
                compiled.fingerprint, canonical, chosen_backend, options
            )
        if key is not None:
            with self._lock:
                cached = self._scores.get(key)
                if cached is not None:
                    self._scores.move_to_end(key)
                    self.stats.score_hits += 1
                    return RankedResult(method=canonical, scores=dict(cached)), True
        with self._lock:
            self.stats.score_misses += 1
        result = rank(
            qg,
            canonical,
            backend=chosen_backend,
            compiled=compiled if chosen_backend == "compiled" else None,
            **options,
        )
        if key is not None:
            with self._lock:
                self._scores[key] = dict(result.scores)
                while len(self._scores) > self.max_cached_scores:
                    self._scores.popitem(last=False)
        return result, False

    def rank_many(
        self,
        targets: Iterable[Rankable],
        method: str = "reliability",
        methods: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        method_options: Optional[Mapping[str, Mapping[str, object]]] = None,
        **options: object,
    ) -> List:
        """Rank a batch.

        With a single ``method`` the result is a list of
        :class:`~repro.core.ranker.RankedResult`, one per target. With
        ``methods=[...]`` each target yields a dict mapping canonical
        method name to its result — the graph is compiled once and
        shared across all methods, and ``method_options`` supplies
        per-method overrides on top of the common ``options``.
        """
        per_method = {
            resolve_method(name): dict(opts)
            for name, opts in (method_options or {}).items()
        }
        results: List = []
        for target in targets:
            qg = self._resolve_graph(target)
            if methods is None:
                opts = dict(options)
                opts.update(per_method.get(resolve_method(method), {}))
                results.append(self.rank(qg, method, backend=backend, **opts))
            else:
                batch: Dict[str, RankedResult] = {}
                for name in methods:
                    canonical = resolve_method(name)
                    opts = dict(options)
                    opts.update(per_method.get(canonical, {}))
                    batch[canonical] = self.rank(
                        qg, canonical, backend=backend, **opts
                    )
                results.append(batch)
        return results
