"""Sharded scatter/gather execution over N child ranking engines.

One :class:`~repro.engine.ranking.RankingEngine` holds its compiled
graphs and query cache in one heap. To serve graphs too large for one
process, a :class:`ShardedEngine` partitions the answer space across N
child engines — each wrapping a mediator view over its partition's
storage (see :mod:`repro.integration.partition`) — and executes every
query scatter/gather:

1. **route** — :meth:`ShardRouter.relevant_shards` picks the shards a
   query can touch (a point lookup on a partitioned set's key column
   routes to exactly one shard; everything else fans out to all);
2. **scatter** — the query runs on every relevant shard's engine, on a
   thread pool, through the ordinary per-shard caches;
3. **gather** — each shard contributes the answers it *owns* (the
   partitioner is the single ownership oracle), and the fragments merge
   by score with the same deterministic tie-breaking the single engine
   uses, so rankings, rank intervals and tie groups are identical to
   the unsharded result.

Equivalence rests on the ancestor-closure rule enforced by
:func:`repro.integration.partition.partition_mediator`: only traversal
*sink* entity sets are physically partitioned, so every owned answer
sees exactly the ancestor subgraph the full graph would give it, and
every ranking method (they all score a node from its ancestors only)
produces bit-identical scores per shard. Stochastic requests (unseeded
or seeded Monte Carlo reliability) are reproducible run-to-run but
*not* numerically identical to the single-engine path — each shard
samples its own compiled graph; see ``docs/architecture.md``.

Shard failures surface as a clean :class:`~repro.errors.QueryError`
naming the shard; shards whose partition is simply empty (their
:class:`~repro.errors.EmptyAnswerError`) contribute empty fragments,
and only when *every* shard comes back empty is the single-engine
error re-raised.
"""

from __future__ import annotations

import hashlib
import threading
import time
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.graph import QueryGraph
from repro.core.ranker import RankedResult, resolve_method
from repro.engine.ranking import EngineStats, RankingEngine
from repro.errors import EmptyAnswerError, QueryError, RankingError, SchemaError
from repro.integration.builder import BuildStats
from repro.integration.mediator import Mediator
from repro.integration.partition import (
    no_sink_sets_message,
    partition_mediator,
    sink_entity_sets,
    source_partition_message,
)
from repro.integration.query import ExploratoryQuery

__all__ = [
    "GatherResult",
    "HashPartitioner",
    "KeyRangePartitioner",
    "PARTITIONERS",
    "ShardFragment",
    "ShardRouter",
    "ShardedEngine",
]

NodeId = Hashable

#: partitioner strategies selectable by name (EngineConfig.partitioner)
PARTITIONERS: Tuple[str, ...] = ("hash", "range")

#: emptiness kinds ordered by execution progress; when every shard is
#: empty, the error that got furthest is the one the single engine
#: would have raised
_EMPTY_PRIORITY = {"no-answers": 2, "dangling-seeds": 1, "no-seeds": 0}


def _canonical_key_token(key: Hashable) -> str:
    """A stable text token with the property ``x == y`` ⇒ same token.

    Storage lookups and the gather merge compare keys by equality, so
    ownership must too: ``3``, ``3.0`` and ``True``/``1`` are the same
    probe to every other layer and must land on the same shard. Numeric
    keys therefore canonicalise through the integer form when exact;
    everything else keeps its ``repr`` (which separates ``3`` from
    ``'3'``, matching ``==``).
    """
    if isinstance(key, bool):
        return repr(int(key))
    if isinstance(key, int):
        return repr(key)
    if isinstance(key, float):
        if key.is_integer():
            return repr(int(key))
        return repr(key)
    return repr(key)


class HashPartitioner:
    """Stable hash partitioning of ``(entity_set, key)`` pairs.

    Ownership is derived from a keyed BLAKE2 digest of the entity set
    and the key's canonical token, so it is deterministic across
    processes and Python hash randomisation — a partition written to
    disk by one run is read back identically by the next — and
    consistent with key *equality* (``3.0`` owns the same shard as
    ``3``, like every storage probe treats them).
    """

    def __init__(self, shards: int):
        if not isinstance(shards, int) or shards < 1:
            raise QueryError(f"shard count must be a positive integer, got {shards!r}")
        self.shards = shards
        # ownership is probed per answer per request on the warm path;
        # memoising turns ~1 µs of hashing into a dict hit (the cache is
        # bounded by the live answer universe, which the partitioned
        # tables bound in turn)
        self._owners: Dict[Tuple[str, Hashable], int] = {}

    def owner(self, entity_set: str, key: Hashable) -> int:
        probe = (entity_set, key)
        cached = self._owners.get(probe)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(
            f"{entity_set}\x00{_canonical_key_token(key)}".encode("utf-8"),
            digest_size=8,
        ).digest()
        shard = int.from_bytes(digest, "big") % self.shards
        self._owners[probe] = shard
        return shard

    def __repr__(self) -> str:
        return f"HashPartitioner(shards={self.shards})"


class KeyRangePartitioner:
    """Key-range partitioning: contiguous key runs per shard.

    ``boundaries`` maps an entity set to its sorted cut points (at most
    ``shards - 1``); a key is owned by the number of cut points not
    exceeding it. Entity sets without boundaries fall back to hash
    ownership, so the partitioner is total over every possible answer.
    """

    def __init__(self, shards: int, boundaries: Mapping[str, Sequence[Any]]):
        if not isinstance(shards, int) or shards < 1:
            raise QueryError(f"shard count must be a positive integer, got {shards!r}")
        self.shards = shards
        self._boundaries: Dict[str, List[Any]] = {}
        for entity_set, cuts in boundaries.items():
            cuts = list(cuts)
            if len(cuts) > shards - 1:
                raise QueryError(
                    f"entity set {entity_set!r}: {len(cuts)} cut points "
                    f"cannot split into {shards} shards"
                )
            if any(cuts[i] > cuts[i + 1] for i in range(len(cuts) - 1)):
                raise QueryError(
                    f"entity set {entity_set!r}: cut points must be sorted"
                )
            self._boundaries[entity_set] = cuts
        self._fallback = HashPartitioner(shards)

    @classmethod
    def balanced(
        cls, shards: int, keys_by_set: Mapping[str, Sequence[Any]]
    ) -> "KeyRangePartitioner":
        """Quantile cut points from each set's current keys (an empty
        key list yields no cuts: every key of that set on shard 0)."""
        boundaries: Dict[str, List[Any]] = {}
        for entity_set, keys in keys_by_set.items():
            ordered = sorted(keys)
            if not ordered:
                boundaries[entity_set] = []
                continue
            boundaries[entity_set] = sorted(
                {ordered[(len(ordered) * s) // shards] for s in range(1, shards)}
            )
        return cls(shards, boundaries)

    def owner(self, entity_set: str, key: Hashable) -> int:
        cuts = self._boundaries.get(entity_set)
        if cuts is None:
            return self._fallback.owner(entity_set, key)
        return bisect_right(cuts, key)

    def __repr__(self) -> str:
        return (
            f"KeyRangePartitioner(shards={self.shards}, "
            f"sets={sorted(self._boundaries)})"
        )


class ShardRouter:
    """Owns the shard layout: the per-shard mediators, the partitioner
    (the single ownership oracle for answers), and which entity sets
    are physically partitioned (with their key columns, for routing).
    """

    def __init__(
        self,
        mediators: Sequence[Mediator],
        partitioner,
        partitioned_sets: Optional[Mapping[str, str]] = None,
    ):
        self.mediators: List[Mediator] = list(mediators)
        if not self.mediators:
            raise QueryError("a shard router needs at least one mediator")
        if partitioner.shards != len(self.mediators):
            raise QueryError(
                f"partitioner covers {partitioner.shards} shards but "
                f"{len(self.mediators)} mediators were given"
            )
        self.partitioner = partitioner
        #: entity set -> key column, for the sets whose tables are
        #: physically split (used for point-lookup routing)
        self.partitioned_sets: Dict[str, str] = dict(partitioned_sets or {})

    @property
    def shards(self) -> int:
        return len(self.mediators)

    def owner(self, entity_set: str, key: Hashable) -> int:
        """The shard owning answer ``(entity_set, key)``."""
        return self.partitioner.owner(entity_set, key)

    def check_registrable(self, source) -> None:
        """Reject a source that would break the sink rule: a new
        relationship *out of* a physically partitioned entity set would
        make each shard follow links from only its own partition, so
        downstream answers would score against partial ancestor
        subgraphs."""
        message = source_partition_message(source, self.partitioned_sets)
        if message:
            raise SchemaError(message)

    def relevant_shards(self, query: ExploratoryQuery) -> List[int]:
        """The shards ``query`` must be scattered to. A point lookup on
        a partitioned set's key column touches exactly its owner; any
        other query fans out to every shard."""
        key_column = self.partitioned_sets.get(query.entity_set)
        if key_column is not None and query.attribute == key_column:
            return [self.owner(query.entity_set, query.value)]
        return list(range(self.shards))

    @classmethod
    def partition(
        cls,
        mediator: Mediator,
        shards: int,
        partitioner: object = "hash",
        partition_sets: Optional[Sequence[str]] = None,
    ) -> "ShardRouter":
        """Derive a router from one existing mediator by building
        per-shard partition views (see
        :func:`repro.integration.partition.partition_mediator`).

        ``partitioner`` is an instance, or a name from
        :data:`PARTITIONERS` — ``"range"`` computes balanced cut points
        from the partitioned sets' current keys.
        """
        if shards > 1 and not any(
            source.entities for source in mediator.sources
        ):
            raise QueryError(
                "a sharded session partitions its schema at open time, "
                "so the mediator needs its sources first; register "
                "them (or pass sources=) before opening with shards=N"
            )
        chosen = (
            sorted(sink_entity_sets(mediator))
            if partition_sets is None
            else list(partition_sets)
        )
        if shards > 1 and not chosen:
            raise SchemaError(no_sink_sets_message())
        if isinstance(partitioner, str):
            if partitioner not in PARTITIONERS:
                raise QueryError(
                    f"unknown partitioner {partitioner!r}; choose from "
                    f"{list(PARTITIONERS)}"
                )
            if partitioner == "hash":
                partitioner = HashPartitioner(shards)
            else:
                keys_by_set = {}
                for entity_set in chosen:
                    plan = mediator.entity_plan(entity_set)
                    keys_by_set[entity_set] = [
                        row[plan.key_column] for row in plan.table.rows()
                    ]
                partitioner = KeyRangePartitioner.balanced(shards, keys_by_set)
        mediators = partition_mediator(mediator, shards, partitioner, chosen)
        partitioned = {
            entity_set: mediator.entity_plan(entity_set).key_column
            for entity_set in chosen
        }
        return cls(mediators, partitioner, partitioned)


@dataclass
class ShardFragment:
    """One shard's contribution to a gathered result."""

    shard: int
    #: the shard's materialised graph (None when its partition was empty)
    graph: Optional[QueryGraph]
    #: owned answers only — disjoint across fragments by construction
    scores: Dict[NodeId, float] = field(default_factory=dict)
    build_stats: Optional[BuildStats] = None
    graph_cached: bool = False
    score_cached: bool = False
    #: set when the shard raised an EmptyAnswerError
    empty_kind: Optional[str] = None


@dataclass
class GatherResult:
    """A merged scatter/gather execution: the ranked union of the
    owned fragments plus aggregated provenance."""

    ranked: RankedResult
    #: answer node -> the owning shard's query graph (for payloads,
    #: provenance paths and explanations)
    owners: Dict[NodeId, QueryGraph]
    source: NodeId
    fragments: List[ShardFragment]
    #: per-shard BuildStats summed (replicated intermediate layers are
    #: counted once per shard that materialised them)
    build_stats: BuildStats
    #: True only if *every* scattered shard was served from its cache
    graph_cached: bool
    score_cached: bool
    build_seconds: float
    rank_seconds: float

    @property
    def nodes(self) -> int:
        return self.build_stats.nodes

    @property
    def edges(self) -> int:
        return self.build_stats.edges


def aggregate_build_stats(parts: Sequence[BuildStats]) -> BuildStats:
    """Field-wise sum of per-shard build statistics."""
    total = BuildStats()
    for stats in parts:
        total.nodes += stats.nodes
        total.edges += stats.edges
        total.dangling_links += stats.dangling_links
        for entity_set, count in stats.visited_entities.items():
            total.visited_entities[entity_set] = (
                total.visited_entities.get(entity_set, 0) + count
            )
    return total


class ShardedEngine:
    """N child :class:`~repro.engine.ranking.RankingEngine`\\ s behind
    one scatter/gather execution surface.

    Construction mirrors ``RankingEngine``'s configuration; every child
    engine gets the same backend/builder/cache settings over its own
    mediator (from the router). The children's caches work unchanged —
    a warm sharded query is N dictionary probes plus one merge.
    """

    def __init__(
        self,
        router: ShardRouter,
        backend: str = "compiled",
        builder: str = "batched",
        cache_scores: bool = True,
        max_cached_scores: int = 1024,
        cache_graphs: bool = True,
        max_cached_graphs: int = 256,
    ):
        self.router = router
        self.builder = builder
        # the scatter pool is created lazily and *reused* across
        # gathers: warm queries are N cache probes plus a merge, and
        # spawning threads per request would dwarf that
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self.engines: List[RankingEngine] = [
            RankingEngine(
                mediator=mediator,
                backend=backend,
                builder=builder,
                cache_scores=cache_scores,
                max_cached_scores=max_cached_scores,
                cache_graphs=cache_graphs,
                max_cached_graphs=max_cached_graphs,
            )
            for mediator in router.mediators
        ]

    @property
    def shards(self) -> int:
        return len(self.engines)

    # -------------------------------------------------------------- #
    # scatter/gather execution
    # -------------------------------------------------------------- #

    def _run_shard(
        self,
        shard: int,
        query: ExploratoryQuery,
        method: str,
        options: Mapping[str, object],
        builder: Optional[str],
    ) -> Tuple[str, object, float, float]:
        """Execute and rank on one shard; returns an outcome tagged
        ``"ok"`` (a :class:`ShardFragment`), ``"empty"`` or ``"error"``
        plus the shard's build/rank wall-clock seconds."""
        engine = self.engines[shard]
        started = time.perf_counter()
        try:
            qg, build_stats, graph_cached = engine.execute_with_stats(
                query, builder=builder
            )
        except EmptyAnswerError as exc:
            return "empty", exc, time.perf_counter() - started, 0.0
        except Exception as exc:  # gathered and classified by the caller
            return "error", exc, time.perf_counter() - started, 0.0
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        try:
            ranked, score_cached = engine.rank_with_stats(qg, method, **options)
        except Exception as exc:
            return "error", exc, build_seconds, time.perf_counter() - started
        rank_seconds = time.perf_counter() - started
        owner = self.router.owner
        graph = qg.graph
        owned: Dict[NodeId, float] = {}
        for node in qg.targets:
            payload = graph.data(node)
            if owner(payload.entity_set, payload.key) == shard:
                owned[node] = ranked.scores[node]
        fragment = ShardFragment(
            shard=shard,
            graph=qg,
            scores=owned,
            build_stats=build_stats,
            graph_cached=graph_cached,
            score_cached=score_cached,
        )
        return "ok", fragment, build_seconds, rank_seconds

    def gather(
        self,
        query: ExploratoryQuery,
        method: str = "reliability",
        options: Optional[Mapping[str, object]] = None,
        builder: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> GatherResult:
        """Scatter ``query`` to its relevant shards, rank each shard's
        graph, and merge the owned fragments into one result whose
        ordering, rank intervals and tie groups match the single-engine
        execution exactly."""
        options = dict(options or {})
        canonical = resolve_method(method)
        relevant = self.router.relevant_shards(query)
        workers = len(relevant) if max_workers is None else max_workers
        def run(shard: int) -> Tuple[str, object, float, float]:
            return self._run_shard(shard, query, canonical, options, builder)

        if workers >= len(relevant) > 1:
            outcomes = list(self._scatter_pool().map(run, relevant))
        elif workers > 1 and len(relevant) > 1:
            # a narrower-than-shard-count worker budget gets its own
            # exactly-sized pool (rare configuration, cold path anyway)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                outcomes = list(pool.map(run, relevant))
        else:
            outcomes = [
                self._run_shard(shard, query, canonical, options, builder)
                for shard in relevant
            ]

        fragments: List[ShardFragment] = []
        empties: List[Tuple[int, EmptyAnswerError]] = []
        errors: List[Tuple[int, Exception]] = []
        build_seconds = 0.0
        rank_seconds = 0.0
        for shard, (tag, payload, build_s, rank_s) in zip(relevant, outcomes):
            build_seconds = max(build_seconds, build_s)
            rank_seconds = max(rank_seconds, rank_s)
            if tag == "ok":
                fragments.append(payload)
            elif tag == "empty":
                empties.append((shard, payload))
                fragments.append(
                    ShardFragment(shard=shard, graph=None, empty_kind=payload.kind)
                )
            else:
                errors.append((shard, payload))

        if errors:
            # every shard failing identically is a query-level error
            # (bad options, unknown attribute, ...): surface it as the
            # single engine would. A *partial* failure is shard
            # infrastructure trouble: wrap it, naming the shard.
            first_shard, first_error = errors[0]
            deterministic = len(errors) == len(relevant) and all(
                type(err) is type(first_error) and str(err) == str(first_error)
                for _, err in errors
            )
            if deterministic:
                raise first_error
            raise QueryError(
                f"shard {first_shard} failed during scatter/gather: "
                f"{first_error}"
            ) from first_error

        merged: Dict[NodeId, float] = {}
        owners: Dict[NodeId, QueryGraph] = {}
        for fragment in fragments:
            for node, score in fragment.scores.items():
                if node in owners:
                    raise RankingError(
                        f"answer {node!r} gathered from two shards; the "
                        f"partitioner is not a partition"
                    )
                merged[node] = score
                owners[node] = fragment.graph
        if not merged:
            if not empties:  # unreachable unless ownership is broken
                raise QueryError("no shard produced answers")
            # every shard's partition was empty: re-raise the error the
            # single engine would have produced — the one whose
            # execution got furthest
            _, best = max(
                empties, key=lambda item: _EMPTY_PRIORITY[item[1].kind]
            )
            raise best

        populated = [f for f in fragments if f.graph is not None]
        return GatherResult(
            ranked=RankedResult(method=canonical, scores=merged),
            owners=owners,
            source=populated[0].graph.source,
            fragments=fragments,
            build_stats=aggregate_build_stats(
                [f.build_stats for f in populated]
            ),
            graph_cached=all(f.graph_cached for f in populated),
            score_cached=all(f.score_cached for f in populated),
            build_seconds=build_seconds,
            rank_seconds=rank_seconds,
        )

    # -------------------------------------------------------------- #
    # stats and lifecycle (aggregated over the children)
    # -------------------------------------------------------------- #

    @property
    def stats(self) -> EngineStats:
        """Aggregated cache counters (a fresh snapshot; per-shard live
        counters are on ``engines[i].stats``)."""
        return self.stats_snapshot()

    def stats_snapshot(self) -> EngineStats:
        return EngineStats.aggregate(
            engine.stats_snapshot() for engine in self.engines
        )

    def shard_stats(self) -> List[EngineStats]:
        """Per-shard snapshots, shard order."""
        return [engine.stats_snapshot() for engine in self.engines]

    def reset_stats(self) -> None:
        for engine in self.engines:
            engine.reset_stats()

    def _scatter_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.shards,
                    thread_name_prefix="shard-gather",
                )
            return self._pool

    def invalidate(self) -> None:
        for engine in self.engines:
            engine.invalidate()

    def close(self) -> None:
        """Release the scatter pool and drop every child's caches."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        self.invalidate()

    def __repr__(self) -> str:
        return (
            f"<ShardedEngine shards={self.shards} "
            f"partitioner={self.router.partitioner!r}>"
        )
