"""The serving layer: batched, cached ranking over compiled graphs.

This package hosts the :class:`RankingEngine`, the front door for
production-style workloads — execute many exploratory queries against a
mediator through the set-at-a-time builder, serve repeated queries from
the epoch-guarded query cache, compile each query graph once into the
shared CSR form, and serve per-method scores from a fingerprint-keyed
cache. See :mod:`repro.engine.ranking` for the full contract.

For graphs too large for one engine, :mod:`repro.engine.sharded`
partitions the answer space across N child engines behind a
scatter/gather :class:`ShardedEngine` whose merged rankings are
identical to the single-engine result.
"""

from repro.engine.ranking import EngineStats, RankingEngine
from repro.engine.sharded import (
    PARTITIONERS,
    GatherResult,
    HashPartitioner,
    KeyRangePartitioner,
    ShardedEngine,
    ShardFragment,
    ShardRouter,
)

__all__ = [
    "EngineStats",
    "GatherResult",
    "HashPartitioner",
    "KeyRangePartitioner",
    "PARTITIONERS",
    "RankingEngine",
    "ShardFragment",
    "ShardRouter",
    "ShardedEngine",
]
