"""Layered workflow DAG generator.

Scientific-workflow query graphs (the paper's §5 characterisation) are
layered: a query node, a few layers of intermediate records, an answer
layer, with edges always pointing forward and multiple alternative
paths converging on the same answers. :func:`layered_dag` generates
exactly that shape at any scale:

* ``layers`` intermediate layers of ``width`` nodes each;
* each node receives ``fan_in`` edges from uniformly chosen nodes of
  the previous layer (this is what creates converging paths);
* node/edge probabilities drawn uniformly from the given ranges;
* the last layer is the answer set.

The output is an ordinary :class:`~repro.core.graph.QueryGraph`, so
every ranking method, reduction and estimator applies unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.graph import ProbabilisticEntityGraph, QueryGraph
from repro.errors import ValidationError
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["WorkloadSpec", "layered_dag"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape parameters of a layered workflow DAG."""

    layers: int = 3
    width: int = 20
    fan_in: int = 2
    node_p: Tuple[float, float] = (0.5, 1.0)
    edge_q: Tuple[float, float] = (0.3, 0.9)

    def __post_init__(self) -> None:
        if self.layers < 1:
            raise ValidationError(f"layers must be >= 1, got {self.layers}")
        if self.width < 1:
            raise ValidationError(f"width must be >= 1, got {self.width}")
        if self.fan_in < 1:
            raise ValidationError(f"fan_in must be >= 1, got {self.fan_in}")
        for label, (lo, hi) in (("node_p", self.node_p), ("edge_q", self.edge_q)):
            if not 0.0 <= lo <= hi <= 1.0:
                raise ValidationError(f"bad {label} range ({lo}, {hi})")

    @property
    def total_nodes(self) -> int:
        return 1 + self.layers * self.width


def layered_dag(spec: WorkloadSpec, rng: RngLike = None) -> QueryGraph:
    """Generate one workload graph from ``spec``.

    Every node is reachable from the query node by construction (each
    node has at least one incoming edge from the previous layer), and
    the graph is a DAG, so all five ranking semantics apply.
    """
    random = ensure_rng(rng)
    graph = ProbabilisticEntityGraph()
    graph.add_node("query")

    previous: List[str] = ["query"]
    last_layer: List[str] = []
    for layer in range(spec.layers):
        current: List[str] = []
        for index in range(spec.width):
            node = f"L{layer}N{index}"
            graph.add_node(node, p=random.uniform(*spec.node_p))
            fan_in = min(spec.fan_in, len(previous))
            for parent in random.sample(previous, fan_in):
                graph.add_edge(parent, node, q=random.uniform(*spec.edge_q))
            current.append(node)
        previous = current
        last_layer = current
    return QueryGraph(graph, "query", last_layer)
