"""Synthetic workloads.

The biology scenarios reproduce the paper's evaluation; this package
generates *abstract* workloads for stress-testing and scaling studies:

* :mod:`~repro.workloads.synthetic` — ready-made layered workflow DAGs
  (query graphs of configurable depth, width and fan-out), bypassing
  the integration layer entirely;
* :mod:`~repro.workloads.mediated` — layered multi-source schemas
  behind a mediator, exercising the full execution pipeline (storage
  lookups, binding plans, graph builders) at any scale;
* :mod:`~repro.workloads.concurrent` — a deterministic
  concurrent-client driver (asyncio tasks or threads) for serving-style
  load with overlapping identical requests.
"""

from repro.workloads.synthetic import WorkloadSpec, layered_dag
from repro.workloads.mediated import MediatedWorkload, mediated_layers
from repro.workloads.concurrent import (
    ConcurrentRunReport,
    client_streams,
    run_async_clients,
    run_threaded_clients,
)

__all__ = [
    "WorkloadSpec",
    "layered_dag",
    "MediatedWorkload",
    "mediated_layers",
    "ConcurrentRunReport",
    "client_streams",
    "run_async_clients",
    "run_threaded_clients",
]
