"""Synthetic query-graph workloads.

The biology scenarios reproduce the paper's evaluation; this package
generates *abstract* probabilistic query graphs for stress-testing and
scaling studies — layered workflow DAGs of configurable depth, width and
fan-out, with controllable probability ranges. Useful for benchmarking
the ranking semantics on shapes the paper never measured.
"""

from repro.workloads.synthetic import WorkloadSpec, layered_dag

__all__ = ["WorkloadSpec", "layered_dag"]
