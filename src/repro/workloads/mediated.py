"""Mediated multi-source workload generator.

:mod:`repro.workloads.synthetic` fabricates ready-made query graphs;
this module fabricates the *integration inputs* instead: a layered
multi-source schema (one :class:`~repro.integration.sources.DataSource`
per layer, entity tables keyed by id, link tables carrying per-row
``qr`` weights) registered behind one mediator, plus the exploratory
query that materialises it. That exercises the full execution pipeline
— storage lookups, binding plans, graph builder — at any scale, which
is what the builder benchmarks and cross-check tests need.

``index_links`` controls whether link tables carry a secondary index on
their probe column. Indexed links model sources with predicate
push-down; unindexed links model thin wrappers where every probe is a
scan — the regime in which set-at-a-time execution pays off most, since
the batched builder issues one scan per BFS level instead of one per
frontier node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.serving.source import WorkerSource

from repro.api import EngineConfig, QuerySpec, Session, open_session
from repro.engine.sharded import HashPartitioner, ShardRouter
from repro.errors import ValidationError
from repro.integration.mediator import Mediator
from repro.integration.probability import ConfidenceRegistry
from repro.integration.query import ExploratoryQuery
from repro.integration.sources import (
    DataSource,
    EntityBinding,
    RelationshipBinding,
    column_weight,
)
from repro.storage.column import Column, ColumnType
from repro.storage.database import Database
from repro.utils.rng import RngLike, ensure_rng

__all__ = ["MediatedWorkload", "mediated_layers"]

#: qr/pr weight range of generated records and links
_WEIGHT_RANGE = (0.3, 0.95)


@dataclass
class MediatedWorkload:
    """A generated multi-source integration scenario."""

    mediator: Mediator
    query: ExploratoryQuery
    #: entity-set names, root layer first
    entity_sets: tuple
    #: total records across all entity tables
    total_records: int
    #: total link rows across all link tables (incl. dangling ones)
    total_links: int
    #: the per-layer source databases (root layer first) — kept so
    #: persistent backends can be released via :meth:`close`
    databases: tuple = ()
    #: number of scatter/gather shards the workload was generated for
    shards: int = 1
    #: pre-wired shard router (``shards > 1`` only): per-shard mediators
    #: over the pre-partitioned answer-layer databases
    router: Optional[ShardRouter] = None
    #: the per-shard databases of the partitioned layer (``shards > 1``)
    shard_databases: tuple = ()
    #: the exact :func:`mediated_layers` arguments that generated this
    #: workload — the portable recipe worker processes replay (``rng``
    #: is recorded only when it was an explicit integer seed, the one
    #: form that regenerates byte-identically in another process)
    generation: Dict[str, object] = field(default_factory=dict)

    def close(self) -> None:
        """Release the layers' storage resources (SQLite connections)."""
        for db in self.databases:
            db.close()
        for db in self.shard_databases:
            db.close()

    def open_session(
        self,
        config: Optional[EngineConfig] = None,
        sharded: Optional[bool] = None,
        lint: str = "off",
    ) -> Session:
        """A :class:`~repro.api.Session` over this workload.

        A workload generated with ``shards > 1`` opens a scatter/gather
        session over its pre-partitioned shard mediators by default;
        ``sharded=False`` forces the single-engine reference path over
        the full mediator (what the cross-shard equivalence suite
        compares against). ``lint`` gates the schema through
        :mod:`repro.analysis` exactly like
        :func:`repro.api.open_session`.
        """
        if sharded is None:
            sharded = self.shards > 1
        if sharded and self.router is None:
            raise ValidationError(
                "this workload was generated unsharded; regenerate with "
                "mediated_layers(shards=N) for a sharded session"
            )
        worker_source = None
        if sharded and config is not None and config.shard_mode == "process":
            worker_source = self.worker_source()
        return open_session(
            mediator=self.mediator,
            config=config,
            router=self.router if sharded else None,
            worker_source=worker_source,
            lint=lint,
        )

    def worker_source(self) -> "WorkerSource":
        """The :class:`~repro.serving.source.WorkerSource` recipe a
        shard worker process replays to rebuild this workload.

        Requires a sharded workload generated with an explicit integer
        ``rng`` seed — the only form that regenerates byte-identically
        in another process (persisted ``storage_path`` layers re-attach
        either way, but the recipe must still resolve to the same
        partition layout).
        """
        from repro.serving.source import WorkerSource

        if self.shards < 2 or self.router is None:
            raise ValidationError(
                "worker_source() needs a sharded workload; regenerate "
                "with mediated_layers(shards=N)"
            )
        if not isinstance(self.generation.get("rng"), int):
            raise ValidationError(
                "process-mode shard workers replay the generation recipe "
                "in their own process, which requires an explicit integer "
                "rng seed: regenerate with mediated_layers(..., rng=<int>)"
            )
        return WorkerSource(
            factory="repro.workloads.mediated:mediated_layers",
            kwargs=dict(self.generation),
            shards=self.shards,
        )

    def spec(
        self,
        outputs: Optional[Sequence[str]] = None,
        method: str = "in_edge",
        **spec_fields: object,
    ) -> QuerySpec:
        """The workload query as a declarative :class:`QuerySpec`
        (default outputs: the last layer, like :attr:`query`). A bare
        string names one entity set; an explicitly empty sequence is
        rejected by ``QuerySpec`` validation rather than defaulted."""
        if outputs is None:
            outputs = (self.entity_sets[-1],)
        elif isinstance(outputs, str):
            outputs = (outputs,)
        else:
            outputs = tuple(outputs)
        return QuerySpec(
            entity_set=self.query.entity_set,
            attribute=self.query.attribute,
            value=self.query.value,
            outputs=outputs,
            method=method,
            **spec_fields,
        )

    def refresh_entity_weights(
        self,
        layer: Optional[str] = None,
        count: int = 10,
        rng: RngLike = None,
    ) -> int:
        """Simulate a source refresh: re-draw the ``w`` weight of
        ``count`` records of ``layer`` (default: the answer layer).

        All updates go through one batched :meth:`Table.update_many`
        call, so the refresh lands as a single coalesced change set per
        table — not hundreds of row-at-a-time facade mutations — which
        keeps the delta log small and the incremental benchmarks honest.
        Sharded workloads mirror answer-layer updates into the owning
        shard's replica so both serving paths see the same bytes.
        Returns the number of rows updated.
        """
        random = ensure_rng(rng)
        layer = layer or self.entity_sets[-1]
        table = self.mediator.entity_plan(layer).table
        row_ids = list(table.row_ids())[:count]
        updates = {
            row_id: {"w": random.uniform(*_WEIGHT_RANGE)}
            for row_id in row_ids
        }
        if not updates:
            return 0
        table.update_many(updates)
        if self.shard_databases and layer == self.entity_sets[-1]:
            # the shard replicas hold copies of the answer layer's rows
            # under their own row ids: mirror by key, one batch per shard
            fresh = {table.get(row_id)["id"]: table.get(row_id)["w"]
                     for row_id in row_ids}
            for shard_db in self.shard_databases:
                shard_table = shard_db.table("ents")
                shard_updates = {
                    row_id: {"w": fresh[row["id"]]}
                    for row_id in shard_table.row_ids()
                    if (row := shard_table.get(row_id))["id"] in fresh
                }
                if shard_updates:
                    shard_table.update_many(shard_updates)
        return len(updates)

    def append_links(
        self,
        layer: int = 0,
        count: int = 10,
        rng: RngLike = None,
    ) -> int:
        """Simulate link growth: append ``count`` random links from
        layer ``layer`` to the next layer, as one batched
        :meth:`Database.insert_many` call (a single coalesced change
        set). Returns the number of links inserted."""
        if not 0 <= layer < len(self.entity_sets) - 1:
            raise ValidationError(
                f"append_links needs a non-terminal layer index, got {layer}"
            )
        random = ensure_rng(rng)
        source_set = self.entity_sets[layer]
        target_set = self.entity_sets[layer + 1]
        plan = self.mediator.entity_plan(source_set)
        width = len(plan.table)
        target_width = len(self.mediator.entity_plan(target_set).table)
        rows = [
            {
                "src": f"{source_set}:{random.randrange(width)}",
                "dst": f"{target_set}:{random.randrange(target_width)}",
                "w": random.uniform(*_WEIGHT_RANGE),
            }
            for _ in range(count)
        ]
        if rows:
            self.databases[layer].insert_many(f"links_rel{layer}", rows)
        return len(rows)

    def serving_batch(
        self,
        methods: Sequence[str] = ("in_edge", "path_count"),
        repeats: int = 1,
    ) -> List[QuerySpec]:
        """A serving-style spec batch over this workload: every
        non-root layer requested as an output set, under each method,
        ``repeats`` times over — the mix ``Session.execute_many``
        batches set-at-a-time (shared traversals, deduplication)."""
        specs = [
            self.spec(outputs=(layer,), method=method)
            for method in methods
            for layer in self.entity_sets[1:]
        ]
        return specs * repeats


#: pr/qr transformations of the generated schema read the weight column
#: directly; declaring that via column_weight lets binding plans fetch
#: the weights as one float64 array on columnar-capable storage
_row_weight = column_weight("w")


def _adoptable(table, expected: int) -> bool:
    """Whether a (possibly persisted) table can be adopted as-is: empty
    means generate, exactly ``expected`` rows means adopt, anything else
    is a truncated/mismatched artefact (e.g. an interrupted earlier run
    under ``synchronous=OFF``) that must not be served silently."""
    existing = len(table)
    if existing in (0, expected):
        return existing == expected
    raise ValidationError(
        f"persisted table {table.name!r} holds {existing} rows, expected "
        f"{expected}; it was generated with different parameters or "
        f"truncated — delete the storage_path files and regenerate"
    )


def mediated_layers(
    layers: int = 3,
    width: int = 40,
    fan_out: int = 3,
    seeds: int = 1,
    rng: RngLike = None,
    index_links: bool = True,
    dangling_rate: float = 0.0,
    cyclic: bool = False,
    storage: str = "memory",
    storage_path: Optional[object] = None,
    shards: int = 1,
) -> MediatedWorkload:
    """Build a layered mediated schema and its exploratory query.

    ``layers`` entity sets ``E0 .. E{layers-1}`` with ``width`` records
    each (layer 0 holds ``seeds`` query-matching roots), each record
    linking to ``fan_out`` uniformly chosen records of the next layer.
    ``dangling_rate`` rewires that fraction of links to nonexistent
    target ids (counted, not materialised, by the builders); ``cyclic``
    adds a back-edge relationship from the last layer to layer 0, making
    the relationship bindings — and the materialised graph — cyclic.

    ``storage`` selects the physical backend of every generated source
    table (``"memory"`` | ``"sqlite"`` | ``"columnar"`` |
    ``"vectorized"``); with a ``storage_path`` directory, layer ``i``
    persists to ``<storage_path>/layer<i>.sqlite`` under
    ``storage="sqlite"`` or to the ``<storage_path>/layer<i>/``
    directory of memory-mapped ``.npy`` column files under
    ``storage="vectorized"`` (re-attach is O(1): columns stay on disk
    and page in as probes touch them). Re-running with the *same
    parameters* over the same directory adopts the persisted layer
    files instead of regenerating them — how the million-record
    serving workloads are generated once and re-served from disk
    through the engine's warm query cache. Call
    :meth:`MediatedWorkload.close` to release the SQLite connections
    (and flush vectorized stores).

    ``shards=N`` additionally pre-partitions the *answer layer* (the
    last entity set — the only traversal sink, hence the only safely
    partitionable set): each shard ``s`` gets its own database holding
    the rows a :class:`~repro.engine.HashPartitioner` assigns to it
    (persisted as ``<storage_path>/layer<i>.shard<s>.sqlite`` under
    SQLite), and the workload carries a ready
    :class:`~repro.engine.ShardRouter` whose per-shard mediators serve
    :meth:`MediatedWorkload.open_session`'s scatter/gather sessions.
    The full (unsharded) layer databases are still generated — they are
    the single-engine reference the equivalence suite compares against.
    """
    if layers < 2:
        raise ValidationError(f"mediated workload needs >= 2 layers, got {layers}")
    if storage_path is not None and storage not in ("sqlite", "vectorized"):
        # fail before touching the filesystem
        raise ValidationError(
            f"storage_path only applies to storage='sqlite' or "
            f"storage='vectorized', not {storage!r}"
        )
    if not isinstance(shards, int) or shards < 1:
        raise ValidationError(f"shards must be a positive integer, got {shards!r}")
    if shards > 1 and cyclic:
        raise ValidationError(
            "a cyclic workload cannot be sharded: the back-edges make the "
            "last layer a non-sink, so partitioning it would change the "
            "surviving answers' ancestor subgraphs"
        )
    random = ensure_rng(rng)
    partitioner = HashPartitioner(shards) if shards > 1 else None
    entity_sets = tuple(f"E{i}" for i in range(layers))
    sources = []
    databases = []
    shard_databases = []
    shard_last_sources = []
    total_records = 0
    total_links = 0

    directory = None
    if storage_path is not None:
        directory = Path(storage_path)
        directory.mkdir(parents=True, exist_ok=True)

    def _layer_path(stem: str):
        """Per-layer persistence target: a ``.sqlite`` file for SQLite,
        a directory of ``.npy`` column files for vectorized."""
        if directory is None:
            return None
        return directory / (f"{stem}.sqlite" if storage == "sqlite" else stem)

    for i, entity_set in enumerate(entity_sets):
        db = Database(
            f"layer{i}",
            storage=storage,
            storage_path=_layer_path(f"layer{i}"),
        )
        databases.append(db)
        ents = db.create_table(
            "ents",
            columns=[
                Column("id", ColumnType.TEXT),
                Column("root", ColumnType.BOOL),
                Column("w", ColumnType.FLOAT),
            ],
            primary_key=["id"],
        )
        # a persisted layer file that already holds rows is adopted
        # as-is; the generator still draws the same random values so
        # the rng stream (and any freshly generated sibling layer)
        # stays aligned with a from-scratch run
        adopt_ents = _adoptable(ents, width)
        ent_rows = [
            {
                "id": f"{entity_set}:{j}",
                "root": i == 0 and j < seeds,
                "w": random.uniform(*_WEIGHT_RANGE),
            }
            for j in range(width)
        ]
        if not adopt_ents:
            db.insert_many("ents", ent_rows)
        total_records += len(ents)

        # the answer layer is additionally pre-partitioned: one
        # database per shard holding the rows that shard owns
        if partitioner is not None and i == layers - 1:
            owned_rows = [
                [
                    row
                    for row in ent_rows
                    if partitioner.owner(entity_set, row["id"]) == s
                ]
                for s in range(shards)
            ]
            for s in range(shards):
                shard_db = Database(
                    f"layer{i}_shard{s}",
                    storage=storage,
                    storage_path=_layer_path(f"layer{i}.shard{s}"),
                )
                shard_databases.append(shard_db)
                shard_ents = shard_db.create_table(
                    "ents",
                    columns=[
                        Column("id", ColumnType.TEXT),
                        Column("root", ColumnType.BOOL),
                        Column("w", ColumnType.FLOAT),
                    ],
                    primary_key=["id"],
                )
                if _adoptable(shard_ents, len(owned_rows[s])):
                    # a row-count match is not enough: a stale file from
                    # a run with a different ``shards=`` can coincide in
                    # size while holding the wrong partition, which
                    # would silently drop answers from sharded results
                    persisted = {row["id"] for row in shard_ents.rows()}
                    expected = {row["id"] for row in owned_rows[s]}
                    if persisted != expected:
                        raise ValidationError(
                            f"persisted shard table "
                            f"{shard_db.name!r}.ents holds a different "
                            f"partition than shards={shards} assigns; it "
                            f"was generated with different parameters — "
                            f"delete the *.shard*.sqlite files and "
                            f"regenerate"
                        )
                else:
                    shard_db.insert_many("ents", owned_rows[s])
                shard_last_sources.append(
                    DataSource(
                        name=f"Layer{i}",
                        database=shard_db,
                        entities=(
                            EntityBinding(entity_set, "ents", "id", pr=_row_weight),
                        ),
                    )
                )

        rel_targets = []
        if i + 1 < layers:
            rel_targets.append((f"rel{i}", entity_sets[i + 1]))
        if cyclic and i == layers - 1:
            rel_targets.append((f"rel{i}_back", entity_sets[0]))
        relationships = []
        for rel_name, target_set in rel_targets:
            table_name = f"links_{rel_name}"
            links = db.create_table(
                table_name,
                columns=[
                    Column("src", ColumnType.TEXT),
                    Column("dst", ColumnType.TEXT),
                    Column("w", ColumnType.FLOAT),
                ],
            )
            if index_links:
                links.create_index("by_src", ["src"])
            adopt_links = _adoptable(links, width * fan_out)
            link_rows = []
            for j in range(width):
                for _ in range(fan_out):
                    if dangling_rate and random.random() < dangling_rate:
                        dst = f"{target_set}:ghost{random.randrange(10**6)}"
                    else:
                        dst = f"{target_set}:{random.randrange(width)}"
                    link_rows.append(
                        {
                            "src": f"{entity_set}:{j}",
                            "dst": dst,
                            "w": random.uniform(*_WEIGHT_RANGE),
                        }
                    )
            if not adopt_links:
                db.insert_many(table_name, link_rows)
            total_links += len(links)
            relationships.append(
                RelationshipBinding(
                    relationship=rel_name,
                    table=table_name,
                    source_entity=entity_set,
                    source_column="src",
                    target_entity=target_set,
                    target_column="dst",
                    qr=_row_weight,
                )
            )

        sources.append(
            DataSource(
                name=f"Layer{i}",
                database=db,
                entities=(
                    EntityBinding(entity_set, "ents", "id", pr=_row_weight),
                ),
                relationships=tuple(relationships),
            )
        )

    confidences = ConfidenceRegistry()
    mediator = Mediator(confidences=confidences)
    for source in sources:
        mediator.register(source)
    query = ExploratoryQuery(
        entity_sets[0], "root", True, outputs=(entity_sets[-1],)
    )

    router = None
    if partitioner is not None:
        # one mediator per shard: the replicated layers' sources are
        # shared objects (shared physical storage), the answer layer is
        # that shard's pre-partitioned database; tuning the shared
        # confidence registry reaches every shard
        shard_mediators = []
        for s in range(shards):
            shard_mediator = Mediator(confidences=confidences)
            for source in sources[:-1]:
                shard_mediator.register(source)
            shard_mediator.register(shard_last_sources[s])
            shard_mediators.append(shard_mediator)
        router = ShardRouter(
            shard_mediators, partitioner, {entity_sets[-1]: "id"}
        )
    return MediatedWorkload(
        mediator=mediator,
        query=query,
        entity_sets=entity_sets,
        total_records=total_records,
        total_links=total_links,
        databases=tuple(databases),
        shards=shards,
        router=router,
        shard_databases=tuple(shard_databases),
        generation={
            "layers": layers,
            "width": width,
            "fan_out": fan_out,
            "seeds": seeds,
            "rng": rng if isinstance(rng, int) else None,
            "index_links": index_links,
            "dangling_rate": dangling_rate,
            "cyclic": cyclic,
            "storage": storage,
            "storage_path": (
                str(storage_path) if storage_path is not None else None
            ),
            "shards": shards,
        },
    )
