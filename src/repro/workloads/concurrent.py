"""A concurrent-client driver for serving-style load.

Real serving traffic is not a batch: it is N independent clients, each
issuing its own stream of requests, with duplicates arriving *while*
an identical request is still executing — exactly the shape that
exercises single-flight coalescing and bounded admission. This module
generates that shape deterministically and runs it against either
surface:

* :func:`run_async_clients` — C asyncio client tasks over one
  :class:`~repro.async_.AsyncSession`;
* :func:`run_threaded_clients` — C threads over one synchronous
  :class:`~repro.api.Session` (the baseline the async core is measured
  against, and the driver for the sync thundering-herd regression).

Both return a :class:`ConcurrentRunReport` with throughput and the
engine-counter delta over the run, so callers can assert coalescing
behavior ("N identical cold requests, one traversal") as well as
compare sustained request rates.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.api.result import ResultSet
from repro.api.spec import QuerySpec
from repro.engine.ranking import EngineStats
from repro.errors import ReproError

__all__ = [
    "ConcurrentRunReport",
    "client_streams",
    "run_async_clients",
    "run_threaded_clients",
]


def client_streams(
    specs: Sequence[QuerySpec],
    clients: int,
    requests_per_client: int,
) -> List[List[QuerySpec]]:
    """Deterministic per-client request streams over a spec pool.

    Client ``c`` issues ``specs[(c + i * clients) % len(specs)]`` as
    its ``i``-th request — every client walks the whole pool at a
    different phase, so at any instant several clients are asking for
    the *same* spec (the coalescing opportunity) while the pool as a
    whole still covers distinct traversals (the parallelism
    opportunity). No randomness: the same inputs always produce the
    same streams.
    """
    if not specs:
        raise ValueError("specs must be non-empty")
    if clients < 1 or requests_per_client < 1:
        raise ValueError("clients and requests_per_client must be >= 1")
    return [
        [specs[(c + i * clients) % len(specs)] for i in range(requests_per_client)]
        for c in range(clients)
    ]


@dataclass
class ConcurrentRunReport:
    """What a concurrent-client run did and what the engine saw."""

    clients: int
    requests: int
    errors: int
    seconds: float
    #: engine-counter delta over the run (after minus before)
    stats_delta: EngineStats
    #: per-request results in (client, request) order; errors are None
    results: List[Optional[ResultSet]] = field(repr=False, default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed requests per second (0.0 for an instant run)."""
        if self.seconds <= 0:
            return 0.0
        return self.requests / self.seconds

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "throughput": self.throughput,
            "stats_delta": self.stats_delta.as_dict(),
        }


def _stats_delta(before: EngineStats, after: EngineStats) -> EngineStats:
    import dataclasses

    return EngineStats(**{
        f.name: getattr(after, f.name) - getattr(before, f.name)
        for f in dataclasses.fields(EngineStats)
    })


def run_async_clients(
    session,
    streams: Sequence[Sequence[QuerySpec]],
    return_errors: bool = True,
) -> ConcurrentRunReport:
    """Run one asyncio client task per stream against ``session``
    through a fresh :class:`~repro.async_.AsyncSession` (async sessions
    bind to one event loop, so each run gets its own; the *sync*
    session — and with it every cache and counter — persists across
    runs). Each client awaits its requests in order; clients run
    concurrently, bounded by the session's admission caps."""
    import asyncio

    from repro.async_ import AsyncSession

    async def _client(
        async_session, stream: Sequence[QuerySpec]
    ) -> List[Optional[ResultSet]]:
        outcomes: List[Optional[ResultSet]] = []
        for spec in stream:
            try:
                outcomes.append(await async_session.execute(spec))
            except ReproError:
                if not return_errors:
                    raise
                outcomes.append(None)
        return outcomes

    timings: List[float] = []

    async def _run() -> List[List[Optional[ResultSet]]]:
        async with AsyncSession(session) as async_session:
            # time the serving, not the event-loop/executor bootstrap:
            # a long-lived deployment pays that once, not per wave
            started = time.perf_counter()
            per_client = await asyncio.gather(
                *(_client(async_session, stream) for stream in streams)
            )
            timings.append(time.perf_counter() - started)
            return per_client

    before = session.stats_snapshot()
    per_client = asyncio.run(_run())
    seconds = timings[0]
    after = session.stats_snapshot()
    results = [outcome for stream in per_client for outcome in stream]
    return ConcurrentRunReport(
        clients=len(streams),
        requests=len(results),
        errors=sum(1 for outcome in results if outcome is None),
        seconds=seconds,
        stats_delta=_stats_delta(before, after),
        results=results,
    )


def run_threaded_clients(
    session,
    streams: Sequence[Sequence[QuerySpec]],
    return_errors: bool = True,
) -> ConcurrentRunReport:
    """Run one thread per stream against a synchronous
    :class:`~repro.api.Session`. A barrier releases every client at
    once, so the first wave of requests is maximally concurrent — the
    thundering-herd shape the engine's single-flight must absorb."""
    per_client: List[List[Optional[ResultSet]]] = [[] for _ in streams]
    failures: List[BaseException] = []
    barrier = threading.Barrier(len(streams))

    def _client(index: int, stream: Sequence[QuerySpec]) -> None:
        barrier.wait()
        for spec in stream:
            try:
                per_client[index].append(session.execute(spec))
            except ReproError as exc:
                if not return_errors:
                    failures.append(exc)
                    return
                per_client[index].append(None)

    threads = [
        threading.Thread(target=_client, args=(i, stream), daemon=True)
        for i, stream in enumerate(streams)
    ]
    before = session.stats_snapshot()
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    after = session.stats_snapshot()
    if failures:
        raise failures[0]
    results = [outcome for stream in per_client for outcome in stream]
    return ConcurrentRunReport(
        clients=len(streams),
        requests=len(results),
        errors=sum(1 for outcome in results if outcome is None),
        seconds=seconds,
        stats_delta=_stats_delta(before, after),
        results=results,
    )
