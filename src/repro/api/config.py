"""Typed configuration objects for the public API.

These replace the scattered keyword arguments of the lower layers
(``rank(..., strategy=..., trials=..., rng=...)``,
``RankingEngine(backend=..., builder=..., max_cached_scores=...)``) with
two small frozen dataclasses that validate eagerly and serialise to
plain dicts:

* :class:`RankingOptions` — per-query scoring knobs. Only the fields
  relevant to the query's ranking method are forwarded to the scoring
  function, so one options object can be shared across methods.
* :class:`EngineConfig` — per-session serving knobs (backend, builder,
  cache sizes, ``execute_many`` thread pool width). The defaults are the
  serving defaults: compiled CSR kernels, set-at-a-time builder, all
  caches on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Type, TypeVar

if TYPE_CHECKING:
    from repro.engine.ranking import RankingEngine
    from repro.integration.mediator import Mediator
    from repro.storage.database import Database

_T = TypeVar("_T")

from repro.core.ranker import BACKENDS, resolve_method
from repro.core.reliability import RELIABILITY_STRATEGIES, STOCHASTIC_STRATEGIES
from repro.engine.sharded import PARTITIONERS
from repro.errors import RankingError
from repro.integration.query import BUILDERS
from repro.storage.backends import STORAGE_BACKENDS

__all__ = ["EngineConfig", "RankingOptions"]


def _from_mapping(cls: Type[_T], data: Mapping[str, object], what: str) -> _T:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise RankingError(
            f"unknown {what} field(s) {unknown}; known fields: {sorted(known)}"
        )
    return cls(**data)


@dataclass(frozen=True)
class RankingOptions:
    """Declarative scoring options, validated up front.

    ``None`` means "use the library default" — a default-constructed
    ``RankingOptions()`` is exactly today's behaviour. Fields apply to:

    * ``strategy`` / ``trials`` / ``reduce`` — reliability only;
    * ``iterations`` / ``tolerance`` / ``max_iterations`` —
      propagation and diffusion only;
    * the deterministic baselines (``in_edge``, ``path_count``,
      ``random``) take no options.

    Bad values fail eagerly::

        >>> RankingOptions(strategy="guess")
        Traceback (most recent call last):
            ...
        repro.errors.RankingError: unknown reliability strategy 'guess'; \
choose from ['auto', 'mc', 'naive-mc', 'closed', 'exact']
    """

    strategy: Optional[str] = None
    trials: Optional[int] = None
    reduce: Optional[bool] = None
    iterations: Optional[int] = None
    tolerance: Optional[float] = None
    max_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.strategy is not None and self.strategy not in RELIABILITY_STRATEGIES:
            raise RankingError(
                f"unknown reliability strategy {self.strategy!r}; choose "
                f"from {list(RELIABILITY_STRATEGIES)}"
            )
        for name in ("trials", "iterations", "max_iterations"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise RankingError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if self.tolerance is not None and not self.tolerance > 0:
            raise RankingError(
                f"tolerance must be > 0, got {self.tolerance!r}"
            )
        if self.reduce is not None and not isinstance(self.reduce, bool):
            raise RankingError(f"reduce must be a bool, got {self.reduce!r}")

    @property
    def is_stochastic(self) -> bool:
        """Whether a reliability request with these options samples
        (and therefore needs a seed to be deterministic/cacheable).

        Example::

            >>> RankingOptions(strategy="mc").is_stochastic
            True
            >>> RankingOptions(strategy="closed").is_stochastic
            False
        """
        return (self.strategy or "auto") in STOCHASTIC_STRATEGIES

    def to_kwargs(
        self, method: str, seed: Optional[int] = None
    ) -> Dict[str, object]:
        """The keyword arguments to pass to ``rank()`` for ``method``.

        Only the fields that apply to ``method`` are emitted, so sharing
        one options object across a method sweep is safe. ``seed`` is
        threaded through as the Monte Carlo ``rng`` when the request is
        stochastic, which also makes it engine-cacheable.

        Example::

            >>> options = RankingOptions(strategy="mc", trials=500, iterations=9)
            >>> options.to_kwargs("reliability", seed=7)
            {'strategy': 'mc', 'trials': 500, 'rng': 7}
            >>> options.to_kwargs("propagation")
            {'iterations': 9}
            >>> options.to_kwargs("in_edge")
            {}
        """
        canonical = resolve_method(method)
        kwargs: Dict[str, object] = {}
        if canonical == "reliability":
            if self.strategy is not None:
                kwargs["strategy"] = self.strategy
            if self.trials is not None:
                kwargs["trials"] = self.trials
            if self.reduce is not None:
                kwargs["reduce"] = self.reduce
            if seed is not None and self.is_stochastic:
                kwargs["rng"] = seed
        elif canonical in ("propagation", "diffusion"):
            if self.iterations is not None:
                kwargs["iterations"] = self.iterations
            if self.tolerance is not None:
                kwargs["tolerance"] = self.tolerance
            if self.max_iterations is not None:
                kwargs["max_iterations"] = self.max_iterations
        return kwargs

    def as_dict(self) -> Dict[str, object]:
        """Only the explicitly set fields, ready for JSON.

        Example::

            >>> RankingOptions(strategy="closed").as_dict()
            {'strategy': 'closed'}
        """
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RankingOptions":
        """The inverse of :meth:`as_dict` (unknown fields rejected).

        Example::

            >>> options = RankingOptions(trials=100)
            >>> RankingOptions.from_dict(options.as_dict()) == options
            True
        """
        return _from_mapping(cls, data, "RankingOptions")


@dataclass(frozen=True)
class EngineConfig:
    """How a :class:`~repro.api.Session` executes, caches and stores.

    The defaults are the serving defaults — compiled kernels,
    set-at-a-time builder, query/compile/score caches on, and a small
    thread pool for ``execute_many``.

    Example::

        >>> config = EngineConfig(storage="sqlite")
        >>> config.backend, config.builder, config.storage
        ('compiled', 'batched', 'sqlite')
    """

    backend: str = "compiled"
    builder: str = "batched"
    cache_graphs: bool = True
    max_cached_graphs: int = 256
    cache_scores: bool = True
    max_cached_scores: int = 1024
    #: delta-aware query caching: cached graphs survive changes to
    #: tables they never read, and bounded changes to tables they did
    #: read are repaired by replaying only the dirty BFS region (see
    #: ``docs/architecture.md``); ``False`` re-materialises cold on any
    #: relevant change
    incremental: bool = True
    #: thread-pool width for ``Session.execute_many``'s spec-level
    #: batching on unsharded sessions; 0 or 1 disables threading (specs
    #: still share graph materialisation work). Sharded sessions
    #: parallelise across shards instead (scatter width = shard count;
    #: cap per call via ``execute_many(..., max_workers=)``)
    max_workers: int = 4
    #: storage backend for databases created through this session
    #: (``Session.create_database`` and the workload generators):
    #: ``"memory"`` | ``"sqlite"`` | ``"columnar"`` | ``"vectorized"``
    storage: str = "memory"
    #: persistence root for the disk-backed storage backends: one
    #: ``<name>.sqlite`` file per database under SQLite, one
    #: ``<name>/`` directory of memory-mapped ``.npy`` column files per
    #: database under the vectorized backend; ``None`` keeps either
    #: backend in process memory
    storage_path: Optional[str] = None
    #: number of scatter/gather shards; 1 (the default) runs the
    #: classic single engine, ``N > 1`` partitions the answer space
    #: across N child engines (see ``docs/architecture.md``)
    shards: int = 1
    #: answer-ownership strategy for sharded sessions: ``"hash"``
    #: (stable content hash) or ``"range"`` (balanced key ranges
    #: computed from the partitioned sets' current keys)
    partitioner: str = "hash"
    #: where sharded execution runs: ``"thread"`` scatters on a thread
    #: pool over in-process child engines; ``"process"`` promotes every
    #: shard to a supervised worker *process* reached over JSON-RPC
    #: (see ``docs/serving.md``) — results are bit-identical, but a
    #: crashed or hung shard costs a bounded restart, not the session
    shard_mode: str = "thread"
    #: per-RPC response deadline (seconds) in process mode; a worker
    #: silent past this is treated as hung and restarted
    rpc_timeout: float = 30.0
    #: how many times a single request may restart-and-retry a failed
    #: worker before the query fails with a classified shard error
    worker_restarts: int = 2
    #: per-session cap on concurrently *executing* requests for the
    #: serving surfaces (the async session's semaphore and, when
    #: ``max_queue_depth`` engages the admission gate, the HTTP front
    #: door); direct ``Session.execute`` calls are never gated
    max_concurrency: int = 8
    #: bounded admission: how many requests may *wait* for an execution
    #: slot beyond ``max_concurrency`` before new arrivals are shed
    #: with an ``OverloadedError`` (surfaced as HTTP 503 +
    #: ``Retry-After``). ``None`` (the default) disables shedding —
    #: the queue is unbounded and the sync HTTP path stays ungated
    max_queue_depth: Optional[int] = None
    #: the ``Retry-After`` hint (seconds) attached to shed requests
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise RankingError(
                f"unknown backend {self.backend!r}; choose from {list(BACKENDS)}"
            )
        if self.builder not in BUILDERS:
            raise RankingError(
                f"unknown builder {self.builder!r}; choose from {sorted(BUILDERS)}"
            )
        if self.storage not in STORAGE_BACKENDS:
            raise RankingError(
                f"unknown storage backend {self.storage!r}; choose from "
                f"{list(STORAGE_BACKENDS)}"
            )
        if self.storage_path is not None and self.storage not in (
            "sqlite",
            "vectorized",
        ):
            raise RankingError(
                f"storage_path only applies to storage='sqlite' or "
                f"storage='vectorized', not {self.storage!r}"
            )
        for name in ("max_cached_graphs", "max_cached_scores"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise RankingError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        if not isinstance(self.incremental, bool):
            raise RankingError(
                f"incremental must be a bool, got {self.incremental!r}"
            )
        if not isinstance(self.max_workers, int) or self.max_workers < 0:
            raise RankingError(
                f"max_workers must be a non-negative integer, got "
                f"{self.max_workers!r}"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise RankingError(
                f"shards must be a positive integer, got {self.shards!r}"
            )
        if self.partitioner not in PARTITIONERS:
            raise RankingError(
                f"unknown partitioner {self.partitioner!r}; choose from "
                f"{list(PARTITIONERS)}"
            )
        if self.shard_mode not in ("thread", "process"):
            raise RankingError(
                f'shard_mode must be "thread" or "process", got '
                f"{self.shard_mode!r}"
            )
        if not isinstance(self.rpc_timeout, (int, float)) or not self.rpc_timeout > 0:
            raise RankingError(
                f"rpc_timeout must be a positive number of seconds, got "
                f"{self.rpc_timeout!r}"
            )
        if not isinstance(self.worker_restarts, int) or self.worker_restarts < 0:
            raise RankingError(
                f"worker_restarts must be a non-negative integer, got "
                f"{self.worker_restarts!r}"
            )
        if not isinstance(self.max_concurrency, int) or self.max_concurrency < 1:
            raise RankingError(
                f"max_concurrency must be a positive integer, got "
                f"{self.max_concurrency!r}"
            )
        if self.max_queue_depth is not None and (
            not isinstance(self.max_queue_depth, int) or self.max_queue_depth < 0
        ):
            raise RankingError(
                f"max_queue_depth must be None (unbounded) or a "
                f"non-negative integer, got {self.max_queue_depth!r}"
            )
        if not isinstance(self.retry_after, (int, float)) or not self.retry_after > 0:
            raise RankingError(
                f"retry_after must be a positive number of seconds, got "
                f"{self.retry_after!r}"
            )

    def make_engine(self, mediator: Optional["Mediator"] = None) -> "RankingEngine":
        """A :class:`~repro.engine.RankingEngine` configured accordingly.

        Example::

            >>> EngineConfig(backend="reference").make_engine().backend
            'reference'
        """
        from repro.engine.ranking import RankingEngine

        return RankingEngine(
            mediator=mediator,
            backend=self.backend,
            builder=self.builder,
            cache_scores=self.cache_scores,
            max_cached_scores=self.max_cached_scores,
            cache_graphs=self.cache_graphs,
            max_cached_graphs=self.max_cached_graphs,
            incremental=self.incremental,
        )

    def make_database(self, name: str = "db") -> "Database":
        """A :class:`~repro.storage.database.Database` on this config's
        storage backend.

        For ``storage="sqlite"`` with a ``storage_path``, the database
        persists to ``<storage_path>/<name>.sqlite``; for
        ``storage="vectorized"`` it persists to the
        ``<storage_path>/<name>/`` directory of memory-mapped ``.npy``
        column files (either parent is created on demand). Without a
        path, both backends stay in process memory. Example::

            >>> EngineConfig(storage="columnar").make_database("src").storage
            'columnar'
        """
        from repro.storage.database import Database

        path = None
        if self.storage_path is not None:
            if self.storage == "sqlite":
                directory = Path(self.storage_path)
                directory.mkdir(parents=True, exist_ok=True)
                path = directory / f"{name}.sqlite"
            elif self.storage == "vectorized":
                path = Path(self.storage_path) / name
        return Database(name, storage=self.storage, storage_path=path)

    def as_dict(self) -> Dict[str, object]:
        """Every field as a plain dict (the JSON form).

        Example::

            >>> EngineConfig().as_dict()["builder"]
            'batched'
        """
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EngineConfig":
        """The inverse of :meth:`as_dict` (unknown fields rejected).

        Example::

            >>> config = EngineConfig(max_workers=2)
            >>> EngineConfig.from_dict(config.as_dict()) == config
            True
        """
        return _from_mapping(cls, data, "EngineConfig")
