"""``repro.api`` — the public front door.

One stable, declarative surface over the whole system (mediator,
builders, compiled kernels, engine caches)::

    from repro.api import EngineConfig, Query, open_session

    session = open_session(sources=[...], config=EngineConfig())
    spec = (Query.on("EntrezProtein").where(name="ABCC8")
                 .outputs("GOTerm").rank_by("reliability").top(10)
                 .seed(7).build())
    results = session.execute(spec)
    for entity in results.top():
        print(entity.rank, entity.label, entity.score)

The pieces:

* :class:`QuerySpec` / :class:`Query` — frozen declarative queries with
  a fluent builder and dict/JSON round-trip;
* :class:`RankingOptions` / :class:`EngineConfig` — typed, validated
  configuration replacing scattered keyword arguments;
* :class:`Session` / :func:`open_session` — execution facade:
  ``execute``, batched ``execute_many``, ``explain``, ``stats``;
* :class:`ResultSet` / :class:`RankedEntity` / :class:`ResultPage` —
  rich results: scores, tie-aware rank intervals, pagination,
  provenance paths, JSON export.

``__all__`` is the compatibility contract — a snapshot test freezes it
against accidental breakage. Everything underneath
(:mod:`repro.integration`, :mod:`repro.engine`, :mod:`repro.core`)
remains importable for advanced use, but new code should target this
module.
"""

from repro.api.config import EngineConfig, RankingOptions
from repro.api.result import RankedEntity, ResultPage, ResultSet, ShardedResultSet
from repro.api.session import Explanation, Session, open_session
from repro.api.spec import Query, QuerySpec

__all__ = [
    "EngineConfig",
    "Explanation",
    "Query",
    "QuerySpec",
    "RankedEntity",
    "RankingOptions",
    "ResultPage",
    "ResultSet",
    "Session",
    "ShardedResultSet",
    "open_session",
]
