"""Declarative query specifications and the fluent ``Query`` builder.

A :class:`QuerySpec` is the public, serialisable form of the paper's
exploratory query *plus* how its answers should be ranked: entity set,
predicate, output sets, ranking method, options, top-k and seed. It is
frozen (hashable, cacheable) and round-trips through plain dicts and
JSON, which is what a future HTTP layer will speak.

The fluent builder reads like the sentence it encodes::

    spec = (Query.on("EntrezProtein")
                 .where(name="ABCC8")
                 .outputs("GOTerm")
                 .rank_by("reliability", strategy="closed")
                 .top(10)
                 .build())

``Session.execute`` accepts either form (an unbuilt ``Query`` is built
on the way in).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Hashable, Mapping, Optional, Tuple

from repro.api.config import RankingOptions
from repro.core.ranker import resolve_method
from repro.errors import QueryError
from repro.integration.query import ExploratoryQuery, validate_query_shape

__all__ = ["Query", "QuerySpec"]


def _hashable_value(value: object) -> Hashable:
    """JSON decoding turns tuples into lists; coerce them back so a
    tuple-valued predicate survives the round trip hashable."""
    if isinstance(value, list):
        return tuple(_hashable_value(item) for item in value)
    return value


@dataclass(frozen=True)
class QuerySpec:
    """One declarative query: *what* to ask and *how* to rank it.

    ``outputs`` is stored as a sorted tuple of unique names and
    ``method`` is canonicalised (aliases like ``"rel"`` resolve to
    ``"reliability"``), so two specs meaning the same thing are equal::

        >>> a = QuerySpec("Protein", "name", "ABCC8", ("GOTerm", "Gene"))
        >>> b = QuerySpec("Protein", "name", "ABCC8", ("Gene", "GOTerm", "Gene"))
        >>> a == b
        True
        >>> a.outputs, a.method
        (('GOTerm', 'Gene'), 'reliability')
    """

    entity_set: str
    attribute: str
    value: Hashable
    outputs: Tuple[str, ...]
    method: str = "reliability"
    options: RankingOptions = field(default_factory=RankingOptions)
    top_k: Optional[int] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.outputs, str):
            outputs = (self.outputs,)
        else:
            try:
                outputs = tuple(self.outputs)
            except TypeError:
                raise QueryError(
                    f"outputs must be entity-set names (or one name), "
                    f"got {self.outputs!r}"
                ) from None
        validate_query_shape(
            self.entity_set,
            self.attribute,
            outputs,
            'Query.on("EntrezProtein").where(name="ABCC8")',
        )
        try:
            hash(self.value)
        except TypeError:
            raise QueryError(
                f"the predicate value must be hashable (specs are frozen "
                f"cache keys), got {self.value!r}; use a tuple instead of "
                f"a list"
            ) from None
        # canonical order makes equal queries compare (and hash) equal
        object.__setattr__(self, "outputs", tuple(sorted(set(outputs))))
        object.__setattr__(self, "method", resolve_method(self.method))
        if not isinstance(self.options, RankingOptions):
            raise QueryError(
                f"options must be a RankingOptions, got "
                f"{type(self.options).__name__}"
            )
        if self.top_k is not None and (
            not isinstance(self.top_k, int) or self.top_k < 1
        ):
            raise QueryError(
                f"top_k must be a positive integer, got {self.top_k!r}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise QueryError(f"seed must be an integer, got {self.seed!r}")

    # -------------------------------------------------------------- #
    # identity and conversions
    # -------------------------------------------------------------- #

    @property
    def traversal_signature(self) -> Tuple[str, str, Hashable]:
        """What graph *expansion* depends on. Output sets only filter
        the answer set, so specs sharing this signature can share one
        materialised graph (which ``execute_many`` exploits).

        Example::

            >>> QuerySpec("P", "name", "x", ("A",)).traversal_signature
            ('P', 'name', 'x')
        """
        return (self.entity_set, self.attribute, self.value)

    @property
    def signature(self) -> Tuple[str, str, Hashable, FrozenSet[str]]:
        """The underlying exploratory query's canonical identity."""
        return (
            self.entity_set,
            self.attribute,
            self.value,
            frozenset(self.outputs),
        )

    def to_exploratory(self) -> ExploratoryQuery:
        """The integration-layer query this spec executes.

        Example::

            >>> QuerySpec("P", "name", "x", ("A",)).to_exploratory().entity_set
            'P'
        """
        return ExploratoryQuery(
            self.entity_set, self.attribute, self.value, self.outputs
        )

    def replace(self, **changes: object) -> "QuerySpec":
        """A copy with the given fields changed (validated again).

        Example::

            >>> spec = QuerySpec("P", "name", "x", ("A",))
            >>> spec.replace(method="path_count").method
            'path_count'
        """
        return replace(self, **changes)

    # -------------------------------------------------------------- #
    # dict / JSON round trip
    # -------------------------------------------------------------- #

    def to_dict(self) -> Dict[str, object]:
        """The spec as a plain dict (only non-default fields emitted).

        Example::

            >>> QuerySpec("P", "name", "x", ("A",), top_k=5).to_dict()
            {'entity_set': 'P', 'attribute': 'name', 'value': 'x', \
'outputs': ['A'], 'method': 'reliability', 'top_k': 5}
        """
        data: Dict[str, object] = {
            "entity_set": self.entity_set,
            "attribute": self.attribute,
            "value": self.value,
            "outputs": list(self.outputs),
            "method": self.method,
        }
        options = self.options.as_dict()
        if options:
            data["options"] = options
        if self.top_k is not None:
            data["top_k"] = self.top_k
        if self.seed is not None:
            data["seed"] = self.seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "QuerySpec":
        """The inverse of :meth:`to_dict` (unknown/missing fields rejected).

        Example::

            >>> spec = QuerySpec("P", "name", "x", ("A",))
            >>> QuerySpec.from_dict(spec.to_dict()) == spec
            True
        """
        known = {
            "entity_set", "attribute", "value", "outputs", "method",
            "options", "top_k", "seed",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise QueryError(
                f"unknown QuerySpec field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        missing = [
            name
            for name in ("entity_set", "attribute", "value", "outputs")
            if name not in data
        ]
        if missing:
            raise QueryError(f"QuerySpec dict is missing field(s) {missing}")
        options = data.get("options", {})
        if isinstance(options, Mapping):
            options = RankingOptions.from_dict(options)
        outputs = data["outputs"]
        if not isinstance(outputs, str):
            try:
                # a bare string is one entity-set name, never an
                # iterable of characters
                outputs = tuple(outputs)
            except TypeError:
                raise QueryError(
                    f"'outputs' must be a list of entity-set names (or "
                    f"one name), got {outputs!r}"
                ) from None
        return cls(
            entity_set=data["entity_set"],
            attribute=data["attribute"],
            value=_hashable_value(data["value"]),
            outputs=outputs,
            method=data.get("method", "reliability"),
            options=options,
            top_k=data.get("top_k"),
            seed=data.get("seed"),
        )

    def to_json(self, **dumps_kwargs: object) -> str:
        """The spec as canonical (sorted-key) JSON.

        Example::

            >>> QuerySpec("P", "k", 1, ("A",), method="in_edge").to_json()
            '{"attribute": "k", "entity_set": "P", "method": "in_edge", \
"outputs": ["A"], "value": 1}'
        """
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "QuerySpec":
        """Parse a spec from JSON (what a future HTTP layer speaks).

        Example::

            >>> spec = QuerySpec("P", "name", "x", ("A",), seed=7)
            >>> QuerySpec.from_json(spec.to_json()) == spec
            True
        """
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise QueryError(f"invalid QuerySpec JSON: {exc}") from None
        if not isinstance(data, dict):
            raise QueryError(
                f"QuerySpec JSON must be an object, got {type(data).__name__}"
            )
        return cls.from_dict(data)


class Query:
    """Fluent builder for :class:`QuerySpec`.

    Each step returns ``self``; :meth:`build` validates and freezes.
    Building twice (or continuing after a build) is fine — the builder
    keeps its state.

    Example::

        >>> spec = (Query.on("Protein").where(name="ABCC8")
        ...              .outputs("GOTerm").rank_by("path_count")
        ...              .top(10).seed(7).build())
        >>> spec.entity_set, spec.value, spec.method, spec.top_k, spec.seed
        ('Protein', 'ABCC8', 'path_count', 10, 7)
    """

    def __init__(self, entity_set: Optional[str] = None) -> None:
        self._entity_set = entity_set
        self._attribute: Optional[str] = None
        self._value: Hashable = None
        self._outputs: Tuple[str, ...] = ()
        self._method = "reliability"
        self._options = RankingOptions()
        self._top_k: Optional[int] = None
        self._seed: Optional[int] = None

    @classmethod
    def on(cls, entity_set: str) -> "Query":
        """Start a query over ``entity_set``."""
        return cls(entity_set)

    def where(self, *args: object, **predicate: Hashable) -> "Query":
        """The selection predicate: ``.where(name="ABCC8")`` or
        ``.where("name", "ABCC8")``."""
        if args and predicate or len(args) not in (0, 2) or (
            not args and len(predicate) != 1
        ):
            raise QueryError(
                "where() takes exactly one predicate: either "
                '.where(attribute="value") or .where("attribute", value)'
            )
        if args:
            attribute, value = args
        else:
            ((attribute, value),) = predicate.items()
        self._attribute = attribute
        self._value = value
        return self

    def outputs(self, *entity_sets: str) -> "Query":
        """Which entity sets form the rankable answer set (names, or
        iterables of names)."""
        flat = []
        for item in entity_sets:
            if isinstance(item, str):
                flat.append(item)
            else:
                try:
                    flat.extend(item)
                except TypeError:
                    raise QueryError(
                        f"outputs() takes entity-set names (or iterables "
                        f"of names), got {item!r}"
                    ) from None
        self._outputs = tuple(flat)
        return self

    def rank_by(self, method: str, **options: object) -> "Query":
        """The relevance semantics, e.g. ``rank_by("reliability",
        strategy="closed")`` — keyword options build a
        :class:`~repro.api.config.RankingOptions`. Each call replaces
        the previous options entirely (no kwargs = library defaults);
        to attach a prebuilt object, call :meth:`options` afterwards."""
        self._method = method
        self._options = RankingOptions(**options)
        return self

    def options(self, options: RankingOptions) -> "Query":
        """Attach a prebuilt options object."""
        self._options = options
        return self

    def top(self, k: int) -> "Query":
        """Limit the result set to the ``k`` best answers."""
        self._top_k = k
        return self

    def seed(self, seed: int) -> "Query":
        """Seed stochastic ranking for end-to-end reproducibility."""
        self._seed = seed
        return self

    def build(self) -> QuerySpec:
        """Validate and freeze into a :class:`QuerySpec`."""
        if self._entity_set is None:
            raise QueryError(
                'the query has no entity set; start with Query.on("EntitySet")'
            )
        if self._attribute is None:
            raise QueryError(
                "the query has no predicate; add "
                '.where(attribute="value") before build()'
            )
        if not self._outputs:
            raise QueryError(
                "the query has no output sets; add "
                '.outputs("EntitySet") before build()'
            )
        return QuerySpec(
            entity_set=self._entity_set,
            attribute=self._attribute,
            value=self._value,
            outputs=self._outputs,
            method=self._method,
            options=self._options,
            top_k=self._top_k,
            seed=self._seed,
        )
