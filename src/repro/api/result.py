"""Rich result sets returned by :class:`~repro.api.Session`.

A :class:`ResultSet` wraps the raw score dict of a
:class:`~repro.core.ranker.RankedResult` into ranked
:class:`RankedEntity` records (label, entity set, score, tie-aware rank
interval), with pagination, tie groups, provenance paths back to the
seed records, and dict/JSON export — everything a UI or HTTP layer
needs without reaching into the graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from repro.api.spec import QuerySpec

from repro.core.graph import QueryGraph
from repro.core.paths import EvidencePath, enumerate_paths, explain_answer
from repro.core.ranker import RankedResult
from repro.errors import GraphError, ValidationError

__all__ = ["RankedEntity", "ResultPage", "ResultSet", "ShardedResultSet"]

NodeId = Hashable


@dataclass(frozen=True)
class RankedEntity:
    """One ranked answer.

    ``rank`` is the 1-based position in the deterministic display order;
    ``rank_lo``/``rank_hi`` bound the ranks the entity can occupy under
    random tie-breaking (the paper's ``21-22`` style intervals).
    """

    rank: int
    node: NodeId
    entity_set: Optional[str]
    key: Hashable
    label: str
    score: float
    rank_lo: int
    rank_hi: int

    @property
    def rank_interval(self) -> Tuple[int, int]:
        return (self.rank_lo, self.rank_hi)

    @property
    def expected_rank(self) -> float:
        """Expected rank under uniformly random tie-breaking."""
        return (self.rank_lo + self.rank_hi) / 2.0

    @property
    def is_tied(self) -> bool:
        return self.rank_lo != self.rank_hi

    def as_dict(self) -> Dict[str, object]:
        return {
            "rank": self.rank,
            "rank_interval": [self.rank_lo, self.rank_hi],
            "entity_set": self.entity_set,
            "key": self.key,
            "label": self.label,
            "score": self.score,
        }


@dataclass(frozen=True)
class ResultPage:
    """One page of a :class:`ResultSet` (1-based page numbers)."""

    number: int
    size: int
    total_results: int
    entities: Tuple[RankedEntity, ...]

    @property
    def total_pages(self) -> int:
        return max(1, -(-self.total_results // self.size))

    @property
    def has_previous(self) -> bool:
        return self.number > 1

    @property
    def has_next(self) -> bool:
        return self.number < self.total_pages

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self) -> Iterator[RankedEntity]:
        return iter(self.entities)


class ResultSet:
    """The ranked answers of one executed query.

    Iterating yields :class:`RankedEntity` records in deterministic
    order (score descending, ties broken by node repr). The full answer
    set is always carried; ``spec.top_k`` only bounds the *default*
    window of :meth:`top` and :meth:`to_dict`.

    Example (ranking a hand-built two-answer graph)::

        >>> from repro import ProbabilisticEntityGraph, QueryGraph, open_session
        >>> g = ProbabilisticEntityGraph()
        >>> for node in ("s", "t1", "t2"):
        ...     _ = g.add_node(node)
        >>> _ = g.add_edge("s", "t1", q=0.9)
        >>> _ = g.add_edge("s", "t2", q=0.5)
        >>> from repro import RankingOptions
        >>> results = open_session().rank(
        ...     QueryGraph(g, "s", ["t1", "t2"]), "reliability",
        ...     options=RankingOptions(strategy="closed"))
        >>> [(e.rank, e.label, round(e.score, 2)) for e in results.top()]
        [(1, 't1', 0.9), (2, 't2', 0.5)]
        >>> results.page(1, size=1).has_next
        True
        >>> len(results)
        2
    """

    def __init__(
        self,
        ranked: RankedResult,
        graph: QueryGraph,
        spec: Optional["QuerySpec"] = None,
    ) -> None:
        self._ranked = ranked
        self._graph = graph
        self.spec = spec
        self.method = ranked.method
        # entity records are built lazily: score-only consumers (the
        # experiment sweeps read just .scores) skip the per-node work
        self._entities_cache: Optional[List[RankedEntity]] = None
        self._by_node_cache: Optional[Dict[NodeId, RankedEntity]] = None

    @property
    def _entities(self) -> List[RankedEntity]:
        if self._entities_cache is None:
            # tie semantics (exact score equality, deterministic order)
            # come from RankedResult.tie_groups() — one source of truth
            entities: List[RankedEntity] = []
            position = 0
            for group in self._ranked.tie_groups():
                lo, hi = position + 1, position + len(group)
                for node in group:
                    position += 1
                    payload = self._graph.graph.data(node)
                    entities.append(
                        RankedEntity(
                            rank=position,
                            node=node,
                            entity_set=getattr(payload, "entity_set", None),
                            key=getattr(payload, "key", node),
                            label=str(getattr(payload, "label", node)),
                            score=self._ranked.scores[node],
                            rank_lo=lo,
                            rank_hi=hi,
                        )
                    )
            self._entities_cache = entities
        return self._entities_cache

    @property
    def _by_node(self) -> Dict[NodeId, RankedEntity]:
        if self._by_node_cache is None:
            self._by_node_cache = {
                entity.node: entity for entity in self._entities
            }
        return self._by_node_cache

    # -------------------------------------------------------------- #
    # access
    # -------------------------------------------------------------- #

    @property
    def graph(self) -> QueryGraph:
        """The materialised query graph behind this result."""
        return self._graph

    @property
    def ranked(self) -> RankedResult:
        """The underlying low-level result (scores + rank accessors)."""
        return self._ranked

    @property
    def scores(self) -> Dict[NodeId, float]:
        """Raw node -> score mapping (what the metrics consume)."""
        return self._ranked.scores

    @property
    def entities(self) -> List[RankedEntity]:
        return list(self._entities)

    def entity(self, node: NodeId) -> RankedEntity:
        """The ranked entity of a graph node id."""
        try:
            return self._by_node[node]
        except KeyError:
            raise GraphError(
                f"{node!r} is not in this result set"
            ) from None

    def top(self, n: Optional[int] = None) -> List[RankedEntity]:
        """The best ``n`` entities (default: the spec's ``top_k``,
        or everything when neither is set)."""
        if n is None:
            n = getattr(self.spec, "top_k", None)
        elif not isinstance(n, int) or n < 1:
            raise ValidationError(
                f"top() takes a positive integer, got {n!r}"
            )
        return self._entities[:n] if n is not None else list(self._entities)

    def tie_groups(self) -> List[List[RankedEntity]]:
        """Maximal equal-score groups, best group first (the facade
        view of :meth:`RankedResult.tie_groups`)."""
        by_node = self._by_node
        return [
            [by_node[node] for node in group]
            for group in self._ranked.tie_groups()
        ]

    def page(self, number: int, size: int = 10) -> ResultPage:
        """Page ``number`` (1-based) of ``size`` entities.

        A page past the end is empty but still carries the totals, so a
        paginating client can recover; ``number < 1`` or ``size < 1``
        are errors.
        """
        if not isinstance(number, int) or number < 1:
            raise ValidationError(
                f"page number must be a positive integer, got {number!r}"
            )
        if not isinstance(size, int) or size < 1:
            raise ValidationError(
                f"page size must be a positive integer, got {size!r}"
            )
        start = (number - 1) * size
        return ResultPage(
            number=number,
            size=size,
            total_results=len(self._entities),
            entities=tuple(self._entities[start : start + size]),
        )

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[RankedEntity]:
        return iter(self._entities)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[RankedEntity, List[RankedEntity]]:
        return self._entities[index]

    def __repr__(self) -> str:
        best = self._entities[0].label if self._entities else "-"
        return (
            f"<ResultSet method={self.method!r} n={len(self._entities)} "
            f"best={best!r}>"
        )

    # -------------------------------------------------------------- #
    # provenance
    # -------------------------------------------------------------- #

    def provenance(
        self, node: NodeId, top: int = 3, max_paths: int = 1000
    ) -> List[EvidencePath]:
        """The strongest evidence paths from the query node back to the
        seed records supporting ``node`` (accepts a node id or a
        :class:`RankedEntity`)."""
        if isinstance(node, RankedEntity):
            node = node.node
        return enumerate_paths(self._graph, node, max_paths=max_paths)[:top]

    def explain(self, node: NodeId, top: int = 3) -> str:
        """Human-readable provenance report for one answer."""
        if isinstance(node, RankedEntity):
            node = node.node
        return explain_answer(self._graph, node, top=top)

    # -------------------------------------------------------------- #
    # export
    # -------------------------------------------------------------- #

    def to_dict(self, limit: Optional[int] = None) -> Dict[str, object]:
        """A JSON-ready dict: the spec (when known), totals, and the
        top ``limit`` entities (default: the spec's ``top_k``)."""
        entities: Sequence[RankedEntity] = self.top(limit)
        data: Dict[str, object] = {
            "method": self.method,
            "total": len(self._entities),
            "returned": len(entities),
            "entities": [entity.as_dict() for entity in entities],
        }
        if self.spec is not None:
            data["spec"] = self.spec.to_dict()
        return data

    def to_json(self, limit: Optional[int] = None, **dumps_kwargs: object) -> str:
        dumps_kwargs.setdefault("default", str)
        return json.dumps(self.to_dict(limit), **dumps_kwargs)


class _GatherPayloads:
    """Node-payload access dispatching to each answer's owning shard
    graph (quacks like ``ProbabilisticEntityGraph.data`` for the
    entity-record construction of the base class)."""

    def __init__(self, owners: Mapping[Hashable, QueryGraph]) -> None:
        self._owners = owners

    def data(self, node: Hashable) -> object:
        return self._owners[node].graph.data(node)


class _GatherGraph:
    """The minimal ``QueryGraph``-shaped object a gathered result set
    carries: merged answer set, shared source node, per-owner payload
    dispatch. Whole-graph operations live on the per-shard graphs."""

    def __init__(
        self,
        owners: Mapping[Hashable, QueryGraph],
        source: Hashable,
        targets: Iterable[Hashable],
    ) -> None:
        self.graph = _GatherPayloads(owners)
        self.source = source
        self.targets = list(targets)


class ShardedResultSet(ResultSet):
    """A :class:`ResultSet` gathered from shard fragments.

    Scores, ordering, rank intervals, tie groups, pagination and export
    behave exactly as on a single-engine result (the merged score dict
    *is* the result). Provenance and explanations dispatch to the shard
    graph that owns each answer — by the sink-partitioning rule the
    owning shard holds the answer's complete ancestor subgraph, so the
    evidence paths equal the unsharded ones.

    There is no *single* materialised graph behind a gathered result,
    so :attr:`graph` raises with guidance; whole-graph consumers should
    iterate :attr:`shard_graphs` instead.
    """

    def __init__(
        self,
        ranked: RankedResult,
        owners: Mapping[Hashable, QueryGraph],
        source: Hashable,
        spec: Optional["QuerySpec"] = None,
    ) -> None:
        self._owners = dict(owners)
        super().__init__(
            ranked,
            _GatherGraph(self._owners, source, self._owners.keys()),
            spec=spec,
        )

    @property
    def graph(self) -> QueryGraph:
        """Not available on a gathered result — it was never one graph.

        Raising here (instead of returning a partial stand-in) keeps
        established ``results.graph`` consumers from silently working
        on one shard's subgraph; use :attr:`shard_graphs` for the
        per-shard materialisations.
        """
        raise GraphError(
            "a sharded result set has no single materialised graph; "
            "use .shard_graphs for the per-shard query graphs, or "
            ".provenance()/.explain() which dispatch to the owning "
            "shard automatically"
        )

    @property
    def shard_graphs(self) -> List[QueryGraph]:
        """The distinct per-shard query graphs behind this result."""
        seen: List[QueryGraph] = []
        for graph in self._owners.values():
            if all(graph is not existing for existing in seen):
                seen.append(graph)
        return seen

    def _owning_graph(self, node: NodeId) -> QueryGraph:
        if isinstance(node, RankedEntity):
            node = node.node
        try:
            return self._owners[node]
        except KeyError:
            raise GraphError(f"{node!r} is not in this result set") from None

    def provenance(
        self, node: NodeId, top: int = 3, max_paths: int = 1000
    ) -> List[EvidencePath]:
        graph = self._owning_graph(node)
        if isinstance(node, RankedEntity):
            node = node.node
        return enumerate_paths(graph, node, max_paths=max_paths)[:top]

    def explain(self, node: NodeId, top: int = 3) -> str:
        graph = self._owning_graph(node)
        if isinstance(node, RankedEntity):
            node = node.node
        return explain_answer(graph, node, top=top)
