"""The session facade: one front door over mediator + engine.

:func:`open_session` wires sources into a
:class:`~repro.integration.mediator.Mediator`, wraps it in a
:class:`~repro.engine.RankingEngine` configured by an
:class:`~repro.api.config.EngineConfig`, and returns a :class:`Session`
— the single object examples, experiments, workloads and any future
HTTP layer talk to::

    with open_session(sources=[...]) as session:
        results = session.execute(
            Query.on("EntrezProtein").where(name="ABCC8")
                 .outputs("GOTerm").rank_by("reliability").top(10)
        )

``execute_many`` runs independent specs as a batch: identical specs are
deduplicated, specs that share a traversal (same entity set, attribute
and value — output sets only *filter* the answer set, they never change
the expansion) share one graph materialisation, and independent
traversal groups run on a thread pool. ``explain`` answers "what would
this spec cost and where would it be served from" with build statistics
and cache provenance.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.config import EngineConfig, RankingOptions
from repro.api.result import ResultSet
from repro.api.spec import Query, QuerySpec
from repro.core.graph import QueryGraph
from repro.engine.ranking import EngineStats, RankingEngine
from repro.errors import QueryError, RankingError, ReproError
from repro.integration.builder import BuildStats
from repro.integration.mediator import Mediator
from repro.integration.probability import ConfidenceRegistry
from repro.integration.query import ExploratoryQuery, select_answers
from repro.integration.sources import DataSource

__all__ = ["Explanation", "Session", "open_session"]

SpecLike = Union[QuerySpec, Query, Mapping[str, object]]


@dataclass(frozen=True)
class Explanation:
    """Where a spec's answer comes from and what it costs.

    Produced by :meth:`Session.explain`; the spec *is* executed (builds
    and ranks through the ordinary path), so explaining a query warms
    the caches for it.
    """

    spec: QuerySpec
    #: served from the engine's epoch-guarded query cache?
    graph_cached: bool
    #: ranked from the fingerprint-keyed score cache?
    score_cached: bool
    builder: str
    backend: str
    nodes: int
    edges: int
    answers: int
    #: stats of the original materialisation (also when cache-served)
    build_stats: BuildStats
    #: content fingerprint of the compiled graph (compiled backend only)
    fingerprint: Optional[str]
    build_seconds: float
    rank_seconds: float
    #: cumulative engine counters after this execution
    engine_stats: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "graph_cached": self.graph_cached,
            "score_cached": self.score_cached,
            "builder": self.builder,
            "backend": self.backend,
            "nodes": self.nodes,
            "edges": self.edges,
            "answers": self.answers,
            "dangling_links": self.build_stats.dangling_links,
            "fingerprint": self.fingerprint,
            "build_seconds": self.build_seconds,
            "rank_seconds": self.rank_seconds,
            "engine_stats": self.engine_stats,
        }

    def __str__(self) -> str:
        graph_src = "query cache" if self.graph_cached else f"{self.builder} builder"
        score_src = "score cache" if self.score_cached else f"{self.backend} backend"
        return (
            f"{self.spec.entity_set}.{self.spec.attribute}="
            f"{self.spec.value!r} -> {sorted(self.spec.outputs)} "
            f"[{self.spec.method}]: graph {self.nodes}n/{self.edges}e "
            f"({self.answers} answers) from {graph_src} "
            f"({self.build_seconds * 1e3:.2f} ms), scores from {score_src} "
            f"({self.rank_seconds * 1e3:.2f} ms)"
        )


class Session:
    """A configured mediator + engine pair behind one stable surface.

    Construct via :func:`open_session` (or directly around an existing
    :class:`~repro.integration.mediator.Mediator`). Sessions are
    context managers; closing drops the engine caches.
    """

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        config: Optional[EngineConfig] = None,
    ):
        self._config = config or EngineConfig()
        self._mediator = mediator if mediator is not None else Mediator()
        self._engine = self._config.make_engine(self._mediator)
        #: derived answer-set views per shared (union) graph, so batches
        #: re-served from the query cache also reuse their derived
        #: graphs — and therefore the compile cache
        self._derived: "weakref.WeakKeyDictionary[QueryGraph, Dict[Tuple[str, ...], QueryGraph]]" = (
            weakref.WeakKeyDictionary()
        )
        # weakref containers are not thread-safe; execute_many's pool
        # workers probe/populate the derived-view cache concurrently
        self._derived_lock = threading.Lock()
        self._closed = False

    # -------------------------------------------------------------- #
    # plumbing access (escape hatches, not the primary surface)
    # -------------------------------------------------------------- #

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def mediator(self) -> Mediator:
        return self._mediator

    @property
    def engine(self) -> RankingEngine:
        return self._engine

    def register(self, *sources: DataSource) -> "Session":
        """Register additional data sources (chainable)."""
        self._check_open()
        for source in sources:
            self._mediator.register(source)
        return self

    def create_database(self, name: str = "db"):
        """A new :class:`~repro.storage.database.Database` on this
        session's configured storage backend.

        With ``EngineConfig(storage="sqlite", storage_path=...)`` the
        database persists to ``<storage_path>/<name>.sqlite``; source
        generators can load it once and serve every later session from
        disk through the warm query cache.

        Example::

            >>> from repro.api import EngineConfig, open_session
            >>> session = open_session(config=EngineConfig(storage="columnar"))
            >>> session.create_database("genes").storage
            'columnar'
        """
        self._check_open()
        return self._config.make_database(name)

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #

    def execute(self, spec: SpecLike) -> ResultSet:
        """Execute one spec end to end: materialise (or cache-hit) the
        query graph, rank it, and wrap the answers in a
        :class:`~repro.api.result.ResultSet`.

        ``spec`` may be a :class:`~repro.api.spec.QuerySpec`, an
        unbuilt :class:`~repro.api.spec.Query` builder, or a spec dict.

        Example (over a generated two-layer workload)::

            >>> from repro.workloads import mediated_layers
            >>> workload = mediated_layers(layers=2, width=4, fan_out=2, rng=7)
            >>> with workload.open_session() as session:
            ...     results = session.execute(workload.spec(method="path_count"))
            ...     results[0].entity_set, len(results) > 0
            ('E1', True)
        """
        self._check_open()
        spec = self._coerce(spec)
        qg = self._engine.execute(
            spec.to_exploratory(), builder=self._config.builder
        )
        return self._rank_graph(qg, spec)

    def execute_many(
        self,
        specs: Iterable[SpecLike],
        max_workers: Optional[int] = None,
        return_errors: bool = False,
    ) -> List[Union[ResultSet, ReproError]]:
        """Execute a batch of independent specs, set-at-a-time.

        Batching beats a loop of :meth:`execute` three ways: identical
        specs are answered once, specs sharing a traversal (same entity
        set / attribute / value) share a single graph materialisation
        regardless of their output sets, and distinct traversal groups
        run on a thread pool of ``max_workers`` threads (default: the
        session config's ``max_workers``).

        Results come back in spec order. With ``return_errors=True`` a
        failing spec yields its exception in place instead of raising.

        Example::

            >>> from repro.workloads import mediated_layers
            >>> workload = mediated_layers(layers=3, width=4, fan_out=2, rng=7)
            >>> batch = workload.serving_batch(methods=("in_edge",))
            >>> with workload.open_session() as session:
            ...     results = session.execute_many(batch)
            ...     len(results) == len(batch)
            True
        """
        self._check_open()
        coerced = [self._coerce(spec) for spec in specs]
        results: List[Optional[Union[ResultSet, ReproError]]] = [None] * len(coerced)

        # identical specs collapse into one execution
        slots: Dict[QuerySpec, List[int]] = {}
        for index, spec in enumerate(coerced):
            slots.setdefault(spec, []).append(index)

        # specs sharing a traversal share one materialised graph
        groups: Dict[Tuple, List[QuerySpec]] = {}
        for spec in slots:
            groups.setdefault(spec.traversal_signature, []).append(spec)
        group_list = list(groups.values())

        workers = self._config.max_workers if max_workers is None else max_workers
        if workers > 1 and len(group_list) > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                group_results = list(pool.map(self._run_group, group_list))
        else:
            group_results = [self._run_group(group) for group in group_list]

        for group_result in group_results:
            for spec, outcome in group_result:
                for index in slots[spec]:
                    results[index] = outcome
        if not return_errors:
            for outcome in results:
                if isinstance(outcome, BaseException):
                    raise outcome
        return results  # type: ignore[return-value]

    def _run_group(
        self, group: Sequence[QuerySpec]
    ) -> List[Tuple[QuerySpec, Union[ResultSet, ReproError]]]:
        """Execute the specs of one traversal group over one shared
        graph materialisation."""
        union_outputs = sorted(set().union(*(spec.outputs for spec in group)))
        base = group[0]
        try:
            union_qg = self._engine.execute(
                ExploratoryQuery(
                    base.entity_set, base.attribute, base.value, union_outputs
                ),
                builder=self._config.builder,
            )
        except ReproError:
            # the union failed (e.g. no answers in *any* requested
            # set); fall back to direct execution so every spec gets
            # exactly the error (or result) execute() would give it
            outcomes = []
            for spec in group:
                try:
                    outcomes.append((spec, self.execute(spec)))
                except ReproError as exc:
                    outcomes.append((spec, exc))
            return outcomes
        outcomes: List[Tuple[QuerySpec, Union[ResultSet, ReproError]]] = []
        for spec in group:
            try:
                qg = self._graph_for(spec, union_qg, union_outputs)
                outcomes.append((spec, self._rank_graph(qg, spec)))
            except ReproError as exc:
                outcomes.append((spec, exc))
        return outcomes

    def _graph_for(
        self,
        spec: QuerySpec,
        union_qg: QueryGraph,
        union_outputs: Sequence[str],
    ) -> QueryGraph:
        """The spec's answer-set view of a shared traversal graph."""
        if set(spec.outputs) == set(union_outputs):
            return union_qg
        with self._derived_lock:
            views = self._derived.setdefault(union_qg, {})
            cached = views.get(spec.outputs)
        if cached is not None:
            return cached
        # the same filter (and the same empty-answer QueryError) as
        # direct execution, so batching and execute() fail identically
        answers = select_answers(union_qg.graph, union_qg.targets, spec.outputs)
        derived = QueryGraph(union_qg.graph, union_qg.source, answers)
        with self._derived_lock:
            derived = views.setdefault(spec.outputs, derived)
        return derived

    # -------------------------------------------------------------- #
    # ranking pre-built graphs
    # -------------------------------------------------------------- #

    def rank(
        self,
        graph: QueryGraph,
        method: str = "reliability",
        options: Optional[Union[RankingOptions, Mapping[str, object]]] = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ResultSet:
        """Rank an already-materialised query graph (synthetic
        workloads, generated cases) through the session's engine.
        ``options`` accepts a :class:`RankingOptions` or a plain
        mapping of its fields."""
        self._check_open()
        if options is None:
            options = RankingOptions()
        elif not isinstance(options, RankingOptions):
            options = RankingOptions.from_dict(options)
        ranked = self._engine.rank(
            graph, method, backend=backend, **options.to_kwargs(method, seed)
        )
        return ResultSet(ranked, graph)

    def rank_many(self, targets, **kwargs):
        """Batch passthrough to
        :meth:`~repro.engine.RankingEngine.rank_many` (experiment
        drivers that sweep methods over shared compilations)."""
        self._check_open()
        return self._engine.rank_many(targets, **kwargs)

    def _rank_graph(self, qg: QueryGraph, spec: QuerySpec) -> ResultSet:
        ranked = self._engine.rank(
            qg, spec.method, **spec.options.to_kwargs(spec.method, spec.seed)
        )
        return ResultSet(ranked, qg, spec=spec)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    def explain(self, spec: SpecLike) -> Explanation:
        """Execute ``spec`` and report build stats, sizes, timings and
        cache provenance (graph/score cache vs fresh computation).

        Example (the second run is served from the caches)::

            >>> from repro.workloads import mediated_layers
            >>> workload = mediated_layers(layers=2, width=4, fan_out=2, rng=7)
            >>> spec = workload.spec(method="in_edge")
            >>> with workload.open_session() as session:
            ...     first = session.explain(spec)
            ...     second = session.explain(spec)
            >>> first.graph_cached, second.graph_cached, second.score_cached
            (False, True, True)
        """
        self._check_open()
        spec = self._coerce(spec)
        started = time.perf_counter()
        qg, build_stats, graph_cached = self._engine.execute_with_stats(
            spec.to_exploratory(), builder=self._config.builder
        )
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        _, score_cached = self._engine.rank_with_stats(
            qg, spec.method, **spec.options.to_kwargs(spec.method, spec.seed)
        )
        rank_seconds = time.perf_counter() - started
        # report the fingerprint only if ranking (now or earlier)
        # actually compiled this graph — never force a compilation
        fingerprint = self._engine.cached_fingerprint(qg)
        return Explanation(
            spec=spec,
            graph_cached=graph_cached,
            score_cached=score_cached,
            builder=self._config.builder,
            backend=self._config.backend,
            nodes=qg.graph.num_nodes,
            edges=qg.graph.num_edges,
            answers=len(qg.targets),
            build_stats=build_stats,
            fingerprint=fingerprint,
            build_seconds=build_seconds,
            rank_seconds=rank_seconds,
            engine_stats=self._engine.stats_snapshot().as_dict(),
        )

    def stats(self) -> EngineStats:
        """The engine's cumulative cache-effectiveness counters (live
        object; use :meth:`stats_snapshot` for before/after deltas)."""
        return self._engine.stats

    def stats_snapshot(self) -> EngineStats:
        """A lock-consistent copy of the counters."""
        return self._engine.stats_snapshot()

    def reset_stats(self) -> None:
        self._engine.reset_stats()

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Drop all cached state; further execution raises."""
        if not self._closed:
            self._engine.invalidate()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<Session {state} sources={len(self._mediator.sources)} "
            f"backend={self._config.backend!r} builder={self._config.builder!r}>"
        )

    # -------------------------------------------------------------- #
    # helpers
    # -------------------------------------------------------------- #

    def _check_open(self) -> None:
        if self._closed:
            raise RankingError("this session is closed")

    @staticmethod
    def _coerce(spec: SpecLike) -> QuerySpec:
        if isinstance(spec, QuerySpec):
            return spec
        if isinstance(spec, Query):
            return spec.build()
        if isinstance(spec, Mapping):
            return QuerySpec.from_dict(spec)
        raise QueryError(
            f"cannot execute {type(spec).__name__}; expected a QuerySpec, "
            f"a Query builder, or a spec dict"
        )


def open_session(
    sources: Iterable[DataSource] = (),
    mediator: Optional[Mediator] = None,
    confidences: Optional[ConfidenceRegistry] = None,
    config: Optional[EngineConfig] = None,
) -> Session:
    """Open a :class:`Session` over the given data sources.

    Either pass ``sources`` (plus optional ``confidences``) to build a
    fresh mediator, or an existing ``mediator`` to wrap; passing both a
    mediator and sources/confidences is ambiguous and rejected. With
    neither, the session starts empty — usable for ranking pre-built
    graphs and for registering sources later.

    Example::

        >>> with open_session() as session:
        ...     session.closed
        False
        >>> session.closed
        True
    """
    sources = tuple(sources)
    if mediator is not None and (sources or confidences is not None):
        raise QueryError(
            "pass either an existing mediator or sources/confidences to "
            "build one, not both"
        )
    if mediator is None:
        mediator = Mediator(confidences=confidences)
        for source in sources:
            mediator.register(source)
    return Session(mediator=mediator, config=config)
