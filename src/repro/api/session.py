"""The session facade: one front door over mediator + engine.

:func:`open_session` wires sources into a
:class:`~repro.integration.mediator.Mediator`, wraps it in a
:class:`~repro.engine.RankingEngine` configured by an
:class:`~repro.api.config.EngineConfig`, and returns a :class:`Session`
— the single object examples, experiments, workloads and any future
HTTP layer talk to::

    with open_session(sources=[...]) as session:
        results = session.execute(
            Query.on("EntrezProtein").where(name="ABCC8")
                 .outputs("GOTerm").rank_by("reliability").top(10)
        )

``execute_many`` runs independent specs as a batch: identical specs are
deduplicated, specs that share a traversal (same entity set, attribute
and value — output sets only *filter* the answer set, they never change
the expansion) share one graph materialisation, and independent
traversal groups run on a thread pool. ``explain`` answers "what would
this spec cost and where would it be served from" with build statistics
and cache provenance.
"""

from __future__ import annotations

import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from repro.analysis.framework import AnalysisReport
    from repro.async_.admission import AdmissionGate
    from repro.serving.engine import ProcessShardedEngine
    from repro.serving.source import WorkerSource
    from repro.storage.database import Database

from repro.api.config import EngineConfig, RankingOptions
from repro.api.result import ResultSet, ShardedResultSet
from repro.api.spec import Query, QuerySpec
from repro.core.graph import QueryGraph
from repro.engine.ranking import EngineStats, RankingEngine
from repro.engine.sharded import ShardedEngine, ShardRouter
from repro.errors import QueryError, RankingError, ReproError
from repro.integration.builder import BuildStats
from repro.integration.mediator import Mediator
from repro.integration.probability import ConfidenceRegistry
from repro.integration.query import ExploratoryQuery, select_answers
from repro.integration.sources import DataSource

__all__ = ["Explanation", "Session", "open_session"]

SpecLike = Union[QuerySpec, Query, Mapping[str, object]]


@dataclass(frozen=True)
class Explanation:
    """Where a spec's answer comes from and what it costs.

    Produced by :meth:`Session.explain`; the spec *is* executed (builds
    and ranks through the ordinary path), so explaining a query warms
    the caches for it.
    """

    spec: QuerySpec
    #: served from the engine's epoch-guarded query cache?
    graph_cached: bool
    #: ranked from the fingerprint-keyed score cache?
    score_cached: bool
    builder: str
    backend: str
    nodes: int
    edges: int
    answers: int
    #: stats of the original materialisation (also when cache-served)
    build_stats: BuildStats
    #: content fingerprint of the compiled graph (compiled backend only)
    fingerprint: Optional[str]
    build_seconds: float
    rank_seconds: float
    #: cumulative engine counters after this execution
    engine_stats: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "graph_cached": self.graph_cached,
            "score_cached": self.score_cached,
            "builder": self.builder,
            "backend": self.backend,
            "nodes": self.nodes,
            "edges": self.edges,
            "answers": self.answers,
            "dangling_links": self.build_stats.dangling_links,
            "fingerprint": self.fingerprint,
            "build_seconds": self.build_seconds,
            "rank_seconds": self.rank_seconds,
            "engine_stats": self.engine_stats,
        }

    def __str__(self) -> str:
        graph_src = "query cache" if self.graph_cached else f"{self.builder} builder"
        score_src = "score cache" if self.score_cached else f"{self.backend} backend"
        return (
            f"{self.spec.entity_set}.{self.spec.attribute}="
            f"{self.spec.value!r} -> {sorted(self.spec.outputs)} "
            f"[{self.spec.method}]: graph {self.nodes}n/{self.edges}e "
            f"({self.answers} answers) from {graph_src} "
            f"({self.build_seconds * 1e3:.2f} ms), scores from {score_src} "
            f"({self.rank_seconds * 1e3:.2f} ms)"
        )


class Session:
    """A configured mediator + engine pair behind one stable surface.

    Construct via :func:`open_session` (or directly around an existing
    :class:`~repro.integration.mediator.Mediator`). Sessions are
    context managers; closing drops the engine caches.
    """

    def __init__(
        self,
        mediator: Optional[Mediator] = None,
        config: Optional[EngineConfig] = None,
        router: Optional[ShardRouter] = None,
        worker_source: Optional["WorkerSource"] = None,
    ) -> None:
        self._config = config or EngineConfig()
        self._mediator = mediator if mediator is not None else Mediator()
        self._engine = self._config.make_engine(self._mediator)
        # scatter/gather wiring: an explicit router (pre-partitioned
        # storage, e.g. mediated_layers(shards=)) wins; otherwise
        # config.shards > 1 derives partition views from the mediator
        if router is not None and self._config.shards not in (1, router.shards):
            raise QueryError(
                f"config.shards={self._config.shards} contradicts the "
                f"router's {router.shards} shards"
            )
        if router is None and self._config.shards > 1:
            router = ShardRouter.partition(
                self._mediator, self._config.shards, self._config.partitioner
            )
        self._router = router
        self._sharded: Optional[ShardedEngine] = None
        self._process: Optional["ProcessShardedEngine"] = None
        if router is not None and self._config.shard_mode == "process":
            if worker_source is None:
                raise QueryError(
                    'shard_mode="process" needs a worker_source recipe: '
                    "worker processes cannot inherit live mediators, they "
                    "rebuild their shard from a WorkerSource (see "
                    "MediatedWorkload.worker_source())"
                )
            # imported lazily: repro.serving pulls repro.api.result in,
            # and this module is imported while repro.api initialises
            from repro.serving.engine import ProcessShardedEngine

            self._process = ProcessShardedEngine(
                router,
                worker_source,
                backend=self._config.backend,
                builder=self._config.builder,
                cache_scores=self._config.cache_scores,
                max_cached_scores=self._config.max_cached_scores,
                cache_graphs=self._config.cache_graphs,
                max_cached_graphs=self._config.max_cached_graphs,
                incremental=self._config.incremental,
                rpc_timeout=self._config.rpc_timeout,
                worker_restarts=self._config.worker_restarts,
            )
        elif router is not None:
            if worker_source is not None:
                raise QueryError(
                    'worker_source only applies to shard_mode="process"'
                )
            self._sharded = ShardedEngine(
                router,
                backend=self._config.backend,
                builder=self._config.builder,
                cache_scores=self._config.cache_scores,
                max_cached_scores=self._config.max_cached_scores,
                cache_graphs=self._config.cache_graphs,
                max_cached_graphs=self._config.max_cached_graphs,
            )
        elif worker_source is not None:
            raise QueryError(
                "worker_source needs a sharded session (pass a router or "
                "config.shards > 1)"
            )
        #: derived answer-set views per shared (union) graph, so batches
        #: re-served from the query cache also reuse their derived
        #: graphs — and therefore the compile cache
        self._derived: "weakref.WeakKeyDictionary[QueryGraph, Dict[Tuple[str, ...], QueryGraph]]" = (
            weakref.WeakKeyDictionary()
        )
        # weakref containers are not thread-safe; execute_many's pool
        # workers probe/populate the derived-view cache concurrently
        self._derived_lock = threading.Lock()
        # the execute_many batch pool: created lazily on the first
        # parallel batch, reused across calls, reaped by close()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._admission: Optional["AdmissionGate"] = None
        self._closed = False

    # -------------------------------------------------------------- #
    # plumbing access (escape hatches, not the primary surface)
    # -------------------------------------------------------------- #

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def mediator(self) -> Mediator:
        return self._mediator

    @property
    def engine(self) -> RankingEngine:
        """The single serving engine (unsharded sessions), also used by
        :meth:`rank`/:meth:`rank_many` on pre-built graphs. Sharded
        execution runs through :attr:`sharded_engine` instead."""
        return self._engine

    @property
    def sharded(self) -> bool:
        """Whether mediated execution scatters across shards."""
        return self._sharded is not None or self._process is not None

    @property
    def router(self) -> Optional[ShardRouter]:
        return self._router

    @property
    def sharded_engine(self) -> Optional[ShardedEngine]:
        return self._sharded

    @property
    def process_engine(self) -> Optional["ProcessShardedEngine"]:
        """The process-mode scatter/gather engine (``None`` unless the
        session was opened with ``shard_mode="process"``)."""
        return self._process

    @property
    def admission(self) -> Optional["AdmissionGate"]:
        """The session's bounded admission gate, or ``None`` when the
        config leaves admission unbounded (``max_queue_depth=None``).

        Built lazily from ``config.max_concurrency`` /
        ``config.max_queue_depth`` / ``config.retry_after`` and wired to
        the engine's queued/shed counters. The HTTP front door admits
        every execution request through this gate; direct callers may
        too (``with session.admission: ...``)."""
        if self._config.max_queue_depth is None:
            return None
        if self._admission is None:
            with self._pool_lock:
                if self._admission is None:
                    from repro.async_.admission import AdmissionGate

                    self._admission = AdmissionGate(
                        self._config.max_concurrency,
                        self._config.max_queue_depth,
                        retry_after=self._config.retry_after,
                        on_queued=self._engine.note_queued,
                        on_shed=self._engine.note_shed,
                    )
        return self._admission

    def register(self, *sources: DataSource) -> "Session":
        """Register additional data sources (chainable).

        On a sharded session the source is registered with the base
        mediator *and* replicated into every shard mediator — execution
        runs against the shards, and a replicated (unpartitioned)
        source keeps every answer's ancestor closure shard-complete,
        so the equivalence guarantee is preserved. A source that would
        hang a new outgoing relationship off a *partitioned* entity set
        is rejected up front (it would break that guarantee).
        """
        self._check_open()
        if self._process is not None:
            raise QueryError(
                "cannot register sources on a process-sharded session: "
                "the shard mediators live in worker processes that "
                "rebuild from the worker-source recipe; regenerate the "
                "workload (or recipe) with the new source instead"
            )
        if self._router is not None:
            for source in sources:
                self._router.check_registrable(source)
        for source in sources:
            self._mediator.register(source)
            if self._router is not None:
                for shard_mediator in self._router.mediators:
                    shard_mediator.register(source)
        return self

    def create_database(self, name: str = "db") -> "Database":
        """A new :class:`~repro.storage.database.Database` on this
        session's configured storage backend.

        With ``EngineConfig(storage="sqlite", storage_path=...)`` the
        database persists to ``<storage_path>/<name>.sqlite``; source
        generators can load it once and serve every later session from
        disk through the warm query cache.

        Example::

            >>> from repro.api import EngineConfig, open_session
            >>> session = open_session(config=EngineConfig(storage="columnar"))
            >>> session.create_database("genes").storage
            'columnar'
        """
        self._check_open()
        return self._config.make_database(name)

    # -------------------------------------------------------------- #
    # execution
    # -------------------------------------------------------------- #

    def execute(self, spec: SpecLike) -> ResultSet:
        """Execute one spec end to end: materialise (or cache-hit) the
        query graph, rank it, and wrap the answers in a
        :class:`~repro.api.result.ResultSet`.

        ``spec`` may be a :class:`~repro.api.spec.QuerySpec`, an
        unbuilt :class:`~repro.api.spec.Query` builder, or a spec dict.

        Example (over a generated two-layer workload)::

            >>> from repro.workloads import mediated_layers
            >>> workload = mediated_layers(layers=2, width=4, fan_out=2, rng=7)
            >>> with workload.open_session() as session:
            ...     results = session.execute(workload.spec(method="path_count"))
            ...     results[0].entity_set, len(results) > 0
            ('E1', True)
        """
        self._check_open()
        spec = self._coerce(spec)
        if self._sharded is not None or self._process is not None:
            return self._execute_sharded(spec)
        qg = self._engine.execute(
            spec.to_exploratory(), builder=self._config.builder
        )
        return self._rank_graph(qg, spec)

    def try_cached(self, spec: SpecLike) -> Optional[ResultSet]:
        """Serve ``spec`` entirely from the engine caches, or report
        ``None`` without executing anything.

        The async session's inline fast path: a fully cache-resident
        request is a few dictionary probes, cheap enough to answer on
        the event loop instead of paying an executor round trip. The
        result is bit-identical to :meth:`execute` (same cached scores,
        same graph). Sharded sessions always report ``None`` — their
        caches live in the shard engines (or worker processes)."""
        self._check_open()
        spec = self._coerce(spec)
        if self._sharded is not None or self._process is not None:
            return None
        served = self._engine.serve_cached(
            spec.to_exploratory(),
            spec.method,
            builder=self._config.builder,
            **spec.options.to_kwargs(spec.method, spec.seed),
        )
        if served is None:
            return None
        qg, ranked = served
        return ResultSet(ranked, qg, spec=spec)

    def _execute_sharded(
        self, spec: QuerySpec, max_workers: Optional[int] = None
    ) -> ResultSet:
        """Scatter/gather execution of one coerced spec (thread- or
        process-mode, whichever the session was opened with).

        ``max_workers=None`` scatters as wide as the relevant shard
        count on the engine's persistent pool — scatter width is the
        point of sharding, so the session does not clamp it to
        ``config.max_workers`` (which governs ``execute_many``'s
        spec-level batching)."""
        if self._process is not None:
            from repro.serving.result import ProcessShardedResultSet

            process_gathered = self._process.gather(
                spec.to_exploratory(),
                spec.method,
                max_workers=max_workers,
                spec_dict=spec.to_dict(),
            )
            return ProcessShardedResultSet(process_gathered, self._process, spec)
        gathered = self._sharded.gather(
            spec.to_exploratory(),
            spec.method,
            options=spec.options.to_kwargs(spec.method, spec.seed),
            builder=self._config.builder,
            max_workers=max_workers,
        )
        return ShardedResultSet(
            gathered.ranked, gathered.owners, gathered.source, spec=spec
        )

    def execute_many(
        self,
        specs: Iterable[SpecLike],
        max_workers: Optional[int] = None,
        return_errors: bool = False,
    ) -> List[Union[ResultSet, ReproError]]:
        """Execute a batch of independent specs, set-at-a-time.

        Batching beats a loop of :meth:`execute` three ways: identical
        specs are answered once, specs sharing a traversal (same entity
        set / attribute / value) share a single graph materialisation
        regardless of their output sets, and distinct traversal groups
        run on a thread pool of ``max_workers`` threads (default: the
        session config's ``max_workers``).

        On a **sharded** session the parallelism axis is the shards,
        not the specs: unique specs run in sequence and each scatters
        across its relevant shards on the engine's persistent pool —
        as wide as the shard count by default, which is the point of
        sharding; ``config.max_workers`` does not bound it. Pass
        ``max_workers`` explicitly to cap the per-spec scatter width.

        Results come back in spec order. With ``return_errors=True`` a
        failing spec yields its exception in place instead of raising.

        Example::

            >>> from repro.workloads import mediated_layers
            >>> workload = mediated_layers(layers=3, width=4, fan_out=2, rng=7)
            >>> batch = workload.serving_batch(methods=("in_edge",))
            >>> with workload.open_session() as session:
            ...     results = session.execute_many(batch)
            ...     len(results) == len(batch)
            True
        """
        self._check_open()
        coerced = [self._coerce(spec) for spec in specs]
        results: List[Optional[Union[ResultSet, ReproError]]] = [None] * len(coerced)

        # identical specs collapse into one execution
        slots: Dict[QuerySpec, List[int]] = {}
        for index, spec in enumerate(coerced):
            slots.setdefault(spec, []).append(index)

        if self._sharded is not None or self._process is not None:
            # sharded batches parallelise across *shards* per spec (the
            # scatter pool); specs run in sequence, deduplicated, with
            # the same result-order and error semantics as below.
            # ``max_workers`` bounds the scatter width of each spec.
            for spec, indexes in slots.items():
                try:
                    outcome: Union[ResultSet, ReproError] = self._execute_sharded(
                        spec, max_workers=max_workers
                    )
                except ReproError as exc:
                    outcome = exc
                for index in indexes:
                    results[index] = outcome
            if not return_errors:
                for outcome in results:
                    if isinstance(outcome, BaseException):
                        raise outcome
            return results  # type: ignore[return-value]

        # specs sharing a traversal share one materialised graph
        groups: Dict[Tuple, List[QuerySpec]] = {}
        for spec in slots:
            groups.setdefault(spec.traversal_signature, []).append(spec)
        group_list = list(groups.values())

        workers = self._config.max_workers if max_workers is None else max_workers
        if workers > 1 and len(group_list) > 1:
            if workers == self._config.max_workers:
                # the session's persistent pool — hoisted out of the
                # call so repeated batches stop paying thread
                # spawn/teardown on every invocation
                group_results = list(
                    self._executor().map(self._run_group, group_list)
                )
            else:
                # an explicit non-default width gets a transient pool
                # of exactly that size
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    group_results = list(pool.map(self._run_group, group_list))
        else:
            group_results = [self._run_group(group) for group in group_list]

        for group_result in group_results:
            for spec, outcome in group_result:
                for index in slots[spec]:
                    results[index] = outcome
        if not return_errors:
            for outcome in results:
                if isinstance(outcome, BaseException):
                    raise outcome
        return results  # type: ignore[return-value]

    def _executor(self) -> ThreadPoolExecutor:
        """The session's persistent batch pool (lazily created, sized
        ``config.max_workers``, reaped by :meth:`close`)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._config.max_workers,
                    thread_name_prefix="repro-batch",
                )
            return self._pool

    def _run_group(
        self, group: Sequence[QuerySpec]
    ) -> List[Tuple[QuerySpec, Union[ResultSet, ReproError]]]:
        """Execute the specs of one traversal group over one shared
        graph materialisation."""
        union_outputs = sorted(set().union(*(spec.outputs for spec in group)))
        base = group[0]
        try:
            union_qg = self._engine.execute(
                ExploratoryQuery(
                    base.entity_set, base.attribute, base.value, union_outputs
                ),
                builder=self._config.builder,
            )
        except ReproError:
            # the union failed (e.g. no answers in *any* requested
            # set); fall back to direct execution so every spec gets
            # exactly the error (or result) execute() would give it
            outcomes = []
            for spec in group:
                try:
                    outcomes.append((spec, self.execute(spec)))
                except ReproError as exc:
                    outcomes.append((spec, exc))
            return outcomes
        outcomes: List[Tuple[QuerySpec, Union[ResultSet, ReproError]]] = []
        for spec in group:
            try:
                qg = self._graph_for(spec, union_qg, union_outputs)
                outcomes.append((spec, self._rank_graph(qg, spec)))
            except ReproError as exc:
                outcomes.append((spec, exc))
        return outcomes

    def _graph_for(
        self,
        spec: QuerySpec,
        union_qg: QueryGraph,
        union_outputs: Sequence[str],
    ) -> QueryGraph:
        """The spec's answer-set view of a shared traversal graph."""
        if set(spec.outputs) == set(union_outputs):
            return union_qg
        with self._derived_lock:
            views = self._derived.setdefault(union_qg, {})
            cached = views.get(spec.outputs)
        if cached is not None:
            return cached
        # the same filter (and the same empty-answer QueryError) as
        # direct execution, so batching and execute() fail identically
        answers = select_answers(union_qg.graph, union_qg.targets, spec.outputs)
        derived = QueryGraph(union_qg.graph, union_qg.source, answers)
        with self._derived_lock:
            derived = views.setdefault(spec.outputs, derived)
        return derived

    # -------------------------------------------------------------- #
    # ranking pre-built graphs
    # -------------------------------------------------------------- #

    def rank(
        self,
        graph: QueryGraph,
        method: str = "reliability",
        options: Optional[Union[RankingOptions, Mapping[str, object]]] = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> ResultSet:
        """Rank an already-materialised query graph (synthetic
        workloads, generated cases) through the session's engine.
        ``options`` accepts a :class:`RankingOptions` or a plain
        mapping of its fields."""
        self._check_open()
        if options is None:
            options = RankingOptions()
        elif not isinstance(options, RankingOptions):
            options = RankingOptions.from_dict(options)
        ranked = self._engine.rank(
            graph, method, backend=backend, **options.to_kwargs(method, seed)
        )
        return ResultSet(ranked, graph)

    def rank_many(self, targets: Iterable[object], **kwargs: object) -> List:
        """Batch passthrough to
        :meth:`~repro.engine.RankingEngine.rank_many` (experiment
        drivers that sweep methods over shared compilations)."""
        self._check_open()
        return self._engine.rank_many(targets, **kwargs)

    def _rank_graph(self, qg: QueryGraph, spec: QuerySpec) -> ResultSet:
        ranked = self._engine.rank(
            qg, spec.method, **spec.options.to_kwargs(spec.method, spec.seed)
        )
        return ResultSet(ranked, qg, spec=spec)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    def explain(self, spec: SpecLike) -> Explanation:
        """Execute ``spec`` and report build stats, sizes, timings and
        cache provenance (graph/score cache vs fresh computation).

        Example (the second run is served from the caches)::

            >>> from repro.workloads import mediated_layers
            >>> workload = mediated_layers(layers=2, width=4, fan_out=2, rng=7)
            >>> spec = workload.spec(method="in_edge")
            >>> with workload.open_session() as session:
            ...     first = session.explain(spec)
            ...     second = session.explain(spec)
            >>> first.graph_cached, second.graph_cached, second.score_cached
            (False, True, True)
        """
        self._check_open()
        spec = self._coerce(spec)
        if self._process is not None:
            process_gathered = self._process.gather(
                spec.to_exploratory(),
                spec.method,
                spec_dict=spec.to_dict(),
            )
            return Explanation(
                spec=spec,
                graph_cached=process_gathered.graph_cached,
                score_cached=process_gathered.score_cached,
                builder=self._config.builder,
                backend=self._config.backend,
                nodes=process_gathered.nodes,
                edges=process_gathered.edges,
                answers=len(process_gathered.scores),
                build_stats=process_gathered.build_stats,
                fingerprint=None,
                build_seconds=process_gathered.build_seconds,
                rank_seconds=process_gathered.rank_seconds,
                engine_stats=self._process.stats_snapshot().as_dict(),
            )
        if self._sharded is not None:
            gathered = self._sharded.gather(
                spec.to_exploratory(),
                spec.method,
                options=spec.options.to_kwargs(spec.method, spec.seed),
                builder=self._config.builder,
            )
            # node/edge totals are summed across the shard graphs
            # (replicated ancestors count once per shard); there is no
            # single compiled graph, hence no fingerprint
            return Explanation(
                spec=spec,
                graph_cached=gathered.graph_cached,
                score_cached=gathered.score_cached,
                builder=self._config.builder,
                backend=self._config.backend,
                nodes=gathered.nodes,
                edges=gathered.edges,
                answers=len(gathered.ranked.scores),
                build_stats=gathered.build_stats,
                fingerprint=None,
                build_seconds=gathered.build_seconds,
                rank_seconds=gathered.rank_seconds,
                engine_stats=self._sharded.stats_snapshot().as_dict(),
            )
        started = time.perf_counter()
        qg, build_stats, graph_cached = self._engine.execute_with_stats(
            spec.to_exploratory(), builder=self._config.builder
        )
        build_seconds = time.perf_counter() - started
        started = time.perf_counter()
        _, score_cached = self._engine.rank_with_stats(
            qg, spec.method, **spec.options.to_kwargs(spec.method, spec.seed)
        )
        rank_seconds = time.perf_counter() - started
        # report the fingerprint only if ranking (now or earlier)
        # actually compiled this graph — never force a compilation
        fingerprint = self._engine.cached_fingerprint(qg)
        return Explanation(
            spec=spec,
            graph_cached=graph_cached,
            score_cached=score_cached,
            builder=self._config.builder,
            backend=self._config.backend,
            nodes=qg.graph.num_nodes,
            edges=qg.graph.num_edges,
            answers=len(qg.targets),
            build_stats=build_stats,
            fingerprint=fingerprint,
            build_seconds=build_seconds,
            rank_seconds=rank_seconds,
            engine_stats=self._engine.stats_snapshot().as_dict(),
        )

    def lint(
        self,
        select: Optional[Sequence[str]] = None,
        suppressions: Sequence[Mapping[str, object]] = (),
    ) -> "AnalysisReport":
        """Run the static detector suite over this session's schema.

        Returns an :class:`~repro.analysis.AnalysisReport`; ``select``
        restricts the run to the named REPRO codes and ``suppressions``
        silences matching findings (see
        :func:`repro.analysis.load_baseline`). Linting is read-only: it
        never moves the mediator epoch, a table version or an engine
        cache counter.

        Example::

            >>> from repro.workloads import mediated_layers
            >>> with mediated_layers(layers=2, width=4, rng=7).open_session() as session:
            ...     session.lint().exit_code
            0
        """
        self._check_open()
        from repro.analysis import AnalysisContext, run_analysis

        context = AnalysisContext.from_session(self)
        return run_analysis(context, select=select, suppressions=suppressions)

    def stats(self) -> EngineStats:
        """The engine's cumulative cache-effectiveness counters (live
        object; use :meth:`stats_snapshot` for before/after deltas).
        On a sharded session this is the aggregated snapshot over every
        child engine; per-shard counters are on :meth:`shard_stats`."""
        if self._process is not None:
            return self._merge_serving_counters(self._process.stats_snapshot())
        if self._sharded is not None:
            return self._merge_serving_counters(self._sharded.stats_snapshot())
        return self._engine.stats

    def stats_snapshot(self) -> EngineStats:
        """A lock-consistent copy of the counters (aggregated over the
        shards when sharded)."""
        if self._process is not None:
            return self._merge_serving_counters(self._process.stats_snapshot())
        if self._sharded is not None:
            return self._merge_serving_counters(self._sharded.stats_snapshot())
        return self._engine.stats_snapshot()

    def _merge_serving_counters(self, aggregate: EngineStats) -> EngineStats:
        """Session-level admission and coalescing are recorded on the
        *local* engine even when execution scatters across shards; fold
        those counters into the shard aggregate so the serving surface
        reports them in one place."""
        local = self._engine.stats_snapshot()
        aggregate.coalesced_queries += local.coalesced_queries
        aggregate.queued_queries += local.queued_queries
        aggregate.shed_queries += local.shed_queries
        return aggregate

    def shard_stats(self) -> List[EngineStats]:
        """Per-shard counter snapshots (empty when unsharded)."""
        if self._process is not None:
            return self._process.shard_stats()
        if self._sharded is None:
            return []
        return self._sharded.shard_stats()

    def reset_stats(self) -> None:
        self._engine.reset_stats()
        if self._sharded is not None:
            self._sharded.reset_stats()
        if self._process is not None:
            self._process.reset_stats()

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    def close(self) -> None:
        """Drop all cached state; further execution raises.

        On a process-sharded session this also reaps every worker
        process and releases their sockets (graceful shutdown RPC
        first, SIGKILL as the backstop) — no zombies survive a closed
        session. Idempotent: closing twice is a no-op, and the engine
        teardown runs even if cache invalidation raises."""
        if not self._closed:
            self._closed = True
            try:
                self._engine.invalidate()
            finally:
                with self._pool_lock:
                    pool, self._pool = self._pool, None
                if pool is not None:
                    pool.shutdown(wait=True)
                if self._sharded is not None:
                    self._sharded.close()
                if self._process is not None:
                    self._process.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        if self._process is not None:
            shards = f" shards={self._process.shards} (process)"
        elif self._sharded is not None:
            shards = f" shards={self._sharded.shards}"
        else:
            shards = ""
        return (
            f"<Session {state} sources={len(self._mediator.sources)} "
            f"backend={self._config.backend!r} "
            f"builder={self._config.builder!r}{shards}>"
        )

    # -------------------------------------------------------------- #
    # helpers
    # -------------------------------------------------------------- #

    def _check_open(self) -> None:
        if self._closed:
            raise RankingError("this session is closed")

    @staticmethod
    def _coerce(spec: SpecLike) -> QuerySpec:
        if isinstance(spec, QuerySpec):
            return spec
        if isinstance(spec, Query):
            return spec.build()
        if isinstance(spec, Mapping):
            return QuerySpec.from_dict(spec)
        raise QueryError(
            f"cannot execute {type(spec).__name__}; expected a QuerySpec, "
            f"a Query builder, or a spec dict"
        )


def open_session(
    sources: Iterable[DataSource] = (),
    mediator: Optional[Mediator] = None,
    confidences: Optional[ConfidenceRegistry] = None,
    config: Optional[EngineConfig] = None,
    shards: Optional[int] = None,
    router: Optional[ShardRouter] = None,
    worker_source: Optional["WorkerSource"] = None,
    lint: str = "off",
) -> Session:
    """Open a :class:`Session` over the given data sources.

    Either pass ``sources`` (plus optional ``confidences``) to build a
    fresh mediator, or an existing ``mediator`` to wrap; passing both a
    mediator and sources/confidences is ambiguous and rejected. With
    neither, the session starts empty — usable for ranking pre-built
    graphs and for registering sources later (unsharded sessions only).

    ``shards=N`` (shorthand for ``config.shards``) turns the session
    into a scatter/gather deployment: the mediator is partitioned into
    N views over its sink entity sets and every spec executes across N
    child engines, with rankings identical to the unsharded session.
    The partition layout is derived at open time, so a sharded session
    must be opened *with* its sources; further sources can still be
    registered later (they are replicated to every shard).
    An explicit ``router`` wires pre-partitioned per-shard mediators
    instead (see :func:`repro.workloads.mediated_layers` with
    ``shards=``).

    With ``config.shard_mode="process"`` the shards are promoted to
    supervised worker *processes* (see :mod:`repro.serving`); that mode
    additionally needs a ``worker_source`` recipe telling each worker
    how to rebuild its shard mediator —
    :meth:`~repro.workloads.mediated.MediatedWorkload.open_session`
    wires it automatically for generated workloads.

    ``lint`` gates the schema through :mod:`repro.analysis` at open
    time: ``"warn"`` emits a :class:`UserWarning` per finding,
    ``"error"`` additionally **refuses** the session — closing it and
    raising :class:`~repro.errors.AnalysisError` — when any
    error-severity detection fires (default ``"off"``).

    Example::

        >>> with open_session() as session:
        ...     session.closed
        False
        >>> session.closed
        True
    """
    sources = tuple(sources)
    if mediator is not None and (sources or confidences is not None):
        raise QueryError(
            "pass either an existing mediator or sources/confidences to "
            "build one, not both"
        )
    if mediator is None:
        mediator = Mediator(confidences=confidences)
        for source in sources:
            mediator.register(source)
    if shards is not None:
        from dataclasses import replace

        base = config or EngineConfig()
        if base.shards not in (1, shards):
            raise QueryError(
                f"shards={shards} contradicts config.shards={base.shards}"
            )
        config = replace(base, shards=shards)
    if lint not in ("off", "warn", "error"):
        raise QueryError(
            f'lint must be "off", "warn" or "error", got {lint!r}'
        )
    session = Session(
        mediator=mediator, config=config, router=router,
        worker_source=worker_source,
    )
    if lint != "off":
        import warnings as _warnings

        from repro.analysis import Severity
        from repro.errors import AnalysisError

        report = session.lint()
        for detection in report.detections:
            _warnings.warn(str(detection), stacklevel=2)
        if lint == "error":
            errors = report.by_severity(Severity.ERROR)
            if errors:
                session.close()
                codes = sorted({d.code for d in errors})
                raise AnalysisError(
                    f"schema rejected by static analysis: "
                    f"{len(errors)} error-severity detection(s) "
                    f"({', '.join(codes)}); fix them, suppress them via "
                    f"Session.lint(suppressions=...), or open with "
                    f"lint='warn'",
                    detections=errors,
                )
    return session
