"""Table 3: ranks of the expert-assigned function of each hypothetical
protein under the five methods (plus the Random interval ``1-n``)."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.biology.scenarios import SCENARIO3_PROTEINS, build_scenario
from repro.experiments.runner import (
    ALL_METHODS,
    DEFAULT_SEED,
    METHOD_LABELS,
    RANK_OPTIONS,
    default_session,
    format_table,
    split_rank_options,
)
from repro.metrics.ranking import format_rank_interval, interval_midpoint

__all__ = ["Table3Row", "compute", "main"]


@dataclass
class Table3Row:
    protein: str
    go_id: str
    ranks: Dict[str, Tuple[int, int]]


def compute(seed: int = DEFAULT_SEED) -> List[Table3Row]:
    functions = {protein: go for protein, go, _ in SCENARIO3_PROTEINS}
    session = default_session()
    per_method = {
        method: split_rank_options(RANK_OPTIONS.get(method))
        for method in ALL_METHODS
    }
    rows: List[Table3Row] = []
    for case in build_scenario(3, seed=seed):
        go_id = functions[case.name]
        node = case.case.go_node(go_id)
        ranks = {
            method: session.rank(
                case.query_graph,
                method,
                options=per_method[method][0],
                seed=per_method[method][1],
            )
            .entity(node)
            .rank_interval
            for method in ALL_METHODS
        }
        ranks["random"] = (1, case.n_total)
        rows.append(Table3Row(case.name, go_id, ranks))
    return rows


def main(seed: int = DEFAULT_SEED) -> str:
    rows = compute(seed=seed)
    methods = list(ALL_METHODS) + ["random"]
    body = [
        (
            row.protein,
            row.go_id,
            *(format_rank_interval(row.ranks[m]) for m in methods),
        )
        for row in rows
    ]
    means = {
        m: statistics.mean(interval_midpoint(r.ranks[m]) for r in rows)
        for m in methods
    }
    stdevs = {
        m: statistics.pstdev(interval_midpoint(r.ranks[m]) for r in rows)
        for m in methods
    }
    body.append(("Mean", "", *(f"{means[m]:.1f}" for m in methods)))
    body.append(("Stdv", "", *(f"{stdevs[m]:.1f}" for m in methods)))
    table = format_table(
        ("Protein", "Function", *(METHOD_LABELS[m] for m in methods)),
        body,
        title="Table 3: 11 hypothetical proteins "
        "(paper means: Rel 2.3, Prop 2.5, Diff 3.8, InEdge 3.5, PathC 3.5, Random 15.3)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
