"""§5 "Divergent and non-workflow schemas": the star-schema ablation.

The paper *conceives* of (but does not evaluate) a scenario where
entries from different databases cannot be linked together, so the
integrated result is a divergent star: every candidate answer hangs off
exactly one evidence path. InEdge and PathCount then see one edge/path
everywhere — a single giant tie, no better than random — while
"taking into account the strength of each individual path is the only
way to rank results".

This module builds that scenario with the standard generator (every
function carries exactly one family-match path; no BLAST pool, so
nothing ever converges) and evaluates all five methods. Expected shape:
reliability ≈ propagation ≈ diffusion well above random; InEdge =
PathCount = random exactly.
"""

from __future__ import annotations

from typing import List, Optional

from repro.biology import evidence as profiles
from repro.biology.generator import CaseSpec, ProteinCaseGenerator
from repro.biology.scenarios import ScenarioCase
from repro.experiments.runner import (
    DEFAULT_SEED,
    MethodScore,
    evaluate_scenario_ap,
    format_table,
)

__all__ = ["STAR_CASES", "build_star_cases", "compute", "main"]

#: synthetic star-world proteins: (name, answer-set size)
STAR_CASES = (
    ("STARP01", 40),
    ("STARP02", 25),
    ("STARP03", 60),
    ("STARP04", 15),
    ("STARP05", 35),
    ("STARP06", 50),
    ("STARP07", 20),
    ("STARP08", 30),
)


def build_star_cases(
    seed: int = DEFAULT_SEED, limit: Optional[int] = None
) -> List[ScenarioCase]:
    """Generate the divergent-star evaluation cases.

    Each case has one relevant function with a single moderately strong
    path and ``n_total - 1`` decoys with single weaker paths; there is no
    BLAST pool, so no two paths ever share structure.
    """
    generator = ProteinCaseGenerator(rng=seed)
    cases: List[ScenarioCase] = []
    for index, (name, n_total) in enumerate(STAR_CASES[:limit]):
        true_go = f"GO:095{index:04d}"
        spec = CaseSpec(
            protein=name,
            n_gold=0,
            n_total=n_total,
            true_go_ids=(true_go,),
            homolog_pool=0,
            decoy_mixture=((profiles.STAR_DECOY, 1.0),),
            true_profile=profiles.STAR_TRUE,
        )
        generated = generator.generate(spec)
        cases.append(ScenarioCase(name, generated, relevant=generated.true_nodes))
    return cases


def compute(
    seed: int = DEFAULT_SEED, limit: Optional[int] = None
) -> List[MethodScore]:
    return evaluate_scenario_ap(build_star_cases(seed=seed, limit=limit))


def main(seed: int = DEFAULT_SEED) -> str:
    scores = compute(seed=seed)
    rows = [
        (score.label, f"{score.mean_ap:.2f}", f"{score.std_ap:.2f}")
        for score in scores
    ]
    table = format_table(
        ("Method", "AP", "Std"),
        rows,
        title=(
            "§5 divergent star schema: single-path evidence only\n"
            "(expected: probabilistic methods well above random; "
            "InEdge = PathCount = Random exactly)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
