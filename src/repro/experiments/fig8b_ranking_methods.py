"""Fig 8b: cost of the five ranking methods on the scenario-1 graphs.

Reliability is evaluated with the paper's benchmark configuration —
graph reduction followed by 1,000 traversal Monte Carlo trials (the
"R&M2" winner of Fig 8a). The paper's shape: the deterministic methods
are one to two orders of magnitude cheaper than the probabilistic ones,
with reliability the most expensive, yet all stay interactive.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api import EngineConfig, RankingOptions, Session
from repro.biology.scenarios import build_scenario
from repro.experiments.runner import (
    ALL_METHODS,
    DEFAULT_SEED,
    METHOD_LABELS,
    format_table,
)

__all__ = ["MethodTiming", "compute", "main"]

#: per-method options for the timing run (reliability = R&M2)
TIMING_OPTIONS: Dict[str, RankingOptions] = {
    "reliability": RankingOptions(strategy="mc", trials=1000, reduce=True),
}

#: the Monte Carlo seed of the timing run
TIMING_SEED = 1

PAPER_MS = {
    "reliability": 17.9,
    "propagation": 5.2,
    "diffusion": 5.8,
    "in_edge": 0.5,
    "path_count": 1.0,
}


@dataclass
class MethodTiming:
    method: str
    mean_ms: float
    std_ms: float


def compute(
    seed: int = DEFAULT_SEED,
    limit: Optional[int] = None,
    backend: str = "reference",
) -> List[MethodTiming]:
    cases = build_scenario(1, seed=seed, limit=limit)
    # score caching off: a cache hit would time a dict probe, not ranking
    session = Session(config=EngineConfig(backend=backend, cache_scores=False))
    # time scoring only, as the paper does: the engine call, without the
    # facade's ResultSet wrapping (material on the sub-millisecond rows)
    engine = session.engine
    timings: List[MethodTiming] = []
    for method in ALL_METHODS:
        samples = []
        options = TIMING_OPTIONS.get(method) or RankingOptions()
        kwargs = options.to_kwargs(method, TIMING_SEED)
        for case in cases:
            start = time.perf_counter()
            engine.rank(case.query_graph, method, **kwargs)
            samples.append((time.perf_counter() - start) * 1000.0)
        timings.append(
            MethodTiming(
                method=method,
                mean_ms=statistics.mean(samples),
                std_ms=statistics.pstdev(samples) if len(samples) > 1 else 0.0,
            )
        )
    return timings


def main(seed: int = DEFAULT_SEED, limit: Optional[int] = None) -> str:
    timings = compute(seed=seed, limit=limit)
    rows = [
        (
            METHOD_LABELS[t.method],
            f"{t.mean_ms:.2f}",
            f"{t.std_ms:.2f}",
            PAPER_MS[t.method],
        )
        for t in timings
    ]
    table = format_table(
        ("method", "mean ms (ours)", "std", "paper ms"),
        rows,
        title="Fig 8b: cost of the 5 ranking methods (scenario-1 graphs)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
