"""Regenerators for every table and figure of the paper's evaluation.

Each module reproduces one artefact and exposes two call points:

* ``compute(...)`` — returns the underlying data (used by tests and the
  pytest-benchmark suite);
* ``main(...)`` — prints the same rows/series the paper reports.

Run everything with ``python -m repro.experiments``, or one artefact
with e.g. ``python -m repro.experiments fig5``.

===========================  ==================================================
module                       paper artefact
===========================  ==================================================
``fig1_schema``              Fig 1 query source graph + §2 source catalogue
``fig2_reducibility``        Fig 2/3 reducible vs irreducible schemas (Thm 3.2)
``fig4_topologies``          Fig 4 five scores on the two toy topologies
``table1_scenario1``         Table 1 protein/function counts + graph sizes
``fig5_scenarios``           Fig 5a/5b/5c average precision per method
``table2_scenario2``         Table 2 per-function ranks, scenario 2
``table3_scenario3``         Table 3 per-function ranks, scenario 3
``fig6_sensitivity``         Fig 6 robustness to input-probability noise
``fig7_convergence``         Fig 7 Monte Carlo convergence
``fig8a_reliability_methods``  Fig 8a reliability evaluation strategies
``fig8b_ranking_methods``    Fig 8b cost of the five ranking methods
``thm31_bounds``             Theorem 3.1 trial bounds (analytic + empirical)
``star_schema``              §5 divergent star schema ablation (extension)
===========================  ==================================================
"""

from repro.experiments.runner import (
    DEFAULT_SEED,
    MethodScore,
    evaluate_scenario_ap,
    format_table,
)

__all__ = [
    "DEFAULT_SEED",
    "MethodScore",
    "evaluate_scenario_ap",
    "format_table",
]
