"""Fig 9 / Fig 10: the *shape* of evidence, quantified.

The paper's Fig 9 is a conceptual sketch: well-known answers are backed
by **many** supporting paths, less-known ones by **few but strong**
paths — and that is why counting works for the former while only
probability-aware ranking finds the latter. This artefact measures the
sketch on the reconstructed data: for each scenario it reports, for
relevant vs non-relevant answers, the mean number of supporting paths
and the mean strength of the *strongest* path.

Expected shape: scenario 1 relevant answers dominate on path **count**;
scenario 2 relevant answers have fewer paths than typical decoys but a
far stronger best path; scenario 3 sits in between — the Fig 10
applicability matrix in numbers.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.biology.scenarios import build_scenario
from repro.core.paths import enumerate_paths
from repro.experiments.runner import DEFAULT_SEED, format_table

__all__ = ["EvidenceShape", "compute", "main"]


@dataclass
class EvidenceShape:
    """Mean evidence statistics for one group of answers."""

    group: str
    n_answers: int
    mean_paths: float
    mean_best_path: float


def _shape(group: str, samples: List[tuple]) -> EvidenceShape:
    return EvidenceShape(
        group=group,
        n_answers=len(samples),
        mean_paths=statistics.mean(count for count, _ in samples),
        mean_best_path=statistics.mean(best for _, best in samples),
    )


def compute(
    scenario: int, seed: int = DEFAULT_SEED, limit: Optional[int] = None
) -> Dict[str, EvidenceShape]:
    """Evidence-shape statistics of one scenario.

    Returns shapes keyed ``"relevant"`` and ``"other"``; path counts are
    capped at 200 per answer (well above anything the generator emits).
    """
    relevant_samples: List[tuple] = []
    other_samples: List[tuple] = []
    for case in build_scenario(scenario, seed=seed, limit=limit):
        qg = case.query_graph
        for target in qg.targets:
            paths = enumerate_paths(qg, target, max_paths=200)
            best = paths[0].probability if paths else 0.0
            sample = (len(paths), best)
            if target in case.relevant:
                relevant_samples.append(sample)
            else:
                other_samples.append(sample)
    return {
        "relevant": _shape("relevant", relevant_samples),
        "other": _shape("other", other_samples),
    }


def main(seed: int = DEFAULT_SEED) -> str:
    rows = []
    for scenario in (1, 2, 3):
        shapes = compute(scenario, seed=seed)
        for key in ("relevant", "other"):
            shape = shapes[key]
            rows.append(
                (
                    scenario,
                    shape.group,
                    shape.n_answers,
                    f"{shape.mean_paths:.1f}",
                    f"{shape.mean_best_path:.3f}",
                )
            )
    table = format_table(
        ("scenario", "answers", "n", "mean #paths", "mean best-path strength"),
        rows,
        title=(
            "Fig 9/10 quantified: evidence shape of relevant vs other answers\n"
            "(scenario 1: relevant wins on redundancy; scenario 2: relevant\n"
            "has FEWER paths but a much stronger best path)"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
