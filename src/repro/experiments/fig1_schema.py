"""Fig 1 and the §2 source catalogue: the mediated schema around the
running exploratory query ``(EntrezProtein.name = "ABCC8", AmiGO)``."""

from __future__ import annotations

from typing import Tuple

from repro.schema.biorank_schema import biorank_query_schema, full_source_catalog
from repro.schema.er import ERSchema
from repro.experiments.runner import format_table

__all__ = ["compute", "main"]


def compute() -> Tuple[ERSchema, list]:
    return biorank_query_schema(), full_source_catalog()


def main() -> str:
    schema, catalog = compute()
    relationship_rows = [
        (r.name, r.source, f"[{r.cardinality}]", r.target)
        for r in schema.relationships
    ]
    schema_table = format_table(
        ("relationship", "from", "cardinality", "to"),
        relationship_rows,
        title="Fig 1: the query source graph (schema level)",
    )
    catalog_table = format_table(
        ("source", "#E", "#R"),
        [(entry.name, entry.n_entities, entry.n_relationships) for entry in catalog],
        title="§2: the 11 connected data sources",
    )
    output = schema_table + "\n\n" + catalog_table
    print(output)
    return output


if __name__ == "__main__":
    main()
