"""Table 1: the 20 gold-standard proteins of scenario 1.

For each protein the paper lists the number of iProClass (gold)
functions, the number of functions in BioRank's answer set, and their
ratio. Our scenario builder reconstructs those counts exactly (they are
generation constraints, not predictions); the table additionally reports
the raw query-graph sizes, whose averages the paper quotes as ~520 nodes
and ~695 edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.biology.scenarios import build_scenario
from repro.experiments.runner import DEFAULT_SEED, format_table

__all__ = ["Table1Row", "compute", "main"]


@dataclass(frozen=True)
class Table1Row:
    protein: str
    n_gold: int
    n_answers: int
    nodes: int
    edges: int

    @property
    def percent(self) -> float:
        return 100.0 * self.n_gold / self.n_answers


def compute(seed: int = DEFAULT_SEED, limit: int = None) -> List[Table1Row]:
    rows: List[Table1Row] = []
    for case in build_scenario(1, seed=seed, limit=limit):
        graph = case.query_graph.graph
        rows.append(
            Table1Row(
                protein=case.name,
                n_gold=case.n_relevant,
                n_answers=case.n_total,
                nodes=graph.num_nodes,
                edges=graph.num_edges,
            )
        )
    return rows


def main(seed: int = DEFAULT_SEED) -> str:
    rows = compute(seed=seed)
    body = [
        (r.protein, r.n_gold, r.n_answers, f"{r.percent:.0f}%", r.nodes, r.edges)
        for r in rows
    ]
    total_gold = sum(r.n_gold for r in rows)
    total_answers = sum(r.n_answers for r in rows)
    # the paper's Sum-row percentage is the mean of the per-protein
    # ratios (306/1036 would be 30%, the printed 37% is the mean ratio);
    # note also that the #BioRank column actually sums to 1037
    mean_percent = sum(r.percent for r in rows) / len(rows)
    body.append(
        (
            "Sum",
            total_gold,
            total_answers,
            f"{mean_percent:.0f}%",
            f"avg {sum(r.nodes for r in rows) / len(rows):.0f}",
            f"avg {sum(r.edges for r in rows) / len(rows):.0f}",
        )
    )
    table = format_table(
        ("Protein", "#iProClass", "#BioRank", "%", "nodes", "edges"),
        body,
        title="Table 1: scenario 1 golden-standard proteins "
        "(paper sums: 306 / 1036 / 37%; avg graph 520 nodes, 695 edges)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
