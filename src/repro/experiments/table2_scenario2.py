"""Table 2: per-function ranks of the 7 newly published functions.

For each (protein, novel function) pair, the rank interval each method
assigns within the full answer set — ties shown as ``lo-hi`` intervals,
exactly like the paper — plus the per-method mean and standard deviation
of the interval midpoints (which is how the paper's Mean/Stdv rows are
computed; we verified its arithmetic: Rel 14.8, InEdge 36.6, Random 39.6
all reproduce from the printed intervals).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.biology.scenarios import SCENARIO2_FUNCTIONS, build_scenario
from repro.experiments.runner import (
    ALL_METHODS,
    DEFAULT_SEED,
    METHOD_LABELS,
    RANK_OPTIONS,
    default_session,
    format_table,
    split_rank_options,
)
from repro.metrics.ranking import format_rank_interval, interval_midpoint

__all__ = ["Table2Row", "compute", "main"]


@dataclass
class Table2Row:
    protein: str
    go_id: str
    pubmed_id: str
    year: int
    #: method -> (lo, hi) rank interval
    ranks: Dict[str, Tuple[int, int]]


def compute(seed: int = DEFAULT_SEED) -> List[Table2Row]:
    session = default_session()
    per_method = {
        method: split_rank_options(RANK_OPTIONS.get(method))
        for method in ALL_METHODS
    }
    rows: List[Table2Row] = []
    for case in build_scenario(2, seed=seed):
        ranked = {
            method: session.rank(
                case.query_graph,
                method,
                options=per_method[method][0],
                seed=per_method[method][1],
            )
            for method in ALL_METHODS
        }
        n_total = case.n_total
        for go_id, pubmed, year in SCENARIO2_FUNCTIONS[case.name]:
            node = case.case.go_node(go_id)
            ranks = {
                method: ranked[method].entity(node).rank_interval
                for method in ALL_METHODS
            }
            ranks["random"] = (1, n_total)
            rows.append(Table2Row(case.name, go_id, pubmed, year, ranks))
    return rows


def main(seed: int = DEFAULT_SEED) -> str:
    rows = compute(seed=seed)
    methods = list(ALL_METHODS) + ["random"]
    body = []
    for row in rows:
        body.append(
            (
                row.protein,
                row.go_id,
                f"{row.pubmed_id} ({row.year})",
                *(format_rank_interval(row.ranks[m]) for m in methods),
            )
        )
    means = {
        m: statistics.mean(interval_midpoint(r.ranks[m]) for r in rows)
        for m in methods
    }
    stdevs = {
        m: statistics.pstdev(interval_midpoint(r.ranks[m]) for r in rows)
        for m in methods
    }
    body.append(("Mean", "", "", *(f"{means[m]:.1f}" for m in methods)))
    body.append(("Stdv", "", "", *(f"{stdevs[m]:.1f}" for m in methods)))
    table = format_table(
        ("Protein", "Function", "PubMedID", *(METHOD_LABELS[m] for m in methods)),
        body,
        title="Table 2: ranks of the 7 newly published functions "
        "(paper means: Rel 14.8, Prop 16.7, Diff 6.5, InEdge 36.6, PathC 35.9)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
