"""Fig 7: speed of convergence of the Monte Carlo reliability estimate.

Repeats scenario-1 reliability ranking with the traversal Monte Carlo
estimator at n = 1, 3, 10, ..., 10000 trials (m repetitions each) and
reports mean ± std of the average precision, against the closed-solution
AP and the random-AP baseline. The paper's observation: 1,000 trials
already deliver very reliable rankings, consistent with the Theorem 3.1
bound of ~8k-10k trials for epsilon = 0.02.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.biology.scenarios import build_scenario
from repro.core.ranker import rank
from repro.experiments.runner import DEFAULT_SEED, format_table
from repro.metrics import expected_average_precision
from repro.utils.rng import ensure_rng

__all__ = ["ConvergencePoint", "TRIAL_LADDER", "compute", "main"]

TRIAL_LADDER: Sequence[int] = (1, 3, 10, 30, 100, 300, 1000, 3000, 10000)


@dataclass
class ConvergencePoint:
    trials: int
    mean_ap: float
    std_ap: float
    repetitions: int


def compute(
    trial_ladder: Sequence[int] = TRIAL_LADDER,
    repetitions: int = 10,
    seed: int = DEFAULT_SEED,
    limit: Optional[int] = 5,
) -> tuple:
    """Returns (points, closed_form_ap, random_ap).

    ``limit`` restricts the number of scenario-1 proteins (the full 20
    at 10k trials is minutes of work; 5 proteins shows the same curve).
    """
    cases = build_scenario(1, seed=seed, limit=limit)
    rng = ensure_rng(seed)

    closed_aps = [
        expected_average_precision(
            rank(case.query_graph, "reliability", strategy="closed").scores,
            case.relevant,
        )
        for case in cases
    ]
    closed_ap = sum(closed_aps) / len(closed_aps)

    from repro.metrics import random_average_precision

    random_ap = sum(
        random_average_precision(case.n_relevant, case.n_total) for case in cases
    ) / len(cases)

    points: List[ConvergencePoint] = []
    for trials in trial_ladder:
        samples: List[float] = []
        for _ in range(repetitions):
            aps = [
                expected_average_precision(
                    rank(
                        case.query_graph,
                        "reliability",
                        strategy="mc",
                        trials=trials,
                        rng=rng.getrandbits(32),
                    ).scores,
                    case.relevant,
                )
                for case in cases
            ]
            samples.append(sum(aps) / len(aps))
        points.append(
            ConvergencePoint(
                trials=trials,
                mean_ap=statistics.mean(samples),
                std_ap=statistics.pstdev(samples) if len(samples) > 1 else 0.0,
                repetitions=repetitions,
            )
        )
    return points, closed_ap, random_ap


def main(repetitions: int = 10, seed: int = DEFAULT_SEED) -> str:
    points, closed_ap, random_ap = compute(repetitions=repetitions, seed=seed)
    rows = [
        (p.trials, f"{p.mean_ap:.3f}", f"{p.std_ap:.3f}") for p in points
    ]
    table = format_table(
        ("trials", "mean AP", "std"),
        rows,
        title=(
            "Fig 7: Monte Carlo convergence (scenario 1, reliability)\n"
            f"closed-solution AP = {closed_ap:.3f}, random AP = {random_ap:.3f}"
        ),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
