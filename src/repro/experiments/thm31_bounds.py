"""Theorem 3.1: analytic trial bounds, checked empirically.

The analytic side prints the required trial count for a grid of
(epsilon, delta) pairs — the paper's headline cell is epsilon = 0.02,
delta = 0.05 giving roughly 8,000 trials ("10,000 should be enough").

The empirical side simulates two Bernoulli nodes with true reliabilities
``r`` and ``r - epsilon`` at the bound's trial count and measures how
often the estimated order is wrong; by the theorem this must be at most
``delta`` (the bound is conservative, so observed error is usually far
smaller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.bounds import rank_error_bound, required_trials
from repro.experiments.runner import DEFAULT_SEED, format_table
from repro.utils.rng import ensure_rng

__all__ = ["BoundRow", "compute", "empirical_error", "main"]

GRID: Sequence[Tuple[float, float]] = (
    (0.05, 0.05),
    (0.02, 0.05),
    (0.02, 0.01),
    (0.01, 0.05),
)


@dataclass
class BoundRow:
    epsilon: float
    delta: float
    trials: int
    empirical_error: float
    repetitions: int


def empirical_error(
    epsilon: float,
    trials: int,
    repetitions: int = 2000,
    base_reliability: float = 0.5,
    rng=DEFAULT_SEED,
) -> float:
    """Fraction of repetitions in which the two nodes came out misordered.

    Ties count as half an error (a tie forces an arbitrary order, which
    is wrong half the time).
    """
    random = ensure_rng(rng)
    r_high = base_reliability + epsilon / 2.0
    r_low = base_reliability - epsilon / 2.0
    errors = 0.0
    for _ in range(repetitions):
        high_hits = sum(1 for _ in range(trials) if random.random() <= r_high)
        low_hits = sum(1 for _ in range(trials) if random.random() <= r_low)
        if high_hits < low_hits:
            errors += 1.0
        elif high_hits == low_hits:
            errors += 0.5
    return errors / repetitions


def compute(
    grid: Sequence[Tuple[float, float]] = GRID,
    repetitions: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[BoundRow]:
    rows: List[BoundRow] = []
    for epsilon, delta in grid:
        trials = required_trials(epsilon, delta)
        observed = empirical_error(
            epsilon, trials, repetitions=repetitions, rng=seed
        )
        rows.append(BoundRow(epsilon, delta, trials, observed, repetitions))
    return rows


def main(repetitions: int = 500, seed: int = DEFAULT_SEED) -> str:
    rows = compute(repetitions=repetitions, seed=seed)
    body = [
        (
            r.epsilon,
            r.delta,
            r.trials,
            f"{r.empirical_error:.4f}",
            f"{rank_error_bound(r.epsilon, r.trials):.4f}",
        )
        for r in rows
    ]
    table = format_table(
        ("epsilon", "delta", "required trials", "observed error", "bound"),
        body,
        title="Theorem 3.1: trial bounds (paper: eps=0.02, 95% -> ~10,000 trials)",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
