"""Shared experiment machinery: AP evaluation and table formatting.

All scoring in the experiment drivers flows through one
:class:`~repro.api.Session` (:func:`default_session`), so every query
graph is compiled into the shared CSR form once and its deterministic
scores are cached across methods and figures. Graph materialisation
upstream of the drivers is set-at-a-time end to end:
:func:`~repro.biology.scenarios.build_scenario` executes the scenario
queries through the frontier-batched builder (storage batch lookups +
mediator binding plans), and sessions over a mediator additionally
serve repeated queries from the epoch-guarded query cache.
"""

from __future__ import annotations

import statistics
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.api import RankingOptions, Session
from repro.biology.scenarios import ScenarioCase
from repro.engine import RankingEngine
from repro.errors import RankingError
from repro.metrics import expected_average_precision, random_average_precision

__all__ = [
    "DEFAULT_SEED",
    "ALL_METHODS",
    "RANK_OPTIONS",
    "MethodScore",
    "default_engine",
    "default_session",
    "evaluate_scenario_ap",
    "format_table",
    "rank_kwargs",
    "split_rank_options",
]

#: the seed every published experiment in this repo uses
DEFAULT_SEED = 0

#: evaluation order mirrors the paper's figures: Rel Prop Diff InEdge PathC
ALL_METHODS: Sequence[str] = (
    "reliability",
    "propagation",
    "diffusion",
    "in_edge",
    "path_count",
)

OptionsLike = Union[RankingOptions, Mapping[str, object]]

#: per-method ranking options used throughout the experiments. Reliability
#: uses the closed-form pipeline (exact, deterministic — the paper showed
#: the per-target queries admit closed solutions); Monte Carlo variants
#: are exercised separately by fig7/fig8a. Values stay plain mappings so
#: the pre-facade spelling ``rank(qg, m, **RANK_OPTIONS.get(m, {}))``
#: keeps working; facade callers coerce via :class:`RankingOptions`.
RANK_OPTIONS: Mapping[str, OptionsLike] = {
    "reliability": {"strategy": "closed"},
}

#: the session shared by the experiment drivers (serving defaults)
_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-wide session the experiment drivers rank through."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()
    return _SESSION


def default_engine() -> RankingEngine:
    """Deprecated: the engine behind :func:`default_session`."""
    warnings.warn(
        "default_engine() is deprecated; use default_session() (the "
        "repro.api facade) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return default_session().engine


def split_rank_options(
    options: Optional[OptionsLike],
) -> "tuple[RankingOptions, Optional[int]]":
    """Coerce a pre-facade options mapping into (RankingOptions, seed).

    Mappings may carry the legacy ``rng`` key (an integer seed, as the
    low-level ``rank()`` accepted); it becomes the session-path seed so
    seeded Monte Carlo sweeps stay reproducible through the facade.
    """
    if options is None:
        return RankingOptions(), None
    if isinstance(options, RankingOptions):
        return options, None
    data = dict(options)
    seed = data.pop("rng", None)
    if seed is not None and not isinstance(seed, int):
        raise RankingError(
            f"rank_options['rng'] must be an integer seed on the session "
            f"path, got {seed!r}; pass a shared random.Random only to the "
            f"low-level rank()"
        )
    return RankingOptions.from_dict(data), seed


def rank_kwargs(method: str) -> Dict[str, object]:
    """The :data:`RANK_OPTIONS` entry of ``method`` as the raw keyword
    arguments the low-level ``rank()`` call accepts (what pre-facade
    consumers like the sensitivity sweeps expect)."""
    options, seed = split_rank_options(RANK_OPTIONS.get(method))
    return options.to_kwargs(method, seed)


#: display labels matching the paper's axis ticks
METHOD_LABELS: Mapping[str, str] = {
    "reliability": "Rel",
    "propagation": "Prop",
    "diffusion": "Diff",
    "in_edge": "InEdge",
    "path_count": "PathC",
    "random": "Random",
}


@dataclass
class MethodScore:
    """Mean/stdev AP of one ranking method over a scenario's cases."""

    method: str
    mean_ap: float
    std_ap: float
    per_case: Dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return METHOD_LABELS.get(self.method, self.method)


def evaluate_scenario_ap(
    cases: Sequence[ScenarioCase],
    methods: Sequence[str] = ALL_METHODS,
    rank_options: Optional[Mapping[str, OptionsLike]] = None,
    include_random: bool = True,
    session: Optional[Session] = None,
    engine: Optional[RankingEngine] = None,
) -> List[MethodScore]:
    """Tie-aware expected AP of each method over ``cases``.

    The "Random" baseline is the analytic expected AP of an arbitrarily
    ordered list (Definition 4.1), evaluated per case and averaged, as
    in Fig 5. Scoring goes through ``session`` (the shared
    :func:`default_session` when omitted), so each case's graph is
    compiled once for all methods. ``engine`` is the deprecated
    pre-facade spelling and wins when supplied.
    """
    if engine is None:
        session = session or default_session()
    options: Dict[str, OptionsLike] = dict(RANK_OPTIONS)
    options.update(rank_options or {})
    scores: List[MethodScore] = []
    for method in methods:
        if engine is not None:
            method_kwargs = options.get(method, {})
            if isinstance(method_kwargs, RankingOptions):
                method_kwargs = method_kwargs.to_kwargs(method)
        else:
            method_options, seed = split_rank_options(options.get(method))
        per_case: Dict[str, float] = {}
        for case in cases:
            if engine is not None:
                result = engine.rank(case.query_graph, method, **method_kwargs)
            else:
                result = session.rank(
                    case.query_graph, method, options=method_options, seed=seed
                )
            per_case[case.name] = expected_average_precision(
                result.scores, case.relevant
            )
        scores.append(_summarise(method, per_case))
    if include_random:
        per_case = {
            case.name: random_average_precision(case.n_relevant, case.n_total)
            for case in cases
        }
        scores.append(_summarise("random", per_case))
    return scores


def _summarise(method: str, per_case: Dict[str, float]) -> MethodScore:
    values = list(per_case.values())
    mean = sum(values) / len(values)
    std = statistics.pstdev(values) if len(values) > 1 else 0.0
    return MethodScore(method=method, mean_ap=mean, std_ap=std, per_case=per_case)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain-text table with column auto-sizing (no third-party deps)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
